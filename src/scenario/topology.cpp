#include "scenario/topology.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace lrgp::scenario {

std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> Overlay::adjacency() const {
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj(nodeCount());
    for (std::size_t e = 0; e < edges.size(); ++e) {
        adj[edges[e].a].emplace_back(edges[e].b, static_cast<std::uint32_t>(e));
        adj[edges[e].b].emplace_back(edges[e].a, static_cast<std::uint32_t>(e));
    }
    for (auto& list : adj) std::sort(list.begin(), list.end());
    return adj;
}

std::vector<std::size_t> Overlay::degrees() const {
    std::vector<std::size_t> deg(nodeCount(), 0);
    for (const OverlayEdge& e : edges) {
        ++deg[e.a];
        ++deg[e.b];
    }
    return deg;
}

bool Overlay::connected() const {
    if (nodeCount() == 0) return false;
    const auto adj = adjacency();
    std::vector<bool> seen(nodeCount(), false);
    std::vector<std::uint32_t> stack{0};
    seen[0] = true;
    std::size_t visited = 1;
    while (!stack.empty()) {
        const std::uint32_t u = stack.back();
        stack.pop_back();
        for (const auto& [v, e] : adj[u]) {
            if (!seen[v]) {
                seen[v] = true;
                ++visited;
                stack.push_back(v);
            }
        }
    }
    return visited == nodeCount();
}

// ------------------------------------------------------------------ fat tree

Overlay make_fat_tree(const FatTreeOptions& options) {
    const int k = options.k;
    if (k < 2 || k % 2 != 0) throw std::invalid_argument("make_fat_tree: k must be even and >= 2");
    const int half = k / 2;
    const int cores = half * half;

    Overlay overlay;
    overlay.family = "fat_tree";
    // Node layout: [0, cores) core, then per pod `half` aggregation
    // followed by `half` edge switches.
    overlay.node_weight.assign(static_cast<std::size_t>(cores + k * k), 1.0);
    for (int c = 0; c < cores; ++c) overlay.node_weight[c] = 4.0;

    for (int pod = 0; pod < k; ++pod) {
        const int agg0 = cores + pod * k;
        const int edge0 = agg0 + half;
        for (int j = 0; j < half; ++j) {
            overlay.node_weight[agg0 + j] = 2.0;
            overlay.node_weight[edge0 + j] = 1.0;
        }
        // Edge switch <-> every aggregation switch in the pod.
        for (int e = 0; e < half; ++e)
            for (int a = 0; a < half; ++a)
                overlay.edges.push_back({static_cast<std::uint32_t>(edge0 + e),
                                         static_cast<std::uint32_t>(agg0 + a), 1.0});
        // Aggregation switch j <-> cores [j*half, (j+1)*half).
        for (int a = 0; a < half; ++a)
            for (int c = a * half; c < (a + 1) * half; ++c)
                overlay.edges.push_back({static_cast<std::uint32_t>(agg0 + a),
                                         static_cast<std::uint32_t>(c), 2.0});
    }
    return overlay;
}

// ---------------------------------------------------------------- scale free

Overlay make_scale_free(const ScaleFreeOptions& options) {
    const int n = options.nodes;
    const int m = options.attach;
    if (n < 3) throw std::invalid_argument("make_scale_free: nodes must be >= 3");
    if (m < 1 || m >= n)
        throw std::invalid_argument("make_scale_free: attach must be in [1, nodes)");

    Overlay overlay;
    overlay.family = "scale_free";
    overlay.node_weight.assign(static_cast<std::size_t>(n), 1.0);

    std::mt19937_64 rng(options.seed);
    // `targets` holds one entry per edge endpoint, so uniform sampling
    // from it is degree-proportional (preferential attachment).
    std::vector<std::uint32_t> targets;
    const int seed_clique = m + 1;
    for (int a = 0; a < seed_clique; ++a) {
        for (int b = a + 1; b < seed_clique; ++b) {
            overlay.edges.push_back({static_cast<std::uint32_t>(a),
                                     static_cast<std::uint32_t>(b), 1.0});
            targets.push_back(static_cast<std::uint32_t>(a));
            targets.push_back(static_cast<std::uint32_t>(b));
        }
    }
    for (int v = seed_clique; v < n; ++v) {
        std::vector<std::uint32_t> chosen;
        while (static_cast<int>(chosen.size()) < m) {
            const std::uint32_t t =
                targets[std::uniform_int_distribution<std::size_t>(0, targets.size() - 1)(rng)];
            if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) chosen.push_back(t);
        }
        for (const std::uint32_t t : chosen) {
            overlay.edges.push_back({static_cast<std::uint32_t>(v), t, 1.0});
            targets.push_back(static_cast<std::uint32_t>(v));
            targets.push_back(t);
        }
    }

    const auto deg = overlay.degrees();
    for (std::size_t i = 0; i < overlay.node_weight.size(); ++i)
        overlay.node_weight[i] = std::sqrt(static_cast<double>(deg[i]));
    for (OverlayEdge& e : overlay.edges)
        e.weight = 0.5 * (overlay.node_weight[e.a] + overlay.node_weight[e.b]);
    return overlay;
}

// --------------------------------------------------------------- small world

std::size_t small_world_chord_count(const SmallWorldOptions& options) {
    // Offsets 2 .. ring_degree/2 contribute one chord per node each.
    const int per_side = options.ring_degree / 2;
    if (per_side < 2) return 0;
    return static_cast<std::size_t>(options.nodes) * static_cast<std::size_t>(per_side - 1);
}

Overlay make_small_world(const SmallWorldOptions& options) {
    const int n = options.nodes;
    const int kdeg = options.ring_degree;
    if (n < 4) throw std::invalid_argument("make_small_world: nodes must be >= 4");
    if (kdeg < 2 || kdeg % 2 != 0 || kdeg >= n)
        throw std::invalid_argument("make_small_world: ring_degree must be even, >= 2, < nodes");
    if (!(options.beta >= 0.0 && options.beta <= 1.0))
        throw std::invalid_argument("make_small_world: beta must be in [0, 1]");

    Overlay overlay;
    overlay.family = "small_world";
    overlay.node_weight.assign(static_cast<std::size_t>(n), 1.0);

    std::mt19937_64 rng(options.seed);
    std::uniform_real_distribution<double> coin(0.0, 1.0);

    // Edge-existence matrix to keep rewired targets distinct.
    std::vector<bool> has(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), false);
    auto link = [&](int a, int b) { has[a * n + b] = has[b * n + a] = true; };
    auto linked = [&](int a, int b) { return has[a * n + b]; };

    const int per_side = kdeg / 2;
    // Ring edges (offset 1): never rewired, keep the overlay connected.
    for (int i = 0; i < n; ++i) {
        const int j = (i + 1) % n;
        overlay.edges.push_back({static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j), 1.0});
        link(i, j);
    }
    // Chord edges (offsets 2..per_side): rewire the far endpoint with
    // probability beta to a uniform non-adjacent target.
    for (int offset = 2; offset <= per_side; ++offset) {
        for (int i = 0; i < n; ++i) {
            int j = (i + offset) % n;
            if (coin(rng) < options.beta) {
                int candidate = -1;
                for (int tries = 0; tries < 64; ++tries) {
                    const int t = std::uniform_int_distribution<int>(0, n - 1)(rng);
                    if (t != i && !linked(i, t)) {
                        candidate = t;
                        break;
                    }
                }
                if (candidate >= 0) j = candidate;
            }
            if (!linked(i, j)) {
                overlay.edges.push_back(
                    {static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j), 1.0});
                link(i, j);
            }
        }
    }
    return overlay;
}

}  // namespace lrgp::scenario
