#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <set>
#include <sstream>
#include <stdexcept>

#include "utility/utility_function.hpp"

namespace lrgp::scenario {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Stage-salted RNG seeds so editing one generation stage never shifts
/// the draws of another.
constexpr std::uint64_t kSaltWorkload = 0x9E3779B97F4A7C15ULL;
constexpr std::uint64_t kSaltTraffic = 0xBF58476D1CE4E5B9ULL;
constexpr std::uint64_t kSaltCalibration = 0x94D049BB133111EBULL;

struct FlowPlan {
    std::uint32_t source = 0;
    double rate_min = 0.0;
    double rate_max = 0.0;
    std::vector<std::uint32_t> consumer_nodes;
    std::map<std::uint32_t, double> node_cost;  ///< route node -> F cost
    /// Directed overlay hops (from, to) -> L cost; direction is
    /// source-to-consumer along the BFS tree.
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> link_cost;
};

struct ClassPlan {
    std::uint32_t flow = 0;
    std::uint32_t node = 0;
    int base_population = 0;
    double consumer_cost = 0.0;
    std::shared_ptr<const utility::UtilityFunction> utility;
};

Overlay buildOverlay(const ScenarioOptions& o) {
    if (o.topology == "fat_tree") return make_fat_tree({o.fat_tree_k});
    if (o.topology == "scale_free") return make_scale_free({o.overlay_nodes, o.ba_attach, o.seed});
    if (o.topology == "small_world")
        return make_small_world({o.overlay_nodes, o.ws_ring_degree, o.ws_beta, o.seed});
    throw std::invalid_argument("build_scenario: unknown topology '" + o.topology + "'");
}

/// Candidate flow sources: edge switches for the fat-tree (hosts hang
/// off the leaf tier), every node otherwise.
std::vector<std::uint32_t> sourcePool(const ScenarioOptions& o, const Overlay& overlay) {
    std::vector<std::uint32_t> pool;
    if (o.topology == "fat_tree") {
        const int half = o.fat_tree_k / 2;
        const int cores = half * half;
        for (int pod = 0; pod < o.fat_tree_k; ++pod)
            for (int j = 0; j < half; ++j)
                pool.push_back(static_cast<std::uint32_t>(cores + pod * o.fat_tree_k + half + j));
    } else {
        for (std::uint32_t v = 0; v < overlay.nodeCount(); ++v) pool.push_back(v);
    }
    return pool;
}

/// BFS parents from `source` over the sorted adjacency (deterministic
/// shortest-path tree with smallest-id tie-breaking).
std::vector<std::uint32_t> bfsParents(
    const std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>& adj,
    std::uint32_t source) {
    constexpr std::uint32_t kNone = UINT32_MAX;
    std::vector<std::uint32_t> parent(adj.size(), kNone);
    std::vector<std::uint32_t> queue{source};
    parent[source] = source;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::uint32_t u = queue[head];
        for (const auto& [v, e] : adj[u]) {
            if (parent[v] == kNone) {
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    return parent;
}

std::shared_ptr<const utility::UtilityFunction> makeUtility(const ScenarioOptions& o,
                                                            std::size_t class_index,
                                                            double rate_min, double rate_max,
                                                            std::mt19937_64& rng) {
    auto real = [&](double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(rng);
    };
    const double weight = real(5.0, 20.0);
    // Non-concave mixes interleave: odd classes get the sigmoid/step,
    // even classes keep the paper's shifted-log baseline.
    const bool nonconcave_slot = (o.utility != "shifted_log") && (class_index % 2 == 1);
    if (!nonconcave_slot) {
        if (o.utility != "shifted_log" && o.utility != "sigmoid" && o.utility != "step")
            throw std::invalid_argument("build_scenario: unknown utility mix '" + o.utility + "'");
        return std::make_shared<utility::ShiftedLogUtility>(weight, real(1.0, 6.0));
    }
    const double span = rate_max - rate_min;
    const double midpoint = rate_min + real(0.35, 0.7) * span;
    const double steepness = (o.utility == "step" ? real(24.0, 40.0) : real(4.0, 8.0)) / span;
    return std::make_shared<utility::SigmoidUtility>(weight, midpoint, steepness);
}

}  // namespace

const char* op_kind_name(OpKind kind) {
    switch (kind) {
        case OpKind::kSetClassMaxConsumers: return "set_class_max_consumers";
        case OpKind::kRemoveFlow: return "remove_flow";
        case OpKind::kRestoreFlow: return "restore_flow";
        case OpKind::kSetNodeCapacity: return "set_node_capacity";
        case OpKind::kSetLinkCapacity: return "set_link_capacity";
    }
    return "unknown";
}

ScenarioSpec build_scenario(const ScenarioOptions& options) {
    if (options.flows < 1) throw std::invalid_argument("build_scenario: flows must be >= 1");
    if (options.classes_per_flow < 1)
        throw std::invalid_argument("build_scenario: classes_per_flow must be >= 1");
    if (!(options.duration > 0.0))
        throw std::invalid_argument("build_scenario: duration must be positive");
    if (!(options.headroom_utilization > 0.0 && options.headroom_utilization < 1.0))
        throw std::invalid_argument("build_scenario: headroom_utilization must be in (0, 1)");
    if (!(options.overdrive_factor > 0.0 && options.overdrive_factor < 1.0))
        throw std::invalid_argument("build_scenario: overdrive_factor must be in (0, 1)");

    ScenarioSpec out;
    out.options = options;
    out.overlay = buildOverlay(options);
    const Overlay& overlay = out.overlay;
    const auto adj = overlay.adjacency();

    std::mt19937_64 rng(options.seed ^ kSaltWorkload);
    auto real = [&](double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(rng);
    };
    auto integer = [&](int lo, int hi) { return std::uniform_int_distribution<int>(lo, hi)(rng); };

    // ---- flows: sources, consumer nodes, BFS routes, costs -------------
    const std::vector<std::uint32_t> sources = sourcePool(options, overlay);
    std::vector<FlowPlan> flows(static_cast<std::size_t>(options.flows));
    for (std::size_t f = 0; f < flows.size(); ++f) {
        FlowPlan& plan = flows[f];
        plan.source = sources[static_cast<std::size_t>(
            integer(0, static_cast<int>(sources.size()) - 1))];
        plan.rate_min = real(0.5, 1.0);
        plan.rate_max = real(4.0, 10.0);

        std::vector<std::uint32_t> pool;
        for (std::uint32_t v = 0; v < overlay.nodeCount(); ++v)
            if (v != plan.source) pool.push_back(v);
        std::shuffle(pool.begin(), pool.end(), rng);
        const std::size_t wanted =
            std::min<std::size_t>(static_cast<std::size_t>(options.classes_per_flow), pool.size());
        plan.consumer_nodes.assign(pool.begin(), pool.begin() + static_cast<long>(wanted));
        std::sort(plan.consumer_nodes.begin(), plan.consumer_nodes.end());

        const auto parent = bfsParents(adj, plan.source);
        plan.node_cost.emplace(plan.source, real(0.5, 1.5));
        for (const std::uint32_t consumer : plan.consumer_nodes) {
            // Walk consumer -> source, recording nodes and directed hops
            // (direction is source-to-consumer).
            std::uint32_t v = consumer;
            while (v != plan.source) {
                const std::uint32_t p = parent[v];
                if (!plan.node_cost.count(v)) plan.node_cost.emplace(v, real(0.5, 1.5));
                if (!plan.link_cost.count({p, v}))
                    plan.link_cost.emplace(std::make_pair(p, v), real(0.5, 1.5));
                v = p;
            }
        }
    }

    // ---- classes: placement, base populations, utility mix -------------
    std::vector<ClassPlan> classes;
    for (std::size_t f = 0; f < flows.size(); ++f) {
        for (int c = 0; c < options.classes_per_flow; ++c) {
            ClassPlan cls;
            cls.flow = static_cast<std::uint32_t>(f);
            cls.node = flows[f].consumer_nodes[static_cast<std::size_t>(c) %
                                               flows[f].consumer_nodes.size()];
            cls.base_population = integer(4, 16);
            cls.consumer_cost = real(0.05, 0.2);
            cls.utility = makeUtility(options, classes.size(), flows[f].rate_min,
                                      flows[f].rate_max, rng);
            classes.push_back(std::move(cls));
        }
    }
    if (options.traffic == "heavy_tail") {
        // Zipf(1.1) populations over a seeded rank shuffle.
        std::vector<std::size_t> order(classes.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::shuffle(order.begin(), order.end(), rng);
        for (std::size_t rank = 0; rank < order.size(); ++rank) {
            const double zipf = 28.0 / std::pow(static_cast<double>(rank + 1), 1.1);
            classes[order[rank]].base_population = std::max(1, static_cast<int>(std::lround(zipf)));
        }
    }

    // ---- traffic program: the dynamic-op schedule ----------------------
    std::mt19937_64 trng(options.seed ^ kSaltTraffic);
    auto treal = [&](double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(trng);
    };
    std::vector<DynamicOp>& schedule = out.schedule;
    // Node-capacity ops are emitted as *fractions* of the calibrated
    // capacity and resolved after calibration below.
    std::vector<std::size_t> capacity_fraction_ops;

    if (options.traffic == "diurnal") {
        const double period = options.duration / 2.0;
        std::vector<double> phase(classes.size());
        for (double& p : phase) p = treal(0.0, 2.0 * kPi);
        std::vector<int> last(classes.size());
        for (std::size_t j = 0; j < classes.size(); ++j) last[j] = classes[j].base_population;
        for (double t = 0.5; t <= options.duration * 0.75 + 1e-9; t += 0.5) {
            for (std::size_t j = 0; j < classes.size(); ++j) {
                const double wave = 1.0 + 0.5 * std::sin(2.0 * kPi * t / period + phase[j]);
                const int n = std::max(
                    0, static_cast<int>(std::lround(classes[j].base_population * wave)));
                if (n != last[j]) {
                    schedule.push_back({t, OpKind::kSetClassMaxConsumers,
                                        static_cast<std::uint32_t>(j),
                                        static_cast<double>(n)});
                    last[j] = n;
                }
            }
        }
        out.principal_disturbance = 0.5;
    } else if (options.traffic == "flash_crowd") {
        const double t0 = options.duration / 3.0;
        const double t1 = t0 + options.duration * 0.125;
        const double t2 = t0 + options.duration * 0.25;
        std::vector<std::size_t> crowd;
        for (std::size_t j = 0; j < classes.size(); ++j)
            if (treal(0.0, 1.0) < 0.25) crowd.push_back(j);
        if (crowd.empty()) crowd.push_back(0);
        for (const std::size_t j : crowd) {
            const int base = classes[j].base_population;
            schedule.push_back({t0, OpKind::kSetClassMaxConsumers, static_cast<std::uint32_t>(j),
                                static_cast<double>(base * 4)});
            schedule.push_back({t1, OpKind::kSetClassMaxConsumers, static_cast<std::uint32_t>(j),
                                static_cast<double>(base * 2)});
            schedule.push_back({t2, OpKind::kSetClassMaxConsumers, static_cast<std::uint32_t>(j),
                                static_cast<double>(base)});
        }
        // Brownout: one node loses a quarter of its capacity for the
        // duration of the crowd (value = fraction, resolved post-calibration).
        const std::uint32_t victim = classes[crowd[0]].node;
        schedule.push_back({t0, OpKind::kSetNodeCapacity, victim, 0.75});
        capacity_fraction_ops.push_back(schedule.size() - 1);
        schedule.push_back({t2, OpKind::kSetNodeCapacity, victim, 1.0});
        capacity_fraction_ops.push_back(schedule.size() - 1);
        out.principal_disturbance = t0;
    } else if (options.traffic == "churn") {
        // Distinct flows depart and return, so a removal never targets an
        // already-removed flow (asserted by the property suite).
        std::vector<std::uint32_t> order(flows.size());
        for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
        std::shuffle(order.begin(), order.end(), trng);
        const std::size_t events = std::min<std::size_t>(flows.size() / 2, 5);
        double first_leave = options.duration;
        for (std::size_t e = 0; e < events; ++e) {
            const double leave = treal(0.2, 0.45) * options.duration;
            const double dwell = treal(0.15, 0.3) * options.duration;
            schedule.push_back({leave, OpKind::kRemoveFlow, order[e], 0.0});
            schedule.push_back({leave + dwell, OpKind::kRestoreFlow, order[e], 0.0});
            first_leave = std::min(first_leave, leave);
        }
        for (int e = 0; e < 6; ++e) {
            const auto j = static_cast<std::uint32_t>(std::uniform_int_distribution<std::size_t>(
                0, classes.size() - 1)(trng));
            const double t = treal(0.1, 0.7) * options.duration;
            const int n = std::max(
                0, static_cast<int>(std::lround(classes[j].base_population * treal(0.5, 1.5))));
            schedule.push_back({t, OpKind::kSetClassMaxConsumers, j, static_cast<double>(n)});
        }
        out.principal_disturbance = first_leave;
    } else if (options.traffic != "heavy_tail") {
        throw std::invalid_argument("build_scenario: unknown traffic program '" + options.traffic +
                                    "'");
    }
    std::stable_sort(schedule.begin(), schedule.end(),
                     [](const DynamicOp& a, const DynamicOp& b) { return a.time < b.time; });
    // Re-locate fraction ops after the sort.
    capacity_fraction_ops.clear();
    for (std::size_t i = 0; i < schedule.size(); ++i)
        if (schedule[i].kind == OpKind::kSetNodeCapacity) capacity_fraction_ops.push_back(i);

    // ---- capacity calibration at schedule-peak demand ------------------
    std::vector<int> peak(classes.size());
    for (std::size_t j = 0; j < classes.size(); ++j) peak[j] = classes[j].base_population;
    for (const DynamicOp& op : schedule)
        if (op.kind == OpKind::kSetClassMaxConsumers)
            peak[op.target] = std::max(peak[op.target], static_cast<int>(op.value));

    std::vector<double> node_demand(overlay.nodeCount(), 0.0);
    std::vector<double> node_floor(overlay.nodeCount(), 0.0);
    for (const FlowPlan& plan : flows) {
        for (const auto& [node, cost] : plan.node_cost) {
            node_demand[node] += plan.rate_max * cost;
            node_floor[node] += plan.rate_min * cost;
        }
    }
    for (std::size_t j = 0; j < classes.size(); ++j) {
        const FlowPlan& plan = flows[classes[j].flow];
        node_demand[classes[j].node] +=
            plan.rate_max * classes[j].consumer_cost * static_cast<double>(peak[j]);
    }
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> link_demand;
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> link_floor;
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> link_weight;
    for (const FlowPlan& plan : flows) {
        for (const auto& [hop, cost] : plan.link_cost) {
            link_demand[hop] += plan.rate_max * cost;
            link_floor[hop] += plan.rate_min * cost;
        }
    }
    for (const OverlayEdge& e : overlay.edges) {
        if (link_demand.count({e.a, e.b})) link_weight[{e.a, e.b}] = e.weight;
        if (link_demand.count({e.b, e.a})) link_weight[{e.b, e.a}] = e.weight;
    }

    double max_node_weight = 1.0;
    for (const double w : overlay.node_weight) max_node_weight = std::max(max_node_weight, w);
    double max_link_weight = 1.0;
    for (const auto& [hop, w] : link_weight) max_link_weight = std::max(max_link_weight, w);

    std::mt19937_64 crng(options.seed ^ kSaltCalibration);
    auto creal = [&](double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(crng);
    };
    // Both modes calibrate the *believed* capacities with headroom: an
    // overdrive cell's planner problem is identical to its headroom
    // twin's, and only physical_capacity_scale below differs.
    auto calibrate = [&](double demand, double floor, double weight, double max_weight) {
        // Relative topology weight modulates capacity within +-10%.
        const double wfactor = 0.9 + 0.2 * weight / max_weight;
        if (demand <= 0.0) return 1.0;  // untouched resource; any positive capacity
        return std::max(demand / options.headroom_utilization * wfactor * creal(0.98, 1.02),
                        floor * 1.02);
    };

    std::vector<double> node_capacity(overlay.nodeCount());
    for (std::size_t b = 0; b < overlay.nodeCount(); ++b)
        node_capacity[b] =
            calibrate(node_demand[b], node_floor[b], overlay.node_weight[b], max_node_weight);
    std::map<std::pair<std::uint32_t, std::uint32_t>, double> link_capacity;
    for (const auto& [hop, demand] : link_demand)
        link_capacity[hop] =
            calibrate(demand, link_floor[hop], link_weight.count(hop) ? link_weight[hop] : 1.0,
                      max_link_weight);

    for (const std::size_t i : capacity_fraction_ops)
        schedule[i].value *= node_capacity[schedule[i].target];

    out.physical_capacity_scale = options.overdrive ? options.overdrive_factor : 1.0;

    // ---- assemble the ProblemSpec (one deterministic pass) -------------
    model::ProblemBuilder builder;
    std::vector<model::NodeId> node_ids;
    node_ids.reserve(overlay.nodeCount());
    for (std::size_t b = 0; b < overlay.nodeCount(); ++b) {
        std::ostringstream name;
        name << "n" << b;
        node_ids.push_back(builder.addNode(name.str(), node_capacity[b]));
    }
    std::map<std::pair<std::uint32_t, std::uint32_t>, model::LinkId> link_ids;
    for (const auto& [hop, capacity] : link_capacity) {
        std::ostringstream name;
        name << "l" << hop.first << "_" << hop.second;
        link_ids.emplace(hop, builder.addLink(name.str(), node_ids[hop.first],
                                              node_ids[hop.second], capacity));
    }
    std::vector<model::FlowId> flow_ids;
    for (std::size_t f = 0; f < flows.size(); ++f) {
        const FlowPlan& plan = flows[f];
        std::ostringstream name;
        name << "f" << f;
        const model::FlowId id =
            builder.addFlow(name.str(), node_ids[plan.source], plan.rate_min, plan.rate_max);
        flow_ids.push_back(id);
        for (const auto& [node, cost] : plan.node_cost)
            builder.routeThroughNode(id, node_ids[node], cost);
        for (const auto& [hop, cost] : plan.link_cost)
            builder.routeOverLink(id, link_ids.at(hop), cost);
    }
    for (std::size_t j = 0; j < classes.size(); ++j) {
        const ClassPlan& cls = classes[j];
        std::ostringstream name;
        name << "f" << cls.flow << "_c" << (j % static_cast<std::size_t>(options.classes_per_flow));
        builder.addClass(name.str(), flow_ids[cls.flow], node_ids[cls.node], cls.base_population,
                         cls.consumer_cost, cls.utility);
    }
    out.problem = builder.build();
    return out;
}

io::JsonValue ScenarioSpec::manifest() const {
    io::JsonObject root;
    root.emplace("name", options.name.empty() ? std::string("ad_hoc") : options.name);
    root.emplace("seed", static_cast<double>(options.seed));
    root.emplace("traffic", options.traffic);
    root.emplace("utility_mix", options.utility);
    root.emplace("overdrive", options.overdrive);
    root.emplace("duration", options.duration);

    io::JsonObject topo;
    topo.emplace("family", overlay.family);
    topo.emplace("overlay_nodes", static_cast<double>(overlay.nodeCount()));
    topo.emplace("overlay_edges", static_cast<double>(overlay.edges.size()));
    root.emplace("topology", io::JsonValue(std::move(topo)));

    io::JsonObject counts;
    counts.emplace("nodes", static_cast<double>(problem.nodeCount()));
    counts.emplace("links", static_cast<double>(problem.linkCount()));
    counts.emplace("flows", static_cast<double>(problem.flowCount()));
    counts.emplace("classes", static_cast<double>(problem.classCount()));
    root.emplace("counts", io::JsonValue(std::move(counts)));

    io::JsonObject sched;
    sched.emplace("ops", static_cast<double>(schedule.size()));
    std::map<std::string, double> by_kind;
    for (const DynamicOp& op : schedule) by_kind[op_kind_name(op.kind)] += 1.0;
    io::JsonObject kinds;
    for (const auto& [kind, count] : by_kind) kinds.emplace(kind, count);
    sched.emplace("by_kind", io::JsonValue(std::move(kinds)));
    if (!schedule.empty()) {
        sched.emplace("first_time", schedule.front().time);
        sched.emplace("last_time", schedule.back().time);
    }
    sched.emplace("principal_disturbance", principal_disturbance);
    root.emplace("schedule", io::JsonValue(std::move(sched)));

    io::JsonObject calib;
    calib.emplace("mode", options.overdrive ? std::string("overdrive") : std::string("headroom"));
    calib.emplace("target", options.overdrive ? options.overdrive_factor
                                              : options.headroom_utilization);
    calib.emplace("physical_capacity_scale", physical_capacity_scale);
    double node_total = 0.0, link_total = 0.0;
    for (const model::NodeSpec& n : problem.nodes()) node_total += n.capacity;
    for (const model::LinkSpec& l : problem.links()) link_total += l.capacity;
    calib.emplace("node_capacity_total", node_total);
    calib.emplace("link_capacity_total", link_total);
    root.emplace("calibration", io::JsonValue(std::move(calib)));

    return io::JsonValue(std::move(root));
}

std::string ScenarioSpec::manifestString() const { return manifest().dump(true) + "\n"; }

const std::vector<ScenarioOptions>& scenario_catalog() {
    static const std::vector<ScenarioOptions> catalog = [] {
        std::vector<ScenarioOptions> cells;
        auto add = [&](const std::string& topology, const std::string& traffic,
                       const std::string& utility, bool overdrive, std::uint64_t seed) {
            ScenarioOptions o;
            o.name = topology + "_" + traffic + "_" + utility + (overdrive ? "_overdrive" : "");
            o.topology = topology;
            o.traffic = traffic;
            o.utility = utility;
            o.overdrive = overdrive;
            o.seed = seed;
            cells.push_back(std::move(o));
        };
        add("fat_tree", "diurnal", "shifted_log", false, 101);
        add("fat_tree", "flash_crowd", "sigmoid", false, 102);
        add("fat_tree", "heavy_tail", "shifted_log", false, 103);
        add("fat_tree", "heavy_tail", "shifted_log", true, 103);  // headroom twin's seed
        add("fat_tree", "churn", "step", false, 105);
        add("scale_free", "diurnal", "sigmoid", false, 106);
        add("scale_free", "flash_crowd", "shifted_log", false, 107);
        add("scale_free", "heavy_tail", "step", false, 108);
        add("scale_free", "churn", "shifted_log", false, 109);
        add("scale_free", "heavy_tail", "shifted_log", true, 110);
        add("small_world", "diurnal", "step", false, 111);
        add("small_world", "flash_crowd", "step", false, 112);
        add("small_world", "heavy_tail", "sigmoid", false, 113);
        add("small_world", "churn", "sigmoid", false, 114);
        return cells;
    }();
    return catalog;
}

ScenarioOptions find_scenario(const std::string& name) {
    for (const ScenarioOptions& o : scenario_catalog())
        if (o.name == name) return o;
    std::string known;
    for (const ScenarioOptions& o : scenario_catalog()) {
        if (!known.empty()) known += ", ";
        known += o.name;
    }
    throw std::invalid_argument("find_scenario: unknown scenario '" + name + "' (known: " + known +
                                ")");
}

model::ProblemSpec end_state_problem(const ScenarioSpec& scenario) {
    model::ProblemSpec spec = scenario.problem;
    for (const DynamicOp& op : scenario.schedule) {
        switch (op.kind) {
            case OpKind::kSetClassMaxConsumers:
                spec.setClassMaxConsumers(model::ClassId(op.target), static_cast<int>(op.value));
                break;
            case OpKind::kRemoveFlow:
                spec.setFlowActive(model::FlowId(op.target), false);
                break;
            case OpKind::kRestoreFlow:
                spec.setFlowActive(model::FlowId(op.target), true);
                break;
            case OpKind::kSetNodeCapacity:
                spec.setNodeCapacity(model::NodeId(op.target), op.value);
                break;
            case OpKind::kSetLinkCapacity:
                spec.setLinkCapacity(model::LinkId(op.target), op.value);
                break;
        }
    }
    return spec;
}

}  // namespace lrgp::scenario
