// Overlay topology families for the production scenario suite
// (ROADMAP item 3; node-and-link-capacity allocation on complex
// networks, arXiv 1702.06669).
//
// Each generator returns an undirected Overlay graph with per-node and
// per-edge *relative* capacity weights.  The scenario composer
// (scenario.hpp) turns overlays into ProblemSpecs: flows route over
// BFS shortest-path trees, each traversed edge direction becomes a
// model link, and the calibration pass rewrites every capacity from
// the scenario's peak demand (headroom or overdrive mode) modulated by
// these relative weights — so a fat-tree core stays fatter than its
// edge switches after calibration.
//
// All generators are deterministic functions of their options: same
// options (including seed) produce an identical Overlay, which the
// 100-seed property sweep (test_scenario.cpp) asserts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lrgp::scenario {

/// One undirected overlay edge with a relative capacity weight.
struct OverlayEdge {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    double weight = 1.0;
};

/// An undirected capacitated overlay graph.
struct Overlay {
    std::string family;                 ///< "fat_tree" | "scale_free" | "small_world"
    std::vector<double> node_weight;    ///< relative per-node capacity weights
    std::vector<OverlayEdge> edges;

    [[nodiscard]] std::size_t nodeCount() const noexcept { return node_weight.size(); }

    /// Adjacency as (neighbor, edge index) lists, sorted by neighbor id —
    /// the deterministic iteration order the BFS router depends on.
    [[nodiscard]] std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adjacency()
        const;

    /// Undirected degree per node.
    [[nodiscard]] std::vector<std::size_t> degrees() const;

    /// True when every node is reachable from node 0 (and the graph is
    /// nonempty).  Every generator below guarantees this by construction.
    [[nodiscard]] bool connected() const;
};

/// k-ary fat-tree: (k/2)^2 core switches and k pods of k/2 aggregation
/// plus k/2 edge switches; flows source at edge switches.  k must be
/// even and >= 2.  Core nodes carry weight 4, aggregation 2, edge 1;
/// core-facing edges weight 2, pod-internal edges weight 1.
struct FatTreeOptions {
    int k = 4;
};
[[nodiscard]] Overlay make_fat_tree(const FatTreeOptions& options);

/// Barabasi-Albert preferential attachment: starts from a complete
/// graph on attach+1 nodes, then each new node attaches `attach` edges
/// to distinct targets drawn proportionally to current degree.  Node
/// weights grow with the square root of final degree, so hubs get more
/// capacity headroom than leaves.
struct ScaleFreeOptions {
    int nodes = 24;
    int attach = 2;          ///< edges per new node (m); 1 <= attach < nodes
    std::uint64_t seed = 1;
};
[[nodiscard]] Overlay make_scale_free(const ScaleFreeOptions& options);

/// Watts-Strogatz small world, ring-preserving variant: a ring lattice
/// where each node connects to ring_degree/2 neighbors per side, then
/// every *chord* edge (lattice offset >= 2) is rewired with probability
/// beta to a uniform random non-adjacent target.  Ring edges (offset 1)
/// are never rewired, so the overlay stays connected for any beta.
struct SmallWorldOptions {
    int nodes = 24;
    int ring_degree = 4;     ///< even, >= 2, < nodes
    double beta = 0.2;       ///< chord rewiring probability in [0, 1]
    std::uint64_t seed = 1;
};
[[nodiscard]] Overlay make_small_world(const SmallWorldOptions& options);

/// Number of chord edges a small-world overlay starts from (the upper
/// bound on rewired edges, asserted by the property suite).
[[nodiscard]] std::size_t small_world_chord_count(const SmallWorldOptions& options);

}  // namespace lrgp::scenario
