// Production scenario suite (ROADMAP item 3): deterministic, seeded
// composition of overlay topology x traffic program x utility mix into
// a ProblemSpec plus a timed dynamic-op schedule.
//
// A scenario cell is the cross product of
//   * a topology family (scenario/topology.hpp): fat-tree, scale-free,
//     small-world, with per-node/per-edge relative capacity weights;
//   * a traffic program: diurnal sinusoid populations, a flash crowd
//     (population spike + node brownout), static heavy-tailed (Zipf)
//     consumer populations, or flow/consumer churn — everything beyond
//     the initial populations expressed as timed DynamicOps replayed
//     through the core::Engine interface (scenario/runner.hpp);
//   * a utility mix: the paper's shifted-log classes, optionally
//     interleaved with non-concave sigmoid or step classes from the
//     sensitivity section (utility/utility_function.hpp).
//
// Capacity calibration: after the schedule is known, every node/link
// capacity is set from the *peak* demand it would see with all flows
// at rate_max and every class at its schedule-peak population, divided
// by the target utilization (headroom: planned utility is achievable
// and the dataplane delivers it within tolerance).  Relative topology
// weights modulate the result so fat cores stay fatter than edge
// switches.  Overdrive mode keeps the planner's problem identical to
// its headroom twin but records physical_capacity_scale < 1: the
// runner shrinks the *dataplane's* node capacities by that factor, so
// the plan the optimizer believes in overdrives the plant — servers
// run at utilization ~1 and drop (the PR 4 regression pins this at
// >= 20% drops while the headroom twin delivers within 2%).
//
// Determinism: build_scenario is a pure function of ScenarioOptions —
// same options give a byte-identical problem JSON, manifest and
// schedule (the 100-seed property sweep asserts this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "model/problem.hpp"
#include "scenario/topology.hpp"

namespace lrgp::scenario {

/// A timed workload change, replayed through core::Engine between
/// iterations (and mirrored into the dataplane when one is attached).
enum class OpKind {
    kSetClassMaxConsumers,  ///< target = class index, value = new n^max
    kRemoveFlow,            ///< target = flow index
    kRestoreFlow,           ///< target = flow index
    kSetNodeCapacity,       ///< target = node index, value = new capacity
    kSetLinkCapacity,       ///< target = link index, value = new capacity
};

[[nodiscard]] const char* op_kind_name(OpKind kind);

struct DynamicOp {
    double time = 0.0;
    OpKind kind = OpKind::kSetClassMaxConsumers;
    std::uint32_t target = 0;
    double value = 0.0;  ///< new max_consumers or capacity; unused for remove/restore
};

struct ScenarioOptions {
    std::string name;                     ///< catalog cell name ("" = ad hoc)
    std::string topology = "fat_tree";    ///< fat_tree | scale_free | small_world
    std::string traffic = "heavy_tail";   ///< diurnal | flash_crowd | heavy_tail | churn
    std::string utility = "shifted_log";  ///< shifted_log | sigmoid | step
    bool overdrive = false;
    std::uint64_t seed = 1;

    // Topology sizing.
    int fat_tree_k = 4;
    int overlay_nodes = 24;  ///< scale-free / small-world node count
    int ba_attach = 2;
    int ws_ring_degree = 4;
    double ws_beta = 0.2;

    // Workload sizing.
    int flows = 12;
    int classes_per_flow = 3;
    double duration = 12.0;  ///< schedule horizon in runner seconds

    // Capacity calibration.
    double headroom_utilization = 0.6;  ///< peak demand / capacity in headroom mode
    double overdrive_factor = 0.25;     ///< physical / believed capacity in overdrive mode
};

/// A fully composed scenario: the initial problem, the overlay it was
/// routed on, and the dynamic-op schedule (sorted by time).
struct ScenarioSpec {
    ScenarioOptions options;
    Overlay overlay;
    model::ProblemSpec problem;
    std::vector<DynamicOp> schedule;
    /// Time of the scenario's main disturbance (recovery analysis runs
    /// around it); negative when the scenario is static.
    double principal_disturbance = -1.0;
    /// Physical (dataplane) capacity as a fraction of the capacity the
    /// planner's problem believes in: 1 in headroom mode,
    /// overdrive_factor in overdrive mode.  The runner applies it to
    /// the dataplane's node servers and to mirrored capacity ops.
    double physical_capacity_scale = 1.0;

    /// Deterministic JSON manifest: options, counts, schedule digest,
    /// calibration summary.  Byte-stable for golden fixtures.
    [[nodiscard]] io::JsonValue manifest() const;
    [[nodiscard]] std::string manifestString() const;
};

/// Composes a scenario from options.  Throws std::invalid_argument on
/// unknown family names or inconsistent sizing.
[[nodiscard]] ScenarioSpec build_scenario(const ScenarioOptions& options);

/// The pinned (topology x traffic x utility) catalog BENCH_scenarios and
/// `ctest -L scenario` run against; >= 12 cells, each with a fixed seed.
[[nodiscard]] const std::vector<ScenarioOptions>& scenario_catalog();

/// Looks a catalog cell up by name; throws std::invalid_argument with
/// the list of known names when absent.
[[nodiscard]] ScenarioOptions find_scenario(const std::string& name);

/// The problem with every scheduled op applied statically — the input
/// for the best-known-utility solve a replayed run is compared against.
[[nodiscard]] model::ProblemSpec end_state_problem(const ScenarioSpec& scenario);

}  // namespace lrgp::scenario
