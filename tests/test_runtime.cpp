// Live asynchronous shard-agent runtime suite (runtime/runtime.hpp):
// option validation, deterministic virtual-time replay, live-fault
// reconvergence for every shipped scenario, crash recovery from engine
// snapshots, suspicion/degradation bookkeeping, and a wall-clock smoke
// test.  Runs under the `async` ctest label in Release and under TSan.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "faults/scenarios.hpp"
#include "metrics/recovery.hpp"
#include "runtime/runtime.hpp"
#include "shard/sharded_engine.hpp"
#include "shard/subproblems.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using runtime::AsyncShardRuntime;
using runtime::RuntimeOptions;

constexpr int kAgents = 4;
constexpr double kFaultStart = 10.0;
constexpr double kFaultDuration = 2.0;
constexpr double kSamplePeriod = 0.05;
constexpr double kHorizon = 24.0;

RuntimeOptions base_runtime(faults::FaultPlan plan = {}) {
    RuntimeOptions options;
    options.agents = kAgents;
    options.sample_period = kSamplePeriod;
    options.fault_plan = std::move(plan);
    return options;
}

/// The catalog against runtime agents: agent i is {kNode, i} for message
/// faults and matches crash events by index.
std::vector<faults::ChaosScenario> runtime_scenarios() {
    return faults::standard_scenarios(kAgents, kAgents, 0, kFaultStart, kFaultDuration);
}

std::size_t fault_sample_index() {
    // Samples land at k*kSamplePeriod (k = 1, 2, ...); index the last one
    // strictly before the fault opens so the baseline window stays clean.
    return static_cast<std::size_t>(kFaultStart / kSamplePeriod) - 1;
}

void expect_throws_mentioning(RuntimeOptions options, const std::string& needle) {
    const auto spec = workload::make_base_workload();
    try {
        AsyncShardRuntime runtime(spec, {}, std::move(options));
        FAIL() << "expected std::invalid_argument mentioning \"" << needle << "\"";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "actual message: " << e.what();
    }
}

TEST(AsyncRuntimeOptions, RejectsNonPositiveAgentCount) {
    RuntimeOptions options = base_runtime();
    options.agents = 0;
    expect_throws_mentioning(options, "agents");
}

TEST(AsyncRuntimeOptions, RejectsNonPositiveTickPeriod) {
    RuntimeOptions options = base_runtime();
    options.tick_period = 0.0;
    expect_throws_mentioning(options, "tick_period");
    options.tick_period = -0.01;
    expect_throws_mentioning(options, "tick_period");
}

TEST(AsyncRuntimeOptions, RejectsNonPositiveItersPerTick) {
    RuntimeOptions options = base_runtime();
    options.iters_per_tick = 0;
    expect_throws_mentioning(options, "iters_per_tick");
}

TEST(AsyncRuntimeOptions, RejectsNonPositiveDigestPeriod) {
    RuntimeOptions options = base_runtime();
    options.digest_period = -1.0;
    expect_throws_mentioning(options, "digest_period");
}

TEST(AsyncRuntimeOptions, RejectsNonPositiveHeartbeatTimeout) {
    RuntimeOptions options = base_runtime();
    options.heartbeat_timeout = 0.0;
    expect_throws_mentioning(options, "heartbeat_timeout");
}

TEST(AsyncRuntimeOptions, RejectsHeartbeatTimeoutBelowDigestPeriod) {
    // Suspecting peers faster than they heartbeat flaps on every gap.
    RuntimeOptions options = base_runtime();
    options.digest_period = 0.1;
    options.heartbeat_timeout = 0.05;
    expect_throws_mentioning(options, "heartbeat_timeout must be >= digest_period");
}

TEST(AsyncRuntimeOptions, RejectsNonPositiveStalenessHorizon) {
    RuntimeOptions options = base_runtime();
    options.staleness_horizon = 0.0;
    expect_throws_mentioning(options, "staleness_horizon");
}

TEST(AsyncRuntimeOptions, RejectsStalenessHorizonBelowDigestPeriod) {
    RuntimeOptions options = base_runtime();
    options.digest_period = 0.1;
    options.staleness_horizon = 0.05;
    expect_throws_mentioning(options, "staleness_horizon must be >= digest_period");
}

TEST(AsyncRuntimeOptions, RejectsNonPositiveBackoffMin) {
    RuntimeOptions options = base_runtime();
    options.backoff_min = 0.0;
    expect_throws_mentioning(options, "backoff_min");
}

TEST(AsyncRuntimeOptions, RejectsBackoffMaxBelowMin) {
    RuntimeOptions options = base_runtime();
    options.backoff_min = 0.5;
    options.backoff_max = 0.1;
    expect_throws_mentioning(options, "backoff_max");
}

TEST(AsyncRuntimeOptions, RejectsBackoffFactorAtOrBelowOne) {
    // factor <= 1 never backs off: a dead peer keeps getting flooded.
    RuntimeOptions options = base_runtime();
    options.backoff_factor = 1.0;
    expect_throws_mentioning(options, "backoff_factor");
    options.backoff_factor = 0.5;
    expect_throws_mentioning(options, "backoff_factor");
}

TEST(AsyncRuntimeOptions, RejectsJitterOutsideUnitInterval) {
    RuntimeOptions options = base_runtime();
    options.backoff_jitter = 1.0;
    expect_throws_mentioning(options, "backoff_jitter");
    options.backoff_jitter = -0.1;
    expect_throws_mentioning(options, "backoff_jitter");
}

TEST(AsyncRuntimeOptions, RejectsZeroLatencyMin) {
    // Zero latency would deliver inside the send tick and break the
    // deterministic-mode contract.
    RuntimeOptions options = base_runtime();
    options.latency_min = 0.0;
    expect_throws_mentioning(options, "latency_min");
}

TEST(AsyncRuntimeOptions, RejectsInvertedLatencyBounds) {
    RuntimeOptions options = base_runtime();
    options.latency_min = 0.01;
    options.latency_max = 0.001;
    expect_throws_mentioning(options, "latency_max");
}

TEST(AsyncRuntimeOptions, RejectsZeroQueueCapacity) {
    RuntimeOptions options = base_runtime();
    options.queue_capacity = 0;
    expect_throws_mentioning(options, "queue_capacity");
}

TEST(AsyncRuntimeOptions, RejectsNonPositiveSnapshotPeriod) {
    RuntimeOptions options = base_runtime();
    options.snapshot_period = 0.0;
    expect_throws_mentioning(options, "snapshot_period");
}

TEST(AsyncRuntimeOptions, RejectsNonPositiveSamplePeriod) {
    RuntimeOptions options = base_runtime();
    options.sample_period = -0.05;
    expect_throws_mentioning(options, "sample_period");
}

TEST(AsyncRuntimeOptions, RejectsNonPositiveReconcileTicks) {
    RuntimeOptions options = base_runtime();
    options.reconcile_ticks = 0;
    expect_throws_mentioning(options, "reconcile_ticks");
}

TEST(AsyncRuntimeOptions, RejectsReconcileStepOutsideUnitInterval) {
    RuntimeOptions options = base_runtime();
    options.reconcile_step = 1.5;
    expect_throws_mentioning(options, "reconcile_step");
}

TEST(AsyncRuntimeOptions, RejectsNegativeMinRebalanceFraction) {
    RuntimeOptions options = base_runtime();
    options.min_rebalance_fraction = -1e-3;
    expect_throws_mentioning(options, "min_rebalance_fraction");
}

TEST(AsyncRuntimeOptions, RejectsNegativePriceSettle) {
    RuntimeOptions options = base_runtime();
    options.price_settle = -0.1;
    expect_throws_mentioning(options, "price_settle");
}

TEST(AsyncRuntimeOptions, RejectsFaultPlanReferencingUnknownAgent) {
    RuntimeOptions options = base_runtime();
    options.fault_plan.crashes.push_back(
        faults::CrashEvent{{faults::AgentKind::kNode, 7}, 1.0, 2.0});
    expect_throws_mentioning(options, "fault plan");

    RuntimeOptions island = base_runtime();
    island.fault_plan.partitions.push_back(faults::PartitionWindow{
        {1.0, 2.0}, {{faults::AgentKind::kNode, static_cast<std::uint32_t>(kAgents)}}});
    expect_throws_mentioning(island, "island");
}

TEST(AsyncRuntimeOptions, RejectsMalformedFaultPlan) {
    RuntimeOptions options = base_runtime();
    options.fault_plan.losses.push_back(
        faults::LossBurst{{5.0, 2.0}, 0.5, std::nullopt, std::nullopt});  // inverted window
    const auto spec = workload::make_base_workload();
    EXPECT_THROW((AsyncShardRuntime{spec, {}, options}), std::invalid_argument);
}

TEST(AsyncRuntime, RunForRejectsNonPositiveDuration) {
    const auto spec = workload::make_base_workload();
    AsyncShardRuntime runtime(spec, {}, base_runtime());
    EXPECT_THROW(runtime.runFor(0.0), std::invalid_argument);
    EXPECT_THROW(runtime.runFor(-1.0), std::invalid_argument);
}

TEST(AsyncRuntime, PartitionsTheProblemAcrossAgents) {
    const auto spec = workload::make_base_workload();
    AsyncShardRuntime runtime(spec, {}, base_runtime());
    ASSERT_EQ(runtime.agentCount(), kAgents);
    std::size_t flows = 0;
    for (const auto& summary : runtime.summaries()) {
        flows += summary.flows;
        EXPECT_FALSE(summary.down);
        EXPECT_EQ(summary.epoch, 0u);
    }
    EXPECT_EQ(flows, spec.flowCount());
}

TEST(AsyncRuntime, BoundaryCapacityNeverOversubscribedAfterFaults) {
    // Shrink-before-grow safety: after a run through partition +
    // degradation + recovery, the slices the agents actually enacted in
    // their engines must still sum to at most each boundary resource's
    // global capacity.  (Mid-shrink the sum may be below capacity;
    // above is a protocol violation.)
    const auto spec = workload::make_base_workload();
    RuntimeOptions options = base_runtime();
    for (const auto& scenario : runtime_scenarios()) {
        if (scenario.name != "partition") continue;
        options.fault_plan = scenario.plan;
    }
    AsyncShardRuntime runtime(spec, {}, options);
    runtime.runFor(kHorizon);

    shard::PartitionOptions popts;
    popts.shards = options.agents;
    popts.refine_passes = options.refine_passes;
    popts.balance_slack = options.balance_slack;
    const shard::SubproblemSet sub = shard::build_subproblems(spec, popts);

    for (const auto& budget : sub.node_budgets) {
        double enacted = 0.0;
        for (int s : budget.shards) {
            const auto* engine = runtime.agentEngine(s);
            ASSERT_NE(engine, nullptr) << "shard " << s;
            const std::uint32_t local = sub.members[static_cast<std::size_t>(s)]
                                            .node_local[budget.id];
            ASSERT_NE(local, shard::kAbsent);
            enacted += engine->problem().nodes()[local].capacity;
        }
        EXPECT_LE(enacted, budget.capacity * (1.0 + 1e-9)) << "node " << budget.id;
    }
}

TEST(AsyncRuntime, FaultFreeRunTracksShardedEngineUtility) {
    // The asynchronous agents, exchanging digests over a lossless (but
    // latency-ful) transport, must settle near the same utility as the
    // lockstep sharded engine over the same K-way partition.
    const auto spec = workload::make_base_workload();
    AsyncShardRuntime runtime(spec, {}, base_runtime());
    runtime.runFor(12.0);

    shard::ShardedConfig config;
    config.shards = kAgents;
    config.threads = 1;
    shard::ShardedLrgpEngine sharded(spec, {}, config);
    sharded.runUntilConverged(3000);

    EXPECT_GT(runtime.currentUtility(), 0.0);
    EXPECT_NEAR(runtime.currentUtility(), sharded.currentUtility(),
                0.05 * sharded.currentUtility());
}

TEST(AsyncRuntime, DeterministicRunsAreByteIdentical) {
    // The headline determinism guarantee: same configuration, two full
    // virtual-time runs under a flapping partition — utility traces,
    // per-agent digest logs and every counter must match byte for byte
    // even though the agent threads race freely inside each tick.
    const auto spec = workload::make_base_workload();
    faults::FaultPlan plan;
    for (const faults::ChaosScenario& s : runtime_scenarios())
        if (s.name == "flapping_link") plan = s.plan;
    ASSERT_FALSE(plan.empty());

    RuntimeOptions options = base_runtime(plan);
    options.keep_digest_log = true;

    AsyncShardRuntime a(spec, {}, options);
    AsyncShardRuntime b(spec, {}, options);
    a.runFor(kHorizon);
    b.runFor(kHorizon);

    const auto& ta = a.utilityTrace();
    const auto& tb = b.utilityTrace();
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) ASSERT_EQ(ta[i], tb[i]) << "sample " << i;

    for (int agent = 0; agent < kAgents; ++agent) {
        EXPECT_FALSE(a.digestLog(agent).empty()) << "agent " << agent;
        ASSERT_EQ(a.digestLog(agent), b.digestLog(agent)) << "agent " << agent;
    }

    const runtime::RuntimeStats sa = a.stats();
    const runtime::RuntimeStats sb = b.stats();
    EXPECT_EQ(sa.messages_sent, sb.messages_sent);
    EXPECT_EQ(sa.dropped_fault, sb.dropped_fault);
    EXPECT_EQ(sa.totals.digests_sent, sb.totals.digests_sent);
    EXPECT_EQ(sa.totals.digests_received, sb.totals.digests_received);
    EXPECT_EQ(sa.totals.digests_rejected_stale, sb.totals.digests_rejected_stale);
    EXPECT_EQ(sa.totals.suspicions, sb.totals.suspicions);
    EXPECT_EQ(sa.totals.recoveries, sb.totals.recoveries);
    EXPECT_EQ(sa.totals.budget_updates, sb.totals.budget_updates);
}

TEST(AsyncChaos, EveryShippedScenarioReconvergesWithinOnePercent) {
    // The acceptance criterion of the runtime: under every shipped fault
    // scenario, injected live against the running agent threads, the
    // overlay returns to within 1% of its fault-free utility in bounded
    // time.  Completing each run also proves the shrink-before-grow
    // budget handshake never deadlocks the agents.
    const auto spec = workload::make_base_workload();
    for (const faults::ChaosScenario& scenario : runtime_scenarios()) {
        AsyncShardRuntime runtime(spec, {}, base_runtime(scenario.plan));
        runtime.runFor(kHorizon);
        const metrics::RecoveryReport report = metrics::analyze_recovery(
            runtime.utilityTrace(), fault_sample_index(), kSamplePeriod);  // epsilon = 1%
        EXPECT_TRUE(report.reconverged) << scenario.name << ": " << scenario.description;
        EXPECT_LT(report.time_to_reconverge, kHorizon) << scenario.name;
        EXPECT_GE(report.dip_integral, 0.0) << scenario.name;
    }
}

TEST(AsyncRuntime, CrashRestartRecoversFromSnapshot) {
    const auto spec = workload::make_base_workload();
    faults::FaultPlan plan;
    plan.crashes.push_back(faults::CrashEvent{{faults::AgentKind::kNode, kAgents - 1},
                                              kFaultStart, kFaultStart + kFaultDuration});
    AsyncShardRuntime runtime(spec, {}, base_runtime(plan));

    runtime.runFor(kFaultStart + 1.0);  // inside the outage
    EXPECT_TRUE(runtime.agentDown(kAgents - 1));
    runtime.runFor(kHorizon - (kFaultStart + 1.0));
    EXPECT_FALSE(runtime.agentDown(kAgents - 1));

    const auto summaries = runtime.summaries();
    const auto& victim = summaries[static_cast<std::size_t>(kAgents - 1)];
    EXPECT_EQ(victim.counters.crashes, 1u);
    EXPECT_EQ(victim.counters.restarts, 1u);
    // The crash hit at t=10 with a 0.5s snapshot period: the restart
    // must have restored a warm snapshot, not cold-started.
    EXPECT_EQ(victim.counters.snapshot_restores, 1u);
    EXPECT_GE(victim.counters.snapshots, 2u);
    EXPECT_EQ(victim.epoch, 1u);  // membership epoch bumped on restart

    const metrics::RecoveryReport report = metrics::analyze_recovery(
        runtime.utilityTrace(), fault_sample_index(), kSamplePeriod);
    EXPECT_TRUE(report.reconverged);
}

TEST(AsyncRuntime, PartitionTriggersSuspicionDegradationRecovery) {
    const auto spec = workload::make_base_workload();
    faults::FaultPlan plan;
    for (const faults::ChaosScenario& s : runtime_scenarios())
        if (s.name == "partition") plan = s.plan;
    ASSERT_FALSE(plan.empty());

    AsyncShardRuntime runtime(spec, {}, base_runtime(plan));
    runtime.runFor(kHorizon);

    const runtime::RuntimeStats stats = runtime.stats();
    // The partitioned agent went silent past the heartbeat timeout ...
    EXPECT_GT(stats.totals.suspicions, 0u);
    // ... its peers clamped the shared boundary slices to their floors ...
    EXPECT_GT(stats.totals.degradations, 0u);
    // ... and everyone recovered once the partition healed.
    EXPECT_EQ(stats.totals.recoveries, stats.totals.suspicions);
    EXPECT_GT(stats.dropped_fault, 0u);
    EXPECT_EQ(stats.totals.crashes, 0u);
}

TEST(AsyncRuntime, BackpressureIsVisibleToSenders) {
    // A one-message in-flight window per channel with a network slower
    // than the digest period: the next digest is due while the previous
    // one is still in flight, so some sends must see kQueueFull — and
    // unlike fault drops, the senders observe it.
    const auto spec = workload::make_base_workload();
    RuntimeOptions options = base_runtime();
    options.queue_capacity = 1;
    options.latency_min = 0.015;
    options.latency_max = 0.02;
    AsyncShardRuntime runtime(spec, {}, options);
    runtime.runFor(2.0);
    const runtime::RuntimeStats stats = runtime.stats();
    EXPECT_GT(stats.totals.send_failures, 0u);
    EXPECT_EQ(stats.totals.send_failures, stats.dropped_backpressure);
}

TEST(AsyncRuntime, ClockAndTraceAccumulateAcrossRuns) {
    const auto spec = workload::make_base_workload();
    AsyncShardRuntime runtime(spec, {}, base_runtime());
    runtime.runFor(0.5);
    const std::size_t after_first = runtime.utilityTrace().size();
    runtime.runFor(0.5);
    EXPECT_NEAR(runtime.now(), 1.0, 1e-9);
    EXPECT_EQ(runtime.utilityTrace().size(), 2 * after_first);
    EXPECT_EQ(runtime.utilityTrace().size(),
              static_cast<std::size_t>(std::lround(1.0 / kSamplePeriod)));
}

TEST(AsyncRuntime, RealTimeModeSmoke) {
    // Wall-clock mode: agents free-run with sleep-paced ticks.  Half a
    // second of real time must produce samples and a positive utility.
    const auto spec = workload::make_base_workload();
    RuntimeOptions options = base_runtime();
    options.deterministic = false;
    AsyncShardRuntime runtime(spec, {}, options);
    runtime.runFor(0.5);
    EXPECT_GE(runtime.utilityTrace().size(), 5u);
    EXPECT_GT(runtime.currentUtility(), 0.0);
    const runtime::RuntimeStats stats = runtime.stats();
    EXPECT_GT(stats.totals.engine_iterations, 0u);
    EXPECT_GT(stats.totals.digests_received, 0u);
}

}  // namespace
