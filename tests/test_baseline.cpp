#include <gtest/gtest.h>

#include <random>

#include "baseline/annealing.hpp"
#include "baseline/search_state.hpp"
#include "test_helpers.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using baseline::AnnealOptions;
using baseline::HillClimbOptions;
using baseline::RandomSearchOptions;
using baseline::SearchState;
using lrgp::test::make_linked_problem;
using lrgp::test::make_tiny_problem;

TEST(SearchState, StartsAtMinimalFeasible) {
    const auto t = make_tiny_problem();
    SearchState state(t.spec);
    EXPECT_DOUBLE_EQ(state.utility(), 0.0);
    EXPECT_DOUBLE_EQ(state.allocation().rates[t.flow.index()], 1.0);
}

TEST(SearchState, RejectsInfeasibleInitial) {
    const auto t = make_tiny_problem();
    auto bad = model::Allocation::minimal(t.spec);
    bad.rates[t.flow.index()] = 50.0;
    bad.populations[t.pub.index()] = 20;  // blows the node budget
    EXPECT_THROW((SearchState{t.spec, bad}), std::invalid_argument);
}

TEST(SearchState, RateMoveUpdatesUsageAndUtility) {
    const auto t = make_tiny_problem();
    SearchState state(t.spec);
    ASSERT_TRUE(state.tryPopulationMove(t.gold, 4));
    ASSERT_TRUE(state.tryRateMove(t.flow, 10.0));
    EXPECT_NEAR(state.utility(), 4 * 30.0 * std::log(11.0), 1e-9);
    // usage: F*r + G*n*r = 2*10 + 5*4*10 = 220
    EXPECT_NEAR(state.nodeUsage(t.cnode), 220.0, 1e-9);
}

TEST(SearchState, InfeasibleMovesRejectedWithoutSideEffects) {
    const auto t = make_tiny_problem();
    SearchState state(t.spec);
    ASSERT_TRUE(state.tryRateMove(t.flow, 50.0));
    // 20 public consumers at rate 50 cost 10*20*50 = 10000 > 1000.
    const double before_usage = state.nodeUsage(t.cnode);
    const double before_utility = state.utility();
    EXPECT_FALSE(state.tryPopulationMove(t.pub, 20));
    EXPECT_DOUBLE_EQ(state.nodeUsage(t.cnode), before_usage);
    EXPECT_DOUBLE_EQ(state.utility(), before_utility);
}

TEST(SearchState, IncrementalMatchesRebuiltCaches) {
    const auto spec = workload::make_base_workload();
    SearchState state(spec);
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> unif(0.0, 1.0);
    // Random walk of applied moves, then compare against a full rebuild.
    for (int s = 0; s < 500; ++s) {
        if (unif(rng) < 0.5) {
            const auto& f = spec.flows()[static_cast<std::size_t>(unif(rng) * 6)];
            (void)state.tryRateMove(f.id, 10.0 + unif(rng) * 990.0);
        } else {
            const auto& c = spec.classes()[static_cast<std::size_t>(unif(rng) * 20)];
            (void)state.tryPopulationMove(c.id,
                                          static_cast<int>(unif(rng) * c.max_consumers));
        }
    }
    SearchState rebuilt(spec, state.allocation());
    EXPECT_NEAR(state.utility(), rebuilt.utility(), 1e-6 * (1.0 + rebuilt.utility()));
    for (const auto& node : spec.nodes())
        EXPECT_NEAR(state.nodeUsage(node.id), rebuilt.nodeUsage(node.id), 1e-6);
}

TEST(SearchState, LinkConstraintsEnforced) {
    const auto p = make_linked_problem();
    SearchState state(p.spec);
    ASSERT_TRUE(state.tryRateMove(p.flow_a, 90.0));
    // flow_b at 90 would put the shared link at 180 > 100.
    EXPECT_FALSE(state.tryRateMove(p.flow_b, 90.0));
    EXPECT_TRUE(state.tryRateMove(p.flow_b, 9.0));
    EXPECT_NEAR(state.linkUsage(p.shared_link), 99.0, 1e-9);
}

TEST(SearchState, InactiveFlowMovesRejected) {
    auto t = make_tiny_problem();
    t.spec.setFlowActive(t.flow, false);
    SearchState state(t.spec);
    EXPECT_FALSE(state.tryRateMove(t.flow, 10.0));
    EXPECT_FALSE(state.tryPopulationMove(t.gold, 1));
}

TEST(Annealing, ProducesFeasibleResult) {
    const auto spec = workload::make_base_workload();
    AnnealOptions options;
    options.max_steps = 50'000;
    const auto result = baseline::simulated_annealing(spec, options);
    EXPECT_GT(result.best_utility, 0.0);
    EXPECT_TRUE(model::check_feasibility(spec, result.best).feasible());
    EXPECT_NEAR(result.best_utility, model::total_utility(spec, result.best),
                1e-6 * result.best_utility);
}

TEST(Annealing, MoreStepsDoNotHurt) {
    const auto spec = workload::make_base_workload();
    AnnealOptions small;
    small.max_steps = 5'000;
    small.seed = 3;
    AnnealOptions large;
    large.max_steps = 100'000;
    large.seed = 3;
    const auto r_small = baseline::simulated_annealing(spec, small);
    const auto r_large = baseline::simulated_annealing(spec, large);
    EXPECT_GE(r_large.best_utility, 0.8 * r_small.best_utility);
    EXPECT_GT(r_large.best_utility, r_small.best_utility * 0.99);
}

TEST(Annealing, DeterministicForFixedSeed) {
    const auto spec = workload::make_base_workload();
    AnnealOptions options;
    options.max_steps = 10'000;
    options.seed = 42;
    const auto a = baseline::simulated_annealing(spec, options);
    const auto b = baseline::simulated_annealing(spec, options);
    EXPECT_DOUBLE_EQ(a.best_utility, b.best_utility);
}

TEST(Annealing, Validation) {
    const auto spec = workload::make_base_workload();
    AnnealOptions bad;
    bad.start_temperature = 0.5;  // below end temperature
    EXPECT_THROW((void)baseline::simulated_annealing(spec, bad), std::invalid_argument);
    AnnealOptions bad2;
    bad2.cooling_factor = 1.5;
    EXPECT_THROW((void)baseline::simulated_annealing(spec, bad2), std::invalid_argument);
    AnnealOptions bad3;
    bad3.max_steps = 0;
    EXPECT_THROW((void)baseline::simulated_annealing(spec, bad3), std::invalid_argument);
}

TEST(Annealing, BestOfPicksTheBestRun) {
    const auto spec = workload::make_base_workload();
    const auto best = baseline::best_of_annealing(spec, {5.0, 50.0}, 10'000, 1);
    AnnealOptions opts5;
    opts5.start_temperature = 5.0;
    opts5.max_steps = 10'000;
    opts5.seed = 1;
    AnnealOptions opts50;
    opts50.start_temperature = 50.0;
    opts50.max_steps = 10'000;
    opts50.seed = 2;
    const double u5 = baseline::simulated_annealing(spec, opts5).best_utility;
    const double u50 = baseline::simulated_annealing(spec, opts50).best_utility;
    EXPECT_DOUBLE_EQ(best.best_utility, std::max(u5, u50));
    EXPECT_THROW((void)baseline::best_of_annealing(spec, {}, 100, 1), std::invalid_argument);
}

TEST(HillClimb, ImprovesOverMinimal) {
    const auto spec = workload::make_base_workload();
    HillClimbOptions options;
    options.max_steps = 20'000;
    const auto result = baseline::hill_climb(spec, options);
    EXPECT_GT(result.best_utility, 0.0);
    EXPECT_TRUE(model::check_feasibility(spec, result.best).feasible());
}

TEST(RandomSearch, FindsFeasiblePositiveUtility) {
    const auto spec = workload::make_base_workload();
    RandomSearchOptions options;
    options.samples = 200;
    const auto result = baseline::random_search(spec, options);
    EXPECT_GT(result.best_utility, 0.0);
    EXPECT_TRUE(model::check_feasibility(spec, result.best).feasible());
}

TEST(Baselines, AnnealingBeatsRandomSearch) {
    const auto spec = workload::make_base_workload();
    AnnealOptions anneal_options;
    anneal_options.max_steps = 100'000;
    RandomSearchOptions random_options;
    random_options.samples = 500;
    const auto sa = baseline::simulated_annealing(spec, anneal_options);
    const auto rs = baseline::random_search(spec, random_options);
    EXPECT_GT(sa.best_utility, rs.best_utility);
}

}  // namespace
