// Property/fuzz tests over randomly generated workloads: the optimizers
// must uphold their invariants on every valid instance, not just the
// paper's workload.
#include <gtest/gtest.h>

#include "baseline/annealing.hpp"
#include "lrgp/optimizer.hpp"
#include "lrgp/two_stage.hpp"
#include "workload/random_workload.hpp"

namespace {

using namespace lrgp;
using workload::make_random_workload;
using workload::RandomWorkloadOptions;

TEST(RandomWorkload, DeterministicForSeed) {
    RandomWorkloadOptions options;
    options.seed = 77;
    const auto a = make_random_workload(options);
    const auto b = make_random_workload(options);
    ASSERT_EQ(a.flowCount(), b.flowCount());
    ASSERT_EQ(a.classCount(), b.classCount());
    for (std::size_t j = 0; j < a.classCount(); ++j) {
        EXPECT_EQ(a.classes()[j].max_consumers, b.classes()[j].max_consumers);
        EXPECT_DOUBLE_EQ(a.classes()[j].consumer_cost, b.classes()[j].consumer_cost);
    }
}

TEST(RandomWorkload, DifferentSeedsDiffer) {
    RandomWorkloadOptions a_options, b_options;
    a_options.seed = 1;
    b_options.seed = 2;
    const auto a = make_random_workload(a_options);
    const auto b = make_random_workload(b_options);
    // Extremely likely to differ in at least one dimension.
    const bool differ = a.flowCount() != b.flowCount() || a.classCount() != b.classCount() ||
                        a.nodeCount() != b.nodeCount() ||
                        a.nodes()[1].capacity != b.nodes()[1].capacity;
    EXPECT_TRUE(differ);
}

TEST(RandomWorkload, RespectsRanges) {
    RandomWorkloadOptions options;
    options.seed = 5;
    options.min_flows = 3;
    options.max_flows = 3;
    options.min_cnodes = 4;
    options.max_cnodes = 4;
    const auto spec = make_random_workload(options);
    EXPECT_EQ(spec.flowCount(), 3u);
    EXPECT_EQ(spec.nodeCount(), 5u);  // 4 c-nodes + producer
    for (const auto& c : spec.classes()) {
        EXPECT_GE(c.max_consumers, options.min_population);
        EXPECT_LE(c.max_consumers, options.max_population);
        EXPECT_GE(c.consumer_cost, options.min_consumer_cost);
        EXPECT_LE(c.consumer_cost, options.max_consumer_cost);
    }
}

TEST(RandomWorkload, Validation) {
    RandomWorkloadOptions bad;
    bad.min_flows = 0;
    EXPECT_THROW((void)make_random_workload(bad), std::invalid_argument);
    RandomWorkloadOptions bad2;
    bad2.max_classes_per_flow = 0;
    EXPECT_THROW((void)make_random_workload(bad2), std::invalid_argument);
}

// The core fuzz sweep: across seeds, LRGP stays feasible on every
// iteration, prices stay non-negative, and the run converges.
class RandomWorkloadSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RandomWorkloadSweep, LrgpInvariantsHold) {
    RandomWorkloadOptions options;
    options.seed = GetParam();
    const auto spec = make_random_workload(options);

    core::LrgpOptimizer opt(spec);
    for (int i = 0; i < 120; ++i) {
        opt.step();
        const auto report = model::check_feasibility(spec, opt.allocation());
        ASSERT_TRUE(report.feasible())
            << "seed " << GetParam() << " iter " << i << ": "
            << report.violations.front().detail;
        for (double p : opt.prices().node) ASSERT_GE(p, 0.0);
        for (double p : opt.prices().link) ASSERT_GE(p, 0.0);
    }
    EXPECT_GE(opt.currentUtility(), 0.0);
}

TEST_P(RandomWorkloadSweep, StageTwoStaysClose) {
    // Stage two is an approximation, not a guaranteed improvement: the
    // pruned problem drops classes that stage one happened to leave at
    // zero, and that choice can occasionally cost a few percent (LRGP
    // has no optimality proof to lean on).  The property that must hold
    // universally is boundedness: stage two stays within a few percent
    // of stage one (the clear-gain case is covered by the dedicated
    // wasteful-routing test in test_pruning.cpp).
    RandomWorkloadOptions options;
    options.seed = GetParam();
    const auto spec = make_random_workload(options);
    const auto result = core::two_stage_optimize(spec);
    EXPECT_GE(result.stage_two_utility, result.stage_one_utility * 0.90)
        << "seed " << GetParam();
}

TEST_P(RandomWorkloadSweep, AnnealingStaysFeasible) {
    RandomWorkloadOptions options;
    options.seed = GetParam();
    const auto spec = make_random_workload(options);
    baseline::AnnealOptions sa;
    sa.max_steps = 5'000;
    sa.seed = GetParam();
    const auto result = baseline::simulated_annealing(spec, sa);
    EXPECT_TRUE(model::check_feasibility(spec, result.best).feasible()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 11u, 42u, 99u, 1234u, 9999u));

// With a shared bottleneck link, LRGP's link pricing must keep the link
// within capacity at convergence.
class BottleneckSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BottleneckSweep, LinkStaysWithinCapacity) {
    RandomWorkloadOptions options;
    options.seed = GetParam();
    options.link_bottleneck_probability = 1.0;
    const auto spec = make_random_workload(options);
    ASSERT_EQ(spec.linkCount(), 1u);

    core::LrgpOptions lrgp_options;
    lrgp_options.link_gamma = 1e-4;
    core::LrgpOptimizer opt(spec, lrgp_options);
    opt.run(400);
    const double usage = model::link_usage(spec, opt.allocation(), model::LinkId{0});
    EXPECT_LE(usage, spec.links()[0].capacity * 1.05) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BottleneckSweep, ::testing::Values(7u, 21u, 63u, 777u));

}  // namespace
