#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "utility/rate_objective.hpp"

namespace {

using lrgp::utility::LogUtility;
using lrgp::utility::PowerUtility;
using lrgp::utility::RateSolveMethod;
using lrgp::utility::RateSolveOptions;
using lrgp::utility::ScaledUtility;
using lrgp::utility::solve_rate_objective;
using lrgp::utility::WeightedUtility;

std::vector<WeightedUtility> logTerms() {
    // Mirrors one flow of the base workload: 400 consumers of rank 20,
    // 800 of rank 5, 2000 of rank 1.
    return {{400.0, std::make_shared<LogUtility>(20.0)},
            {800.0, std::make_shared<LogUtility>(5.0)},
            {2000.0, std::make_shared<LogUtility>(1.0)}};
}

TEST(RateObjective, NoConsumersPricedTakesLowBound) {
    std::vector<WeightedUtility> terms{{0.0, std::make_shared<LogUtility>(5.0)}};
    const auto r = solve_rate_objective(terms, 1.0, 10.0, 1000.0);
    EXPECT_DOUBLE_EQ(r.rate, 10.0);
    EXPECT_EQ(r.method, RateSolveMethod::kBoundLow);
}

TEST(RateObjective, NoConsumersFreeTakesHighBound) {
    std::vector<WeightedUtility> terms{{0.0, std::make_shared<LogUtility>(5.0)}};
    const auto r = solve_rate_objective(terms, 0.0, 10.0, 1000.0);
    EXPECT_DOUBLE_EQ(r.rate, 1000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kBoundHigh);
}

TEST(RateObjective, ZeroPriceTakesHighBound) {
    const auto r = solve_rate_objective(logTerms(), 0.0, 10.0, 1000.0);
    EXPECT_DOUBLE_EQ(r.rate, 1000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kBoundHigh);
}

TEST(RateObjective, HugePriceTakesLowBound) {
    const auto r = solve_rate_objective(logTerms(), 1e12, 10.0, 1000.0);
    EXPECT_DOUBLE_EQ(r.rate, 10.0);
    EXPECT_EQ(r.method, RateSolveMethod::kBoundLow);
}

TEST(RateObjective, LogClosedFormMatchesAnalytic) {
    // Combined weight W = 400*20 + 800*5 + 2000*1 = 14000; r = W/p - 1.
    const double price = 100.0;
    const auto r = solve_rate_objective(logTerms(), price, 10.0, 1000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kClosedForm);
    EXPECT_NEAR(r.rate, 14000.0 / price - 1.0, 1e-9);
}

TEST(RateObjective, PowerClosedFormMatchesAnalytic) {
    std::vector<WeightedUtility> terms{{100.0, std::make_shared<PowerUtility>(3.0, 0.5)},
                                       {50.0, std::make_shared<PowerUtility>(7.0, 0.5)}};
    // W = 100*3 + 50*7 = 650; W*0.5*r^-0.5 = p => r = (p/(0.5 W))^-2
    const double price = 20.0;
    const auto r = solve_rate_objective(terms, price, 1.0, 10000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kClosedForm);
    EXPECT_NEAR(r.rate, std::pow(price / (0.5 * 650.0), -2.0), 1e-6);
}

TEST(RateObjective, ScaledUtilitiesCombineIntoClosedForm) {
    std::vector<WeightedUtility> terms{
        {10.0, std::make_shared<ScaledUtility>(2.0, std::make_shared<LogUtility>(3.0))},
        {5.0, std::make_shared<LogUtility>(4.0)}};
    // W = 10*2*3 + 5*4 = 80
    const auto r = solve_rate_objective(terms, 2.0, 1.0, 1000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kClosedForm);
    EXPECT_NEAR(r.rate, 80.0 / 2.0 - 1.0, 1e-9);
}

TEST(RateObjective, MixedFamiliesFallBackToNumeric) {
    std::vector<WeightedUtility> terms{{10.0, std::make_shared<LogUtility>(5.0)},
                                       {10.0, std::make_shared<PowerUtility>(5.0, 0.5)}};
    const auto r = solve_rate_objective(terms, 3.0, 1.0, 1000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kNumeric);
    // Stationarity must hold at the solution.
    EXPECT_NEAR(lrgp::utility::rate_objective_derivative(terms, 3.0, r.rate), 0.0, 1e-5);
}

TEST(RateObjective, MixedPowerExponentsFallBackToNumeric) {
    std::vector<WeightedUtility> terms{{10.0, std::make_shared<PowerUtility>(5.0, 0.25)},
                                       {10.0, std::make_shared<PowerUtility>(5.0, 0.75)}};
    const auto r = solve_rate_objective(terms, 30.0, 1.0, 1000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kNumeric);
    EXPECT_NEAR(lrgp::utility::rate_objective_derivative(terms, 30.0, r.rate), 0.0, 1e-5);
}

TEST(RateObjective, NumericPathMatchesClosedForm) {
    RateSolveOptions numeric;
    numeric.allow_closed_form = false;
    for (double price : {10.0, 50.0, 200.0, 1000.0}) {
        const auto closed = solve_rate_objective(logTerms(), price, 10.0, 1000.0);
        const auto iter = solve_rate_objective(logTerms(), price, 10.0, 1000.0, numeric);
        EXPECT_NEAR(closed.rate, iter.rate, 1e-5 * (1.0 + closed.rate)) << "price=" << price;
    }
}

TEST(RateObjective, ZeroPopulationTermsIgnored) {
    std::vector<WeightedUtility> terms{{0.0, std::make_shared<PowerUtility>(9.0, 0.9)},
                                       {100.0, std::make_shared<LogUtility>(10.0)}};
    // The zero-population power term must not block the log closed form.
    const auto r = solve_rate_objective(terms, 10.0, 1.0, 1000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kClosedForm);
    EXPECT_NEAR(r.rate, 1000.0 / 10.0 - 1.0, 1e-9);
}

TEST(RateObjective, Validation) {
    EXPECT_THROW(solve_rate_objective(logTerms(), 1.0, 10.0, 5.0), std::invalid_argument);
    EXPECT_THROW(solve_rate_objective(logTerms(), -1.0, 10.0, 20.0), std::invalid_argument);
    std::vector<WeightedUtility> bad{{1.0, nullptr}};
    EXPECT_THROW(solve_rate_objective(bad, 1.0, 10.0, 20.0), std::invalid_argument);
}

TEST(RateObjective, ValueAndDerivativeHelpers) {
    const auto terms = logTerms();
    const double v = lrgp::utility::rate_objective_value(terms, 2.0, 10.0);
    double expected = -2.0 * 10.0;
    for (const auto& t : terms) expected += t.population * t.utility->value(10.0);
    EXPECT_NEAR(v, expected, 1e-9);
}

// Property sweep: the solution maximizes the objective — nudging the rate
// either way may not improve it.
class RateObjectiveSweep : public ::testing::TestWithParam<double> {};

TEST_P(RateObjectiveSweep, SolutionIsAMaximizer) {
    const double price = GetParam();
    const auto terms = logTerms();
    const auto r = solve_rate_objective(terms, price, 10.0, 1000.0);
    const double at = lrgp::utility::rate_objective_value(terms, price, r.rate);
    for (double nudge : {-1.0, -0.1, 0.1, 1.0}) {
        const double other = r.rate + nudge;
        if (other < 10.0 || other > 1000.0) continue;
        EXPECT_GE(at + 1e-9, lrgp::utility::rate_objective_value(terms, price, other))
            << "price=" << price << " nudge=" << nudge;
    }
}

INSTANTIATE_TEST_SUITE_P(Prices, RateObjectiveSweep,
                         ::testing::Values(0.0, 1.0, 13.9, 50.0, 140.0, 700.0, 1272.7, 5000.0));

}  // namespace
