#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "utility/rate_objective.hpp"

namespace {

using lrgp::utility::LogUtility;
using lrgp::utility::PowerUtility;
using lrgp::utility::RateSolveMethod;
using lrgp::utility::RateSolveOptions;
using lrgp::utility::ScaledUtility;
using lrgp::utility::solve_rate_objective;
using lrgp::utility::WeightedUtility;

std::vector<WeightedUtility> logTerms() {
    // Mirrors one flow of the base workload: 400 consumers of rank 20,
    // 800 of rank 5, 2000 of rank 1.
    return {{400.0, std::make_shared<LogUtility>(20.0)},
            {800.0, std::make_shared<LogUtility>(5.0)},
            {2000.0, std::make_shared<LogUtility>(1.0)}};
}

TEST(RateObjective, NoConsumersPricedTakesLowBound) {
    std::vector<WeightedUtility> terms{{0.0, std::make_shared<LogUtility>(5.0)}};
    const auto r = solve_rate_objective(terms, 1.0, 10.0, 1000.0);
    EXPECT_DOUBLE_EQ(r.rate, 10.0);
    EXPECT_EQ(r.method, RateSolveMethod::kBoundLow);
}

TEST(RateObjective, NoConsumersFreeTakesHighBound) {
    std::vector<WeightedUtility> terms{{0.0, std::make_shared<LogUtility>(5.0)}};
    const auto r = solve_rate_objective(terms, 0.0, 10.0, 1000.0);
    EXPECT_DOUBLE_EQ(r.rate, 1000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kBoundHigh);
}

TEST(RateObjective, ZeroPriceTakesHighBound) {
    const auto r = solve_rate_objective(logTerms(), 0.0, 10.0, 1000.0);
    EXPECT_DOUBLE_EQ(r.rate, 1000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kBoundHigh);
}

TEST(RateObjective, HugePriceTakesLowBound) {
    const auto r = solve_rate_objective(logTerms(), 1e12, 10.0, 1000.0);
    EXPECT_DOUBLE_EQ(r.rate, 10.0);
    EXPECT_EQ(r.method, RateSolveMethod::kBoundLow);
}

TEST(RateObjective, LogClosedFormMatchesAnalytic) {
    // Combined weight W = 400*20 + 800*5 + 2000*1 = 14000; r = W/p - 1.
    const double price = 100.0;
    const auto r = solve_rate_objective(logTerms(), price, 10.0, 1000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kClosedForm);
    EXPECT_NEAR(r.rate, 14000.0 / price - 1.0, 1e-9);
}

TEST(RateObjective, PowerClosedFormMatchesAnalytic) {
    std::vector<WeightedUtility> terms{{100.0, std::make_shared<PowerUtility>(3.0, 0.5)},
                                       {50.0, std::make_shared<PowerUtility>(7.0, 0.5)}};
    // W = 100*3 + 50*7 = 650; W*0.5*r^-0.5 = p => r = (p/(0.5 W))^-2
    const double price = 20.0;
    const auto r = solve_rate_objective(terms, price, 1.0, 10000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kClosedForm);
    EXPECT_NEAR(r.rate, std::pow(price / (0.5 * 650.0), -2.0), 1e-6);
}

TEST(RateObjective, ScaledUtilitiesCombineIntoClosedForm) {
    std::vector<WeightedUtility> terms{
        {10.0, std::make_shared<ScaledUtility>(2.0, std::make_shared<LogUtility>(3.0))},
        {5.0, std::make_shared<LogUtility>(4.0)}};
    // W = 10*2*3 + 5*4 = 80
    const auto r = solve_rate_objective(terms, 2.0, 1.0, 1000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kClosedForm);
    EXPECT_NEAR(r.rate, 80.0 / 2.0 - 1.0, 1e-9);
}

TEST(RateObjective, MixedFamiliesFallBackToNumeric) {
    std::vector<WeightedUtility> terms{{10.0, std::make_shared<LogUtility>(5.0)},
                                       {10.0, std::make_shared<PowerUtility>(5.0, 0.5)}};
    const auto r = solve_rate_objective(terms, 3.0, 1.0, 1000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kNumeric);
    // Stationarity must hold at the solution.
    EXPECT_NEAR(lrgp::utility::rate_objective_derivative(terms, 3.0, r.rate), 0.0, 1e-5);
}

TEST(RateObjective, MixedPowerExponentsFallBackToNumeric) {
    std::vector<WeightedUtility> terms{{10.0, std::make_shared<PowerUtility>(5.0, 0.25)},
                                       {10.0, std::make_shared<PowerUtility>(5.0, 0.75)}};
    const auto r = solve_rate_objective(terms, 30.0, 1.0, 1000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kNumeric);
    EXPECT_NEAR(lrgp::utility::rate_objective_derivative(terms, 30.0, r.rate), 0.0, 1e-5);
}

TEST(RateObjective, NumericPathMatchesClosedForm) {
    RateSolveOptions numeric;
    numeric.allow_closed_form = false;
    for (double price : {10.0, 50.0, 200.0, 1000.0}) {
        const auto closed = solve_rate_objective(logTerms(), price, 10.0, 1000.0);
        const auto iter = solve_rate_objective(logTerms(), price, 10.0, 1000.0, numeric);
        EXPECT_NEAR(closed.rate, iter.rate, 1e-5 * (1.0 + closed.rate)) << "price=" << price;
    }
}

TEST(RateObjective, ZeroPopulationTermsIgnored) {
    std::vector<WeightedUtility> terms{{0.0, std::make_shared<PowerUtility>(9.0, 0.9)},
                                       {100.0, std::make_shared<LogUtility>(10.0)}};
    // The zero-population power term must not block the log closed form.
    const auto r = solve_rate_objective(terms, 10.0, 1.0, 1000.0);
    EXPECT_EQ(r.method, RateSolveMethod::kClosedForm);
    EXPECT_NEAR(r.rate, 1000.0 / 10.0 - 1.0, 1e-9);
}

TEST(RateObjective, Validation) {
    EXPECT_THROW(solve_rate_objective(logTerms(), 1.0, 10.0, 5.0), std::invalid_argument);
    EXPECT_THROW(solve_rate_objective(logTerms(), -1.0, 10.0, 20.0), std::invalid_argument);
    std::vector<WeightedUtility> bad{{1.0, nullptr}};
    EXPECT_THROW(solve_rate_objective(bad, 1.0, 10.0, 20.0), std::invalid_argument);
}

TEST(RateObjective, ValueAndDerivativeHelpers) {
    const auto terms = logTerms();
    const double v = lrgp::utility::rate_objective_value(terms, 2.0, 10.0);
    double expected = -2.0 * 10.0;
    for (const auto& t : terms) expected += t.population * t.utility->value(10.0);
    EXPECT_NEAR(v, expected, 1e-9);
}

// Property sweep: the solution maximizes the objective — nudging the rate
// either way may not improve it.
class RateObjectiveSweep : public ::testing::TestWithParam<double> {};

TEST_P(RateObjectiveSweep, SolutionIsAMaximizer) {
    const double price = GetParam();
    const auto terms = logTerms();
    const auto r = solve_rate_objective(terms, price, 10.0, 1000.0);
    const double at = lrgp::utility::rate_objective_value(terms, price, r.rate);
    for (double nudge : {-1.0, -0.1, 0.1, 1.0}) {
        const double other = r.rate + nudge;
        if (other < 10.0 || other > 1000.0) continue;
        EXPECT_GE(at + 1e-9, lrgp::utility::rate_objective_value(terms, price, other))
            << "price=" << price << " nudge=" << nudge;
    }
}

INSTANTIATE_TEST_SUITE_P(Prices, RateObjectiveSweep,
                         ::testing::Values(0.0, 1.0, 13.9, 50.0, 140.0, 700.0, 1272.7, 5000.0));

// ---- non-concave terms route through the global scan path --------------

using lrgp::utility::SigmoidUtility;

TEST(RateObjectiveNonConcave, SigmoidMatchesBruteForceGrid) {
    // One sigmoid class: the objective has a unique interior maximum for
    // moderate prices, but the bound-derivative shortcuts of the concave
    // path would misclassify it (derivative at lo is ~0).
    for (double price : {0.0, 0.5, 2.0, 8.0}) {
        std::vector<WeightedUtility> terms{{6.0, std::make_shared<SigmoidUtility>(10.0, 5.0, 1.5)}};
        const auto r = solve_rate_objective(terms, price, 0.5, 12.0);
        // Brute force on a fine grid; the solver must be at least as good.
        double best = -1e300;
        for (double g = 0.5; g <= 12.0; g += 1e-4)
            best = std::max(best, lrgp::utility::rate_objective_value(terms, price, g));
        EXPECT_GE(lrgp::utility::rate_objective_value(terms, price, r.rate), best - 1e-6)
            << "price=" << price;
    }
}

TEST(RateObjectiveNonConcave, HugePriceClampsLowZeroPriceClampsHigh) {
    std::vector<WeightedUtility> terms{{4.0, std::make_shared<SigmoidUtility>(8.0, 3.0, 2.0)}};
    const auto low = solve_rate_objective(terms, 1e6, 1.0, 10.0);
    EXPECT_DOUBLE_EQ(low.rate, 1.0);
    const auto high = solve_rate_objective(terms, 0.0, 1.0, 10.0);
    EXPECT_DOUBLE_EQ(high.rate, 10.0);
}

TEST(RateObjectiveNonConcave, MixedConcaveAndSigmoidTermsMaximize) {
    // A shifted-log class plus a step-like sigmoid: the sum is neither
    // concave nor unimodal in general; the scan must still find a global
    // maximizer up to grid resolution.
    std::vector<WeightedUtility> terms{
        {10.0, std::make_shared<LogUtility>(4.0)},
        {8.0, std::make_shared<SigmoidUtility>(15.0, 7.0, 6.0)}};
    for (double price : {1.0, 5.0, 20.0, 60.0}) {
        const auto r = solve_rate_objective(terms, price, 0.5, 10.0);
        double best = -1e300;
        for (double g = 0.5; g <= 10.0; g += 1e-4)
            best = std::max(best, lrgp::utility::rate_objective_value(terms, price, g));
        EXPECT_GE(lrgp::utility::rate_objective_value(terms, price, r.rate), best - 1e-5)
            << "price=" << price;
    }
}

TEST(RateObjectiveNonConcave, ZeroPopulationSigmoidKeepsClosedForm) {
    // A dormant sigmoid class must not force the scan path.
    std::vector<WeightedUtility> terms{
        {400.0, std::make_shared<LogUtility>(20.0)},
        {0.0, std::make_shared<SigmoidUtility>(10.0, 5.0, 1.0)}};
    const auto r = solve_rate_objective(terms, 10.0, 10.0, 1000.0);
    EXPECT_EQ(r.method, lrgp::utility::RateSolveMethod::kClosedForm);
    EXPECT_NEAR(r.rate, 400.0 * 20.0 / 10.0 - 1.0, 1e-6);
}

TEST(RateObjectiveNonConcave, DeterministicAcrossCalls) {
    std::vector<WeightedUtility> terms{
        {5.0, std::make_shared<SigmoidUtility>(12.0, 4.0, 3.0)},
        {7.0, std::make_shared<LogUtility>(2.0)}};
    const auto a = solve_rate_objective(terms, 3.0, 1.0, 9.0);
    const auto b = solve_rate_objective(terms, 3.0, 1.0, 9.0);
    EXPECT_EQ(a.rate, b.rate);  // bitwise: same scan, same arithmetic
    EXPECT_EQ(a.method, b.method);
}

}  // namespace
