#include <gtest/gtest.h>

#include <cmath>

#include "lrgp/convergence.hpp"

namespace {

using lrgp::core::ConvergenceDetector;
using lrgp::core::ConvergenceOptions;

TEST(Convergence, NotConvergedBeforeWindowFills) {
    ConvergenceDetector d(ConvergenceOptions{5, 1e-3});
    for (int i = 0; i < 4; ++i) EXPECT_FALSE(d.addSample(100.0));
    EXPECT_TRUE(d.addSample(100.0));  // 5th identical sample -> converged
    EXPECT_EQ(d.convergedAt(), 5u);
}

TEST(Convergence, OscillationBlocksConvergence) {
    ConvergenceDetector d(ConvergenceOptions{5, 1e-3});
    for (int i = 0; i < 50; ++i) d.addSample(100.0 + (i % 2 ? 1.0 : -1.0));  // 2% swing
    EXPECT_FALSE(d.converged());
}

TEST(Convergence, SmallRelativeAmplitudePasses) {
    ConvergenceDetector d(ConvergenceOptions{5, 1e-3});
    for (int i = 0; i < 10; ++i) d.addSample(1e6 + (i % 2 ? 400.0 : -400.0));  // 0.08% swing
    EXPECT_TRUE(d.converged());
}

TEST(Convergence, ConvergedAtRecordsFirstFiring) {
    ConvergenceDetector d(ConvergenceOptions{3, 1e-3});
    d.addSample(1.0);
    d.addSample(100.0);
    d.addSample(100.0);   // window {1,100,100}: huge amplitude
    d.addSample(100.0);   // window {100,100,100}: converged at sample 4
    EXPECT_TRUE(d.converged());
    EXPECT_EQ(d.convergedAt(), 4u);
    // Further samples do not change the recorded iteration.
    d.addSample(100.0);
    EXPECT_EQ(d.convergedAt(), 4u);
}

TEST(Convergence, DecayingOscillationEventuallyConverges) {
    ConvergenceDetector d(ConvergenceOptions{10, 1e-3});
    std::size_t fired_at = 0;
    for (int i = 0; i < 300; ++i) {
        const double wobble = 1000.0 * std::exp(-0.05 * i) * (i % 2 ? 1.0 : -1.0);
        if (d.addSample(1e5 + wobble) && fired_at == 0) fired_at = d.convergedAt();
    }
    EXPECT_TRUE(d.converged());
    EXPECT_GT(fired_at, 10u);
    EXPECT_LT(fired_at, 300u);
}

TEST(Convergence, ResetClearsState) {
    ConvergenceDetector d(ConvergenceOptions{3, 1e-3});
    for (int i = 0; i < 5; ++i) d.addSample(7.0);
    ASSERT_TRUE(d.converged());
    d.reset();
    EXPECT_FALSE(d.converged());
    EXPECT_EQ(d.convergedAt(), 0u);
}

TEST(Convergence, ZeroMeanNeverConverges) {
    ConvergenceDetector d(ConvergenceOptions{4, 1e-3});
    for (int i = 0; i < 20; ++i) d.addSample(0.0);
    // Mean zero: relative amplitude undefined; detector stays quiet.
    EXPECT_FALSE(d.converged());
}

TEST(Convergence, Validation) {
    EXPECT_THROW(ConvergenceDetector(ConvergenceOptions{1, 1e-3}), std::invalid_argument);
    EXPECT_THROW(ConvergenceDetector(ConvergenceOptions{5, 0.0}), std::invalid_argument);
}

}  // namespace
