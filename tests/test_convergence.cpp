#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <random>
#include <vector>

#include "lrgp/convergence.hpp"

namespace {

using lrgp::core::ConvergenceDetector;
using lrgp::core::ConvergenceOptions;

/// Brute-force reference: always performs the full window scan.  The
/// production detector's uniform-run fast path must be outcome-identical
/// to this on every sample.
class FullScanDetector {
public:
    explicit FullScanDetector(ConvergenceOptions options) : options_(options) {}

    bool addSample(double utility) {
        ++samples_seen_;
        window_.push_back(utility);
        if (window_.size() > options_.window) window_.pop_front();
        if (!converged_ && window_.size() == options_.window) {
            const auto [lo, hi] = std::minmax_element(window_.begin(), window_.end());
            double mean = 0.0;
            for (double s : window_) mean += s;
            mean /= static_cast<double>(window_.size());
            if (mean != 0.0 && (*hi - *lo) / std::abs(mean) < options_.relative_amplitude) {
                converged_ = true;
                converged_at_ = samples_seen_;
            }
        }
        return converged_;
    }

    [[nodiscard]] bool converged() const { return converged_; }
    [[nodiscard]] std::size_t convergedAt() const { return converged_at_; }

private:
    ConvergenceOptions options_;
    std::deque<double> window_;
    std::size_t samples_seen_ = 0;
    bool converged_ = false;
    std::size_t converged_at_ = 0;
};

TEST(Convergence, NotConvergedBeforeWindowFills) {
    ConvergenceDetector d(ConvergenceOptions{5, 1e-3});
    for (int i = 0; i < 4; ++i) EXPECT_FALSE(d.addSample(100.0));
    EXPECT_TRUE(d.addSample(100.0));  // 5th identical sample -> converged
    EXPECT_EQ(d.convergedAt(), 5u);
}

TEST(Convergence, OscillationBlocksConvergence) {
    ConvergenceDetector d(ConvergenceOptions{5, 1e-3});
    for (int i = 0; i < 50; ++i) d.addSample(100.0 + (i % 2 ? 1.0 : -1.0));  // 2% swing
    EXPECT_FALSE(d.converged());
}

TEST(Convergence, SmallRelativeAmplitudePasses) {
    ConvergenceDetector d(ConvergenceOptions{5, 1e-3});
    for (int i = 0; i < 10; ++i) d.addSample(1e6 + (i % 2 ? 400.0 : -400.0));  // 0.08% swing
    EXPECT_TRUE(d.converged());
}

TEST(Convergence, ConvergedAtRecordsFirstFiring) {
    ConvergenceDetector d(ConvergenceOptions{3, 1e-3});
    d.addSample(1.0);
    d.addSample(100.0);
    d.addSample(100.0);   // window {1,100,100}: huge amplitude
    d.addSample(100.0);   // window {100,100,100}: converged at sample 4
    EXPECT_TRUE(d.converged());
    EXPECT_EQ(d.convergedAt(), 4u);
    // Further samples do not change the recorded iteration.
    d.addSample(100.0);
    EXPECT_EQ(d.convergedAt(), 4u);
}

TEST(Convergence, DecayingOscillationEventuallyConverges) {
    ConvergenceDetector d(ConvergenceOptions{10, 1e-3});
    std::size_t fired_at = 0;
    for (int i = 0; i < 300; ++i) {
        const double wobble = 1000.0 * std::exp(-0.05 * i) * (i % 2 ? 1.0 : -1.0);
        if (d.addSample(1e5 + wobble) && fired_at == 0) fired_at = d.convergedAt();
    }
    EXPECT_TRUE(d.converged());
    EXPECT_GT(fired_at, 10u);
    EXPECT_LT(fired_at, 300u);
}

TEST(Convergence, ResetClearsState) {
    ConvergenceDetector d(ConvergenceOptions{3, 1e-3});
    for (int i = 0; i < 5; ++i) d.addSample(7.0);
    ASSERT_TRUE(d.converged());
    d.reset();
    EXPECT_FALSE(d.converged());
    EXPECT_EQ(d.convergedAt(), 0u);
}

TEST(Convergence, ZeroMeanNeverConverges) {
    ConvergenceDetector d(ConvergenceOptions{4, 1e-3});
    for (int i = 0; i < 20; ++i) d.addSample(0.0);
    // Mean zero: relative amplitude undefined; detector stays quiet.
    EXPECT_FALSE(d.converged());
}

TEST(Convergence, UniformRunLengthTracksTrailingRun) {
    ConvergenceDetector d(ConvergenceOptions{4, 1e-3});
    EXPECT_EQ(d.uniformRunLength(), 0u);
    d.addSample(5.0);
    EXPECT_EQ(d.uniformRunLength(), 1u);
    d.addSample(5.0);
    EXPECT_EQ(d.uniformRunLength(), 2u);
    d.addSample(6.0);  // run breaks
    EXPECT_EQ(d.uniformRunLength(), 1u);
    d.addSample(6.0);
    EXPECT_EQ(d.uniformRunLength(), 2u);
    d.reset();
    EXPECT_EQ(d.uniformRunLength(), 0u);
}

TEST(Convergence, FastPathMatchesFullScanOnStructuredSequences) {
    // The uniform-run fast path must fire on exactly the same sample as
    // the brute-force full scan — including the mean-zero exclusion and
    // runs interrupted by a blip.
    const std::vector<std::vector<double>> sequences = {
        {1, 2, 3, 4, 5, 5, 5, 5, 5, 5, 5, 5},              // ramp then uniform
        {0, 0, 0, 0, 0, 0, 0, 0, 0, 0},                    // uniform zeros: never
        {7, 7, 7, 7, 9, 7, 7, 7, 7, 7, 7, 7, 7},           // blip restarts the run
        {100, -100, 100, -100, 100, 100, 100, 100, 100},   // sign flips then settle
        {1e6, 1e6 + 1, 1e6, 1e6 + 1, 1e6, 1e6 + 1},        // tiny relative wobble
        {-4, -4, -4, -4, -4, -4},                          // negative uniform run
    };
    for (std::size_t w = 2; w <= 6; ++w) {
        for (std::size_t s = 0; s < sequences.size(); ++s) {
            SCOPED_TRACE(testing::Message() << "window " << w << " sequence " << s);
            const ConvergenceOptions options{w, 1e-3};
            ConvergenceDetector fast(options);
            FullScanDetector reference(options);
            for (double sample : sequences[s]) {
                EXPECT_EQ(fast.addSample(sample), reference.addSample(sample));
                EXPECT_EQ(fast.converged(), reference.converged());
                EXPECT_EQ(fast.convergedAt(), reference.convergedAt());
            }
        }
    }
}

TEST(Convergence, FastPathMatchesFullScanOnRandomSequences) {
    // Randomized differential check: mixed noisy stretches and uniform
    // runs of random lengths, across window sizes and thresholds.
    std::mt19937 rng(20260806u);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t window = 2 + rng() % 9;
        const double threshold = (trial % 2 == 0) ? 1e-3 : 5e-2;
        const ConvergenceOptions options{window, threshold};
        ConvergenceDetector fast(options);
        FullScanDetector reference(options);
        double level = static_cast<double>(static_cast<int>(rng() % 2001)) - 1000.0;
        for (int i = 0; i < 120; ++i) {
            double sample;
            if (rng() % 3 == 0) {
                // Noisy stretch around the current level.
                sample = level + static_cast<double>(static_cast<int>(rng() % 200)) - 100.0;
            } else {
                sample = level;  // extends a uniform run
            }
            if (rng() % 17 == 0) level = static_cast<double>(static_cast<int>(rng() % 2001)) - 1000.0;
            SCOPED_TRACE(testing::Message() << "trial " << trial << " sample " << i);
            ASSERT_EQ(fast.addSample(sample), reference.addSample(sample));
            ASSERT_EQ(fast.convergedAt(), reference.convergedAt());
        }
    }
}

TEST(Convergence, Validation) {
    EXPECT_THROW(ConvergenceDetector(ConvergenceOptions{1, 1e-3}), std::invalid_argument);
    EXPECT_THROW(ConvergenceDetector(ConvergenceOptions{5, 0.0}), std::invalid_argument);
}

}  // namespace
