// Golden-file regression tests for the deterministic text writers:
// iteration-trace CSV, TableWriter (ASCII + CSV), Chrome trace JSON and
// Prometheus exposition.  Each test renders a fixed input and compares
// byte-exact against tests/golden/<name>.golden.
//
// To regenerate after an intentional format change:
//   ./lrgp_golden_tests --update-golden      (or LRGP_UPDATE_GOLDEN=1)
// then review the fixture diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>

#include "lrgp/optimizer.hpp"
#include "lrgp/parallel_engine.hpp"
#include "lrgp/trace_export.hpp"
#include "metrics/table_writer.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "runtime/runtime.hpp"
#include "shard/sharded_engine.hpp"
#include "simd/vector_engine.hpp"
#include "test_helpers.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;

bool g_update_golden = false;

std::string golden_path(const std::string& name) {
    return std::string(LRGP_GOLDEN_DIR) + "/" + name + ".golden";
}

void check_golden(const std::string& name, const std::string& actual) {
    const std::string path = golden_path(name);
    if (g_update_golden) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " — run with --update-golden to create it";
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string expected = buf.str();
    if (expected != actual) {
        // Report the first differing line to keep failures readable.
        std::istringstream a(expected), b(actual);
        std::string la, lb;
        int line = 1;
        while (std::getline(a, la) && std::getline(b, lb) && la == lb) ++line;
        FAIL() << name << " differs from " << path << " at line " << line << "\n  golden: " << la
               << "\n  actual: " << lb
               << "\nIf the change is intentional, rerun with --update-golden.";
    }
}

TEST(Golden, TraceExportCsv) {
    // The tiny problem's 8-iteration trajectory is fully deterministic.
    const auto t = test::make_tiny_problem();
    core::LrgpOptimizer optimizer(t.spec);
    std::ostringstream os;
    core::run_and_export(os, optimizer, 8);
    check_golden("trace_export_csv", os.str());
}

metrics::TableWriter make_table() {
    metrics::TableWriter table({"workload", "iters", "utility", "speedup"}, 3);
    table.addRow({std::string("base"), 120LL, 1234.5, 1.0});
    table.addRow({std::string("wide, sparse"), 80LL, 98765.4321, 3.75});
    table.addRow({std::string("quoted \"x\""), 7LL, 0.125, 0.5});
    return table;
}

TEST(Golden, TableWriterAscii) {
    check_golden("table_writer_ascii", make_table().toTableString());
}

TEST(Golden, TableWriterCsv) {
    check_golden("table_writer_csv", make_table().toCsvString());
}

TEST(Golden, ChromeTraceJson) {
    // Hand-fed timestamps (no clock) keep the JSON byte-stable.
    obs::IterationTracer tracer;
    tracer.beginIteration(1);
    tracer.complete("rate_phase", "lrgp", 0, 100.0, 40.5, {{"iteration", 1.0}});
    tracer.complete("iteration", "lrgp", 0, 100.0, 90.25,
                    {{"iteration", 1.0}, {"utility", 512.0625}});
    tracer.counterSample("utility", 0, 190.25, 512.0625);
    tracer.instant("suspicion", "dist", 3, 250.0, {{"watcher", std::string("source")}});
    check_golden("chrome_trace_json", tracer.chromeTraceText());
}

TEST(Golden, PrometheusText) {
    obs::Registry reg;
    reg.counter("lrgp_iterations_total", "LRGP iterations completed").add(42);
    reg.counter("dist_messages_sent_total", "protocol messages by kind", {{"kind", "rate"}})
        .add(1200);
    reg.counter("dist_messages_sent_total", "protocol messages by kind", {{"kind", "node_report"}})
        .add(900);
    reg.gauge("lrgp_utility", "current objective value").set(512.0625);
    obs::Histogram& h =
        reg.histogram("lrgp_phase_seconds", {1e-6, 1e-4, 1e-2}, "phase wall time",
                      {{"phase", "rate"}});
    h.observe(5e-7);
    h.observe(5e-5);
    h.observe(5e-5);
    h.observe(1.0);
    check_golden("prometheus_text", reg.prometheusText());
}

TEST(Golden, IncrementalPrometheusText) {
    if constexpr (!obs::kEnabled) GTEST_SKIP() << "built without LRGP_OBS";
    // Drive the incremental engine on the tiny problem with observability
    // attached; the lrgp_inc_* counter values are fully deterministic
    // (the dirty sets follow the bitwise-deterministic trajectory).  The
    // live registry also holds wall-time histograms, which are not
    // byte-stable, so the golden fixture re-exposes just the incremental
    // series with the measured counts.
    const auto t = test::make_tiny_problem();
    obs::Registry live;
    core::ParallelLrgpEngine engine(t.spec, {}, {.threads = 1, .incremental = true});
    engine.attachObservability(&live);
    engine.run(12);

    obs::Registry reg;
    const obs::IncrementalInstruments inc = obs::IncrementalInstruments::resolve(reg);
    inc.dirty_flows->add(live.counterValue("lrgp_inc_dirty_flows_total"));
    inc.skipped_solves->add(live.counterValue("lrgp_inc_skipped_solves_total"));
    inc.dirty_nodes->add(live.counterValue("lrgp_inc_dirty_nodes_total"));
    inc.node_cache_hits->add(live.counterValue("lrgp_inc_node_cache_hits_total"));
    inc.rank_cache_hits->add(live.counterValue("lrgp_inc_rank_cache_hits_total"));
    inc.dirty_links->add(live.counterValue("lrgp_inc_dirty_links_total"));
    inc.utility_cache_hits->add(live.counterValue("lrgp_inc_utility_cache_hits_total"));
    check_golden("prometheus_inc_text", reg.prometheusText());
}

TEST(Golden, VectorPrometheusText) {
    if constexpr (!obs::kEnabled) GTEST_SKIP() << "built without LRGP_OBS";
    // Drive the vector engine on the tiny problem with observability
    // attached.  Lane occupancy and solve-kind counts are pure layout /
    // trajectory quantities (bitwise-deterministic); the kernel ns
    // counters are wall clocks and stay at their registered zeros in the
    // fixture.
    const auto t = test::make_tiny_problem();
    obs::Registry live;
    simd::VectorLrgpEngine engine(t.spec, {}, {.mode = simd::VectorMode::kExact});
    engine.attachObservability(&live, nullptr);
    engine.run(12);

    obs::Registry reg;
    const obs::VectorInstruments vec = obs::VectorInstruments::resolve(reg);
    vec.lanes_occupied->add(live.counterValue("lrgp_vec_lanes_occupied_total"));
    vec.lanes_masked->add(live.counterValue("lrgp_vec_lanes_masked_total"));
    vec.bound_solves->add(live.counterValue("lrgp_vec_bound_solves_total"));
    vec.closed_solves->add(live.counterValue("lrgp_vec_closed_solves_total"));
    check_golden("prometheus_vec_text", reg.prometheusText());
}

TEST(Golden, ShardPrometheusText) {
    if constexpr (!obs::kEnabled) GTEST_SKIP() << "built without LRGP_OBS";
    // Four flows through one congested hub node: the component exceeds
    // the 2-shard balance cap, so the partitioner must split it and the
    // hub becomes a boundary resource with a bitwise-deterministic
    // budget-exchange trajectory.  The live registry also holds the
    // reconcile wall-time histogram, which is not byte-stable, so the
    // fixture re-exposes just the deterministic lrgp_shard_* series with
    // the measured values.
    model::ProblemBuilder b;
    const model::NodeId source = b.addNode("P", 1e9);
    const model::NodeId hub = b.addNode("H", 400.0);
    for (int i = 0; i < 4; ++i) {
        const model::FlowId f = b.addFlow("f" + std::to_string(i), source, 1.0, 100.0);
        b.routeThroughNode(f, hub, 1.0);
        const model::NodeId n = b.addNode("S" + std::to_string(i), 500.0);
        b.routeThroughNode(f, n, 1.0);
        b.addClass("c" + std::to_string(i), f, n, 6, 2.0,
                   std::make_shared<utility::LogUtility>(10.0 + i));
    }
    obs::Registry live;
    shard::ShardedLrgpEngine engine(b.build(), {}, {.shards = 2, .threads = 1});
    engine.attachObservability(&live);
    engine.run(24);

    obs::Registry reg;
    const obs::ShardInstruments sh = obs::ShardInstruments::resolve(reg, engine.shardCount());
    sh.steps->add(live.counterValue("lrgp_shard_steps_total"));
    sh.member_iterations->add(live.counterValue("lrgp_shard_member_iterations_total"));
    sh.reconciles->add(live.counterValue("lrgp_shard_reconciles_total"));
    sh.price_exchanges->add(live.counterValue("lrgp_shard_price_exchanges_total"));
    sh.budget_updates->add(live.counterValue("lrgp_shard_budget_updates_total"));
    sh.wakeups->add(live.counterValue("lrgp_shard_wakeups_total"));
    sh.shard_count->set(live.findGauge("lrgp_shard_count")->value());
    sh.boundary_nodes->set(live.findGauge("lrgp_shard_boundary_nodes")->value());
    sh.boundary_links->set(live.findGauge("lrgp_shard_boundary_links")->value());
    sh.budget_moved->set(live.findGauge("lrgp_shard_budget_moved_units")->value());
    for (int s = 0; s < engine.shardCount(); ++s)
        sh.iterations_by_shard[static_cast<std::size_t>(s)]->add(live.counterValue(
            "lrgp_shard_iterations_total", {{"shard", std::to_string(s)}}));
    check_golden("prometheus_shard_text", reg.prometheusText());
}

TEST(Golden, RuntimePrometheusText) {
    if constexpr (!obs::kEnabled) GTEST_SKIP() << "built without LRGP_OBS";
    // Two async agents over the base workload in deterministic virtual
    // lockstep: every lrgp_runtime_* counter and gauge lands on the same
    // value on every run and every machine.  The live registry also
    // holds the digest-age and inbox-depth histograms, which fill from
    // thread-local observation order, so the fixture re-exposes just the
    // deterministic counter/gauge series with the measured values.
    obs::Registry live;
    runtime::RuntimeOptions options;
    options.agents = 2;
    runtime::AsyncShardRuntime rt(workload::make_base_workload(), {}, options);
    rt.attachObservability(&live);
    rt.runFor(1.0);

    obs::Registry reg;
    const obs::RuntimeInstruments ri = obs::RuntimeInstruments::resolve(reg);
    ri.digests_sent->add(live.counterValue("lrgp_runtime_digests_sent_total"));
    ri.digests_received->add(live.counterValue("lrgp_runtime_digests_received_total"));
    ri.rejected_stale->add(live.counterValue("lrgp_runtime_digests_rejected_stale_total"));
    ri.dropped_fault->add(live.counterValue("lrgp_runtime_messages_dropped_total",
                                            {{"cause", "fault"}}));
    ri.dropped_backpressure->add(live.counterValue("lrgp_runtime_messages_dropped_total",
                                                   {{"cause", "backpressure"}}));
    ri.send_failures->add(live.counterValue("lrgp_runtime_send_failures_total"));
    ri.retries->add(live.counterValue("lrgp_runtime_retries_total"));
    ri.suspicions->add(live.counterValue("lrgp_runtime_suspicions_total"));
    ri.recoveries->add(live.counterValue("lrgp_runtime_recoveries_total"));
    ri.crashes->add(live.counterValue("lrgp_runtime_crashes_total"));
    ri.restarts->add(live.counterValue("lrgp_runtime_restarts_total"));
    ri.snapshots->add(live.counterValue("lrgp_runtime_snapshots_total"));
    ri.snapshot_restores->add(live.counterValue("lrgp_runtime_snapshot_restores_total"));
    ri.budget_updates->add(live.counterValue("lrgp_runtime_budget_updates_total"));
    ri.degradations->add(live.counterValue("lrgp_runtime_degradations_total"));
    ri.agents->set(live.findGauge("lrgp_runtime_agents")->value());
    ri.utility->set(live.findGauge("lrgp_runtime_utility")->value());
    check_golden("prometheus_runtime_text", reg.prometheusText());
}

}  // namespace

int main(int argc, char** argv) {
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--update-golden") g_update_golden = true;
    if (const char* env = std::getenv("LRGP_UPDATE_GOLDEN"); env != nullptr && *env != '\0')
        g_update_golden = true;
    return RUN_ALL_TESTS();
}
