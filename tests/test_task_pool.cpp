// TaskPool unit tests, focused on the deterministic ordered fan-out /
// merge helper the sharded engine builds on: tasks may finish in any
// order on any number of workers, but merge(i) must run serially on the
// calling thread in ascending index order, strictly after every task.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "lrgp/task_pool.hpp"

namespace lrgp::core {
namespace {

TEST(TaskPool, ForEachMergeOrderedMergesInAscendingIndexOrder) {
    for (int threads : {1, 2, 4}) {
        TaskPool pool(threads);
        constexpr std::size_t kN = 64;
        std::vector<int> slot(kN, 0);
        std::vector<std::size_t> merge_order;
        const std::thread::id caller = std::this_thread::get_id();

        pool.forEachMergeOrdered(
            kN, [&](std::size_t i, int) { slot[i] = static_cast<int>(i) * 3 + 1; },
            [&](std::size_t i) {
                EXPECT_EQ(std::this_thread::get_id(), caller);
                merge_order.push_back(i);
            });

        ASSERT_EQ(merge_order.size(), kN) << "threads=" << threads;
        for (std::size_t i = 0; i < kN; ++i) {
            EXPECT_EQ(merge_order[i], i) << "threads=" << threads;
            EXPECT_EQ(slot[i], static_cast<int>(i) * 3 + 1) << "threads=" << threads;
        }
    }
}

TEST(TaskPool, ForEachMergeOrderedRunsEveryTaskBeforeAnyMerge) {
    TaskPool pool(4);
    constexpr std::size_t kN = 128;
    std::atomic<std::size_t> tasks_done{0};
    std::size_t seen_at_first_merge = 0;
    bool first_merge = true;
    pool.forEachMergeOrdered(
        kN, [&](std::size_t, int) { tasks_done.fetch_add(1, std::memory_order_relaxed); },
        [&](std::size_t) {
            if (first_merge) {
                seen_at_first_merge = tasks_done.load(std::memory_order_relaxed);
                first_merge = false;
            }
        });
    EXPECT_EQ(seen_at_first_merge, kN);
}

TEST(TaskPool, ForEachMergeOrderedZeroItemsIsANoop) {
    TaskPool pool(2);
    int calls = 0;
    pool.forEachMergeOrdered(
        0, [&](std::size_t, int) { ++calls; }, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(TaskPool, ForEachMergeOrderedPropagatesTaskException) {
    TaskPool pool(2);
    int merges = 0;
    EXPECT_THROW(pool.forEachMergeOrdered(
                     8,
                     [&](std::size_t i, int) {
                         if (i == 3) throw std::runtime_error("task 3 failed");
                     },
                     [&](std::size_t) { ++merges; }),
                 std::runtime_error);
    // The failure surfaces before any merge runs: no partial result is
    // ever published.
    EXPECT_EQ(merges, 0);
}

TEST(TaskPool, ForEachMergeOrderedWorkerIdsStayInRange) {
    TaskPool pool(3);
    constexpr std::size_t kN = 32;
    std::vector<int> worker_of(kN, -1);
    pool.forEachMergeOrdered(
        kN, [&](std::size_t i, int worker) { worker_of[i] = worker; }, [](std::size_t) {});
    for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_GE(worker_of[i], 0);
        EXPECT_LT(worker_of[i], pool.threadCount());
    }
}

}  // namespace
}  // namespace lrgp::core
