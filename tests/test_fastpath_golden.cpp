// Golden fixture for the lrgp_fastpath_* Prometheus exposition: a
// pinned deterministic fastpath run (small spec, fixed seed, two
// workers) exports its instrument bundle, compared byte-exact against
// tests/golden/fastpath_prometheus.golden.  Because the engine is
// bitwise deterministic across worker counts, the text is stable
// across runs, machines, and thread pools.
//
// To regenerate after an intentional change:
//   ./lrgp_fastpath_golden_tests --update-golden   (or LRGP_UPDATE_GOLDEN=1)
// then review the fixture diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>

#include "fastpath/fastpath.hpp"
#include "model/allocation.hpp"
#include "model/problem.hpp"
#include "obs/metrics.hpp"
#include "utility/utility_function.hpp"

namespace {

using namespace lrgp;

bool g_update_golden = false;

std::string golden_path(const std::string& name) {
    return std::string(LRGP_GOLDEN_DIR) + "/" + name + ".golden";
}

void check_golden(const std::string& name, const std::string& actual) {
    const std::string path = golden_path(name);
    if (g_update_golden) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " — run with --update-golden to create it";
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string expected = buf.str();
    if (expected != actual) {
        std::istringstream a(expected), b(actual);
        std::string la, lb;
        int line = 1;
        while (std::getline(a, la) && std::getline(b, lb) && la == lb) ++line;
        FAIL() << name << " differs from " << path << " at line " << line << "\n  golden: " << la
               << "\n  actual: " << lb
               << "\nIf the change is intentional, rerun with --update-golden.";
    }
}

/// Same pinned overlay as the fastpath unit suite.
model::ProblemSpec makeSmallSpec() {
    model::ProblemBuilder b;
    const model::NodeId s0 = b.addNode("S0", 100.0);
    const model::NodeId s1 = b.addNode("S1", 80.0);
    const model::LinkId l0 = b.addLink("l0", s0, s1, 50.0);
    const model::FlowId f0 = b.addFlow("f0", s0, 1.0, 10.0);
    b.routeThroughNode(f0, s0, 1.0);
    b.routeThroughNode(f0, s1, 1.0);
    b.routeOverLink(f0, l0, 1.0);
    const model::FlowId f1 = b.addFlow("f1", s1, 1.0, 8.0);
    b.routeThroughNode(f1, s1, 2.0);
    b.addClass("c0", f0, s0, 3, 0.5, std::make_shared<utility::LogUtility>(20.0));
    b.addClass("c1", f0, s1, 2, 1.0, std::make_shared<utility::LogUtility>(10.0));
    b.addClass("c2", f1, s1, 4, 0.5, std::make_shared<utility::LogUtility>(15.0));
    return b.build();
}

TEST(FastpathGolden, PrometheusText) {
    const model::ProblemSpec spec = makeSmallSpec();
    fastpath::FastpathOptions options;
    options.workers = 2;
    fastpath::Fastpath fp(spec, options);
    obs::Registry reg;
    fp.attachObservability(&reg);

    model::Allocation alloc;
    alloc.rates = {4.0, 2.0};
    alloc.populations = {2, 1, 3};
    fp.notePlanned(alloc);
    fp.enact(alloc);
    fp.setOfferedRate(model::FlowId{0}, 8.0);  // exercise the shaped counter
    fp.runUntil(30.0);

    check_golden("fastpath_prometheus", reg.prometheusText());
}

}  // namespace

int main(int argc, char** argv) {
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--update-golden") g_update_golden = true;
    if (const char* env = std::getenv("LRGP_UPDATE_GOLDEN"); env != nullptr && *env != '\0')
        g_update_golden = true;
    return RUN_ALL_TESTS();
}
