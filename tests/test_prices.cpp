#include <gtest/gtest.h>

#include <algorithm>

#include "lrgp/price_controllers.hpp"

namespace {

using namespace lrgp::core;

TEST(NodePrice, FixedGammaApproachesBcWhenFeasible) {
    NodePriceController ctrl(FixedGamma{0.5, 0.5});
    // used < capacity: p moves halfway toward BC each step.
    ctrl.update(/*bc=*/1.0, /*used=*/10.0, /*capacity=*/100.0);
    EXPECT_DOUBLE_EQ(ctrl.price(), 0.5);
    ctrl.update(1.0, 10.0, 100.0);
    EXPECT_DOUBLE_EQ(ctrl.price(), 0.75);
}

TEST(NodePrice, FixedGammaOneJumpsToBc) {
    NodePriceController ctrl(FixedGamma{1.0, 1.0});
    ctrl.update(0.42, 0.0, 100.0);
    EXPECT_DOUBLE_EQ(ctrl.price(), 0.42);
}

TEST(NodePrice, OverCapacityRaisesPriceProportionally) {
    NodePriceController ctrl(FixedGamma{0.1, 0.1}, /*initial_price=*/1.0);
    ctrl.update(/*bc=*/0.0, /*used=*/150.0, /*capacity=*/100.0);
    EXPECT_DOUBLE_EQ(ctrl.price(), 1.0 + 0.1 * 50.0);
}

TEST(NodePrice, PriceNeverNegative) {
    NodePriceController ctrl(FixedGamma{1.0, 1.0}, 0.5);
    // BC of 0 with gamma 1 drives price exactly to zero, never below.
    ctrl.update(0.0, 0.0, 100.0);
    EXPECT_DOUBLE_EQ(ctrl.price(), 0.0);
    ctrl.update(0.0, 0.0, 100.0);
    EXPECT_DOUBLE_EQ(ctrl.price(), 0.0);
}

TEST(NodePrice, ValidationRejectsBadParameters) {
    EXPECT_THROW(NodePriceController(FixedGamma{-0.1, 0.1}), std::invalid_argument);
    EXPECT_THROW(NodePriceController(FixedGamma{0.1, 0.1}, -1.0), std::invalid_argument);
    AdaptiveGamma bad;
    bad.min = 0.0;
    EXPECT_THROW((NodePriceController{bad}), std::invalid_argument);
    AdaptiveGamma bad2;
    bad2.shrink = 1.0;
    EXPECT_THROW((NodePriceController{bad2}), std::invalid_argument);
}

TEST(NodePrice, AdaptiveGammaGrowsWhileQuiet) {
    AdaptiveGamma policy;
    policy.initial = 0.05;
    NodePriceController ctrl(policy);
    // Monotone approach toward a constant BC: deltas keep the same sign,
    // so gamma keeps growing by the increment.
    const double g0 = ctrl.currentGamma();
    ctrl.update(10.0, 0.0, 100.0);
    ctrl.update(10.0, 0.0, 100.0);
    ctrl.update(10.0, 0.0, 100.0);
    EXPECT_NEAR(ctrl.currentGamma(), g0 + 3 * policy.increment, 1e-12);
}

TEST(NodePrice, AdaptiveGammaShrinksOnOscillation) {
    AdaptiveGamma policy;
    policy.initial = 0.08;
    NodePriceController ctrl(policy);
    // Alternate BC far above and far below the price: deltas flip sign.
    ctrl.update(10.0, 0.0, 100.0);   // up
    ctrl.update(0.0, 0.0, 100.0);    // down -> fluctuation detected
    EXPECT_LT(ctrl.currentGamma(), 0.08);
}

TEST(NodePrice, AdaptiveGammaClampedToInterval) {
    AdaptiveGamma policy;  // clamp [0.001, 0.1]
    policy.initial = 0.1;
    NodePriceController ctrl(policy);
    for (int i = 0; i < 50; ++i) ctrl.update(10.0, 0.0, 100.0);
    EXPECT_LE(ctrl.currentGamma(), policy.max);
    // Force repeated oscillation: gamma must not go below the floor.
    for (int i = 0; i < 50; ++i) ctrl.update(i % 2 ? 100.0 : 0.0, 0.0, 100.0);
    EXPECT_GE(ctrl.currentGamma(), policy.min);
}

TEST(NodePrice, AdaptiveInitialClamped) {
    AdaptiveGamma policy;
    policy.initial = 5.0;  // above max -> clamped to 0.1
    NodePriceController ctrl(policy);
    EXPECT_DOUBLE_EQ(ctrl.currentGamma(), policy.max);
}

TEST(NodePrice, ResetRestoresInitialState) {
    AdaptiveGamma policy;
    NodePriceController ctrl(policy);
    ctrl.update(10.0, 0.0, 100.0);
    ctrl.update(0.0, 0.0, 100.0);
    ctrl.reset();
    EXPECT_DOUBLE_EQ(ctrl.price(), 0.0);
    EXPECT_DOUBLE_EQ(ctrl.currentGamma(),
                     std::clamp(policy.initial, policy.min, policy.max));
    EXPECT_THROW(ctrl.reset(-1.0), std::invalid_argument);
}

TEST(LinkPrice, GradientProjectionUpdate) {
    LinkPriceController ctrl(0.01);
    // Over capacity: price rises by gamma * excess.
    ctrl.update(/*usage=*/150.0, /*capacity=*/100.0);
    EXPECT_DOUBLE_EQ(ctrl.price(), 0.5);
    // Under capacity: price falls, projected at zero.
    ctrl.update(0.0, 100.0);
    EXPECT_DOUBLE_EQ(ctrl.price(), 0.0);
}

TEST(LinkPrice, EquilibriumAtCapacity) {
    LinkPriceController ctrl(0.01, 2.0);
    ctrl.update(100.0, 100.0);
    EXPECT_DOUBLE_EQ(ctrl.price(), 2.0);
}

TEST(LinkPrice, Validation) {
    EXPECT_THROW(LinkPriceController(-0.1), std::invalid_argument);
    EXPECT_THROW(LinkPriceController(0.1, -1.0), std::invalid_argument);
}

}  // namespace
