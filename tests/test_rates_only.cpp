#include <gtest/gtest.h>

#include "baseline/rates_only.hpp"
#include "lrgp/optimizer.hpp"
#include "test_helpers.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using baseline::PopulationPolicy;
using baseline::rates_only_num;
using baseline::RatesOnlyOptions;

TEST(RatesOnly, ProportionalFillIsFeasible) {
    RatesOnlyOptions options;
    options.policy = PopulationPolicy::kProportionalFill;
    const auto result = rates_only_num(workload::make_base_workload(), options);
    EXPECT_TRUE(result.feasible);
    EXPECT_GT(result.utility, 0.0);
    EXPECT_GT(result.population_fill, 0.0);
    EXPECT_LT(result.population_fill, 1.0);  // the base workload oversubscribes
}

TEST(RatesOnly, MaxDemandIsInfeasibleOnBaseWorkload) {
    // The whole point of admission control: at S0 the wanted consumers
    // cost 19 * 8400 * 10 = 1.6M per second against capacity 0.9M even
    // at minimum rates.
    RatesOnlyOptions options;
    options.policy = PopulationPolicy::kMaxDemand;
    const auto result = rates_only_num(workload::make_base_workload(), options);
    EXPECT_FALSE(result.feasible);
}

TEST(RatesOnly, LrgpBeatsRatesOnlySubstantially) {
    const auto spec = workload::make_base_workload();
    core::LrgpOptimizer lrgp_opt(spec);
    lrgp_opt.run(200);

    RatesOnlyOptions options;
    options.policy = PopulationPolicy::kProportionalFill;
    const auto rates_only = rates_only_num(spec, options);

    ASSERT_TRUE(rates_only.feasible);
    // Joint optimization admits the valuable consumers instead of a
    // uniform cut; expect a large margin.
    EXPECT_GT(lrgp_opt.currentUtility(), 1.5 * rates_only.utility);
}

TEST(RatesOnly, MaxDemandFeasibleWhenCapacityIsAmple) {
    // Same structure, tiny populations: serving everyone fits, and the
    // rates-only optimizer then matches LRGP (admission control is moot).
    model::ProblemBuilder b;
    const auto src = b.addNode("P", 1e9);
    const auto node = b.addNode("S", 1e6);
    const auto flow = b.addFlow("f", src, 10.0, 1000.0);
    b.routeThroughNode(flow, node, 3.0);
    b.addClass("c", flow, node, 20, 19.0, std::make_shared<utility::LogUtility>(10.0));
    const auto spec = b.build();

    RatesOnlyOptions options;
    options.policy = PopulationPolicy::kMaxDemand;
    const auto result = rates_only_num(spec, options);
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.allocation.populations[0], 20);

    core::LrgpOptimizer lrgp_opt(spec);
    lrgp_opt.run(300);
    EXPECT_NEAR(result.utility, lrgp_opt.currentUtility(), 0.05 * lrgp_opt.currentUtility());
}

TEST(RatesOnly, PricesKeepRatesWithinNodeCapacity) {
    RatesOnlyOptions options;
    options.policy = PopulationPolicy::kProportionalFill;
    options.iterations = 800;
    const auto spec = workload::make_base_workload();
    const auto result = rates_only_num(spec, options);
    for (const model::NodeSpec& b : spec.nodes())
        EXPECT_LE(model::node_usage(spec, result.allocation, b.id), b.capacity * 1.01)
            << b.name;
}

TEST(RatesOnly, TraceConverges) {
    RatesOnlyOptions options;
    options.iterations = 600;
    const auto result = rates_only_num(workload::make_base_workload(), options);
    ASSERT_EQ(result.utility_trace.size(), 600u);
    EXPECT_LT(result.utility_trace.trailingRelativeAmplitude(50), 0.02);
}

TEST(RatesOnly, Validation) {
    const auto spec = workload::make_base_workload();
    RatesOnlyOptions bad;
    bad.iterations = 0;
    EXPECT_THROW((void)rates_only_num(spec, bad), std::invalid_argument);
    RatesOnlyOptions bad2;
    bad2.node_gamma = -1.0;
    EXPECT_THROW((void)rates_only_num(spec, bad2), std::invalid_argument);
}

TEST(GradientOnlyNodePrice, LosesToBenefitCostPricing) {
    // Key idea #4 ablation: without the benefit-cost signal, the node
    // price cannot mediate the rate/admission tradeoff.
    const auto spec = workload::make_base_workload();
    core::LrgpOptimizer full(spec);
    full.run(250);

    core::LrgpOptions ablated_options;
    ablated_options.node_price_rule = core::NodePriceRule::kGradientOnly;
    core::LrgpOptimizer ablated(spec, ablated_options);
    ablated.run(250);

    EXPECT_LT(ablated.currentUtility(), 0.9 * full.currentUtility());
    // The ablated variant still never violates constraints (greedy
    // admission is capacity-safe by construction).
    EXPECT_TRUE(model::check_feasibility(spec, ablated.allocation()).feasible());
}

TEST(GradientOnlyNodePrice, PriceDecaysToZeroUnderGreedyAllocation) {
    const auto spec = workload::make_base_workload();
    core::LrgpOptions options;
    options.node_price_rule = core::NodePriceRule::kGradientOnly;
    options.initial_node_price = 0.05;
    core::LrgpOptimizer opt(spec, options);
    opt.run(300);
    // Greedy never overfills, so used <= c always and the gradient-only
    // price can only fall.
    for (double p : opt.prices().node) EXPECT_LE(p, 0.05 + 1e-12);
}

}  // namespace
