// The node-local consumer allocation is an integer packing problem; the
// paper solves it greedily by benefit-cost order.  Greedy is optimal for
// the fractional relaxation and near-optimal for the integer problem
// when unit costs are small relative to capacity (the regime of all the
// paper's workloads).  These tests quantify that against brute force.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <random>

#include "lrgp/greedy_allocator.hpp"
#include "model/problem.hpp"
#include "utility/utility_function.hpp"

namespace {

using namespace lrgp;

struct NodeInstance {
    model::ProblemSpec spec;
    model::NodeId node;
    std::vector<model::ClassId> classes;
    double rate;
};

/// Builds a single-node instance with `k` classes of one flow, random
/// small n_max and costs.
NodeInstance randomNodeInstance(std::uint32_t seed, int k, double capacity) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> weight(1.0, 60.0);
    std::uniform_real_distribution<double> cost(1.0, 8.0);
    std::uniform_int_distribution<int> nmax(1, 6);

    model::ProblemBuilder b;
    const auto src = b.addNode("P", 1e9);
    const auto node = b.addNode("S", capacity);
    const auto flow = b.addFlow("f", src, 1.0, 100.0);
    b.routeThroughNode(flow, node, 1.0);
    std::vector<model::ClassId> classes;
    for (int i = 0; i < k; ++i) {
        classes.push_back(b.addClass("c" + std::to_string(i), flow, node, nmax(rng), cost(rng),
                                     std::make_shared<utility::LogUtility>(weight(rng))));
    }
    return NodeInstance{b.build(), node, classes, 10.0};
}

/// Brute-force best node-local utility subject to the capacity left
/// after the F term, enumerating all population combinations.
double bruteForceNodeOptimum(const NodeInstance& inst) {
    const double budget =
        inst.spec.node(inst.node).capacity -
        inst.spec.flowNodeCost(inst.node, model::FlowId{0}) * inst.rate;

    double best = 0.0;
    std::vector<int> pops(inst.classes.size(), 0);
    std::function<void(std::size_t, double, double)> recurse = [&](std::size_t idx, double used,
                                                                   double utility) {
        if (used > budget) return;
        best = std::max(best, utility);
        if (idx == inst.classes.size()) return;
        const auto& c = inst.spec.consumerClass(inst.classes[idx]);
        const double unit_cost = c.consumer_cost * inst.rate;
        const double unit_utility = c.utility->value(inst.rate);
        for (int n = 0; n <= c.max_consumers; ++n) {
            const double next_used = used + n * unit_cost;
            if (next_used > budget) break;
            recurse(idx + 1, next_used, utility + n * unit_utility);
        }
    };
    recurse(0, 0.0, 0.0);
    return best;
}

double greedyNodeUtility(const NodeInstance& inst) {
    core::GreedyConsumerAllocator greedy(inst.spec);
    std::vector<double> rates{inst.rate};
    const auto result = greedy.allocate(inst.node, rates);
    double utility = 0.0;
    for (const auto& [cls, n] : result.populations)
        utility += n * inst.spec.consumerClass(cls).utility->value(inst.rate);
    return utility;
}

class GreedyOptimality : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GreedyOptimality, TightCapacityNearOptimal) {
    // Capacity sized so only part of the demand fits: the interesting
    // packing regime.  Greedy must land within 10% of brute force.
    const auto inst = randomNodeInstance(GetParam(), 5, /*capacity=*/200.0);
    const double greedy = greedyNodeUtility(inst);
    const double optimum = bruteForceNodeOptimum(inst);
    EXPECT_LE(greedy, optimum + 1e-9);
    EXPECT_GE(greedy, 0.90 * optimum) << "seed " << GetParam();
}

TEST_P(GreedyOptimality, AmpleCapacityExactlyOptimal) {
    // Everything fits: greedy trivially matches brute force.
    const auto inst = randomNodeInstance(GetParam(), 5, /*capacity=*/1e6);
    EXPECT_NEAR(greedyNodeUtility(inst), bruteForceNodeOptimum(inst), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyOptimality,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
