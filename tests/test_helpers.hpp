// Shared fixtures: small hand-built problems used across test suites.
#pragma once

#include <memory>

#include "model/allocation.hpp"
#include "model/problem.hpp"
#include "utility/utility_function.hpp"

namespace lrgp::test {

/// One producer node, one consumer node, one flow, two classes competing
/// for the consumer node's capacity.  Small enough for exhaustive search.
///
///   node capacity 1000, F=2, G=5/10, rates in [1, 50]
///   class "gold"  : n_max = 8,  utility 30*log(1+r)
///   class "public": n_max = 20, utility  4*log(1+r)
struct TinyProblem {
    model::ProblemSpec spec;
    model::FlowId flow;
    model::NodeId cnode;
    model::ClassId gold;
    model::ClassId pub;
};

inline TinyProblem make_tiny_problem() {
    model::ProblemBuilder b;
    const model::NodeId source = b.addNode("P", 1e9);
    const model::NodeId cnode = b.addNode("S", 1000.0);
    const model::FlowId flow = b.addFlow("trades", source, 1.0, 50.0);
    b.routeThroughNode(flow, cnode, 2.0);
    const model::ClassId gold =
        b.addClass("gold", flow, cnode, 8, 5.0, std::make_shared<utility::LogUtility>(30.0));
    const model::ClassId pub =
        b.addClass("public", flow, cnode, 20, 10.0, std::make_shared<utility::LogUtility>(4.0));
    TinyProblem t{b.build(), flow, cnode, gold, pub};
    return t;
}

/// Two flows sharing one congested link, each with a consumer class at
/// its own node; exercises link pricing.
struct LinkedProblem {
    model::ProblemSpec spec;
    model::FlowId flow_a;
    model::FlowId flow_b;
    model::LinkId shared_link;
    model::NodeId node_a;
    model::NodeId node_b;
    model::ClassId class_a;
    model::ClassId class_b;
};

inline LinkedProblem make_linked_problem() {
    model::ProblemBuilder b;
    const model::NodeId source = b.addNode("P", 1e9);
    const model::NodeId hub = b.addNode("H", 1e9);
    const model::NodeId node_a = b.addNode("A", 1e6);
    const model::NodeId node_b = b.addNode("B", 1e6);
    // Shared bottleneck: capacity 100 resource units, cost 1 per msg each flow.
    const model::LinkId shared = b.addLink("P->H", source, hub, 100.0);
    const model::FlowId fa = b.addFlow("fa", source, 1.0, 200.0);
    const model::FlowId fb = b.addFlow("fb", source, 1.0, 200.0);
    b.routeOverLink(fa, shared, 1.0);
    b.routeOverLink(fb, shared, 1.0);
    b.routeThroughNode(fa, node_a, 1.0);
    b.routeThroughNode(fb, node_b, 1.0);
    const model::ClassId ca =
        b.addClass("ca", fa, node_a, 10, 2.0, std::make_shared<utility::LogUtility>(10.0));
    const model::ClassId cb =
        b.addClass("cb", fb, node_b, 10, 2.0, std::make_shared<utility::LogUtility>(30.0));
    return LinkedProblem{b.build(), fa, fb, shared, node_a, node_b, ca, cb};
}

}  // namespace lrgp::test
