// Delivery-reliability accounting on the broker substrate: admitted
// consumers track sequence gaps, which surface upstream overload drops
// (the paper's gold consumers "expect reliable delivery").
#include <gtest/gtest.h>

#include <memory>

#include "broker/overlay.hpp"
#include "lrgp/optimizer.hpp"
#include "test_helpers.hpp"

namespace {

using namespace lrgp;
using lrgp::test::make_tiny_problem;

TEST(Reliability, NoGapsWhenWithinCapacity) {
    const auto t = make_tiny_problem();
    broker::BrokerOverlay overlay(t.spec);
    const auto cid = overlay.addConsumer(t.gold);
    auto alloc = model::Allocation::minimal(t.spec);
    alloc.rates[t.flow.index()] = 20.0;
    alloc.populations[t.gold.index()] = 1;
    overlay.enact(alloc);
    overlay.runEpoch(10.0);
    EXPECT_EQ(overlay.consumer(cid).gaps, 0u);
    EXPECT_EQ(overlay.consumer(cid).delivered, 200u);
}

TEST(Reliability, OverloadCreatesGapsForAdmittedConsumers) {
    const auto t = make_tiny_problem();
    broker::BrokerOverlay overlay(t.spec);
    std::vector<broker::ConsumerId> ids;
    for (int k = 0; k < 20; ++k) ids.push_back(overlay.addConsumer(t.pub));
    // Infeasible enactment: node capacity cannot carry all deliveries.
    auto alloc = model::Allocation::minimal(t.spec);
    alloc.rates[t.flow.index()] = 50.0;
    alloc.populations[t.pub.index()] = 20;
    overlay.enact(alloc);
    const auto report = overlay.runEpoch(5.0);
    ASSERT_GT(report.node_stats[t.cnode.index()].dropped, 0u);
    // Every admitted consumer saw the same gaps (drops are per message,
    // upstream of the fan-out).
    EXPECT_GT(overlay.consumer(ids[0]).gaps, 0u);
    EXPECT_EQ(overlay.consumer(ids[0]).gaps, overlay.consumer(ids[1]).gaps);
}

TEST(Reliability, GapsPlusSeenAccountForAllPublished) {
    const auto t = make_tiny_problem();
    broker::BrokerOverlay overlay(t.spec);
    const auto cid = overlay.addConsumer(t.pub);
    auto alloc = model::Allocation::minimal(t.spec);
    alloc.rates[t.flow.index()] = 50.0;
    alloc.populations[t.pub.index()] = 20;  // overload via enacted population...
    overlay.enact(alloc);
    // ...but only one consumer is actually connected; its observed
    // messages + gaps must cover every published sequence up to the last
    // one it saw.
    overlay.runEpoch(5.0);
    const auto& consumer = overlay.consumer(cid);
    ASSERT_TRUE(consumer.seen_any);
    EXPECT_EQ(consumer.delivered + consumer.filtered_out + consumer.gaps,
              consumer.last_sequence + 1);
}

TEST(Reliability, LrgpEnactmentKeepsGoldGapFree) {
    // The end-to-end promise: enact what LRGP computed (feasible by
    // construction) and admitted consumers see zero gaps.
    const auto t = make_tiny_problem();
    core::LrgpOptimizer opt(t.spec);
    opt.run(120);
    broker::BrokerOverlay overlay(t.spec);
    for (int k = 0; k < 8; ++k) overlay.addConsumer(t.gold);
    for (int k = 0; k < 20; ++k) overlay.addConsumer(t.pub);
    overlay.enact(opt.allocation());
    overlay.runEpoch(30.0);
    for (const auto& consumer : overlay.consumers()) {
        if (consumer.admitted) {
            EXPECT_EQ(consumer.gaps, 0u);
        }
    }
}

TEST(Reliability, MultiEpochSequenceRestartIsNotAGap) {
    const auto t = make_tiny_problem();
    broker::BrokerOverlay overlay(t.spec);
    const auto cid = overlay.addConsumer(t.gold);
    auto alloc = model::Allocation::minimal(t.spec);
    alloc.rates[t.flow.index()] = 10.0;
    alloc.populations[t.gold.index()] = 1;
    overlay.enact(alloc);
    overlay.runEpoch(10.0);  // sequences 0..99
    overlay.runEpoch(10.0);  // sequences restart at 0
    EXPECT_EQ(overlay.consumer(cid).gaps, 0u);
    EXPECT_EQ(overlay.consumer(cid).delivered, 200u);
}

}  // namespace
