// Golden fixtures for the two pinned scenario cells: problem JSON,
// scenario manifest, and the lrgp_scenario_* Prometheus exposition
// produced by export_observability after a deterministic replay.  Each
// artifact is compared byte-exact against tests/golden/<name>.golden.
//
// To regenerate after an intentional change:
//   ./lrgp_scenario_golden_tests --update-golden   (or LRGP_UPDATE_GOLDEN=1)
// then review the fixture diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "io/problem_json.hpp"
#include "obs/metrics.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace lrgp;

bool g_update_golden = false;

std::string golden_path(const std::string& name) {
    return std::string(LRGP_GOLDEN_DIR) + "/" + name + ".golden";
}

void check_golden(const std::string& name, const std::string& actual) {
    const std::string path = golden_path(name);
    if (g_update_golden) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " — run with --update-golden to create it";
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string expected = buf.str();
    if (expected != actual) {
        std::istringstream a(expected), b(actual);
        std::string la, lb;
        int line = 1;
        while (std::getline(a, la) && std::getline(b, lb) && la == lb) ++line;
        FAIL() << name << " differs from " << path << " at line " << line << "\n  golden: " << la
               << "\n  actual: " << lb
               << "\nIf the change is intentional, rerun with --update-golden.";
    }
}

// The pinned cells: the static differential cell and the dynamic churn
// cell — the same pair BENCH_scenarios' determinism check reruns.
constexpr const char* kStaticCell = "fat_tree_heavy_tail_shifted_log";
constexpr const char* kChurnCell = "small_world_churn_sigmoid";

TEST(ScenarioGolden, StaticCellProblemJson) {
    const auto spec = scenario::build_scenario(scenario::find_scenario(kStaticCell));
    check_golden("scenario_fat_tree_problem_json", io::problem_to_json_string(spec.problem));
}

TEST(ScenarioGolden, StaticCellManifest) {
    const auto spec = scenario::build_scenario(scenario::find_scenario(kStaticCell));
    check_golden("scenario_fat_tree_manifest", spec.manifestString());
}

TEST(ScenarioGolden, ChurnCellProblemJson) {
    const auto spec = scenario::build_scenario(scenario::find_scenario(kChurnCell));
    check_golden("scenario_small_world_problem_json", io::problem_to_json_string(spec.problem));
}

TEST(ScenarioGolden, ChurnCellManifest) {
    const auto spec = scenario::build_scenario(scenario::find_scenario(kChurnCell));
    check_golden("scenario_small_world_manifest", spec.manifestString());
}

TEST(ScenarioGolden, StaticCellPrometheusText) {
    // Replay the static cell and export the instrument bundle.  Every
    // exported value derives from the bitwise-deterministic replay, so
    // the exposition text is byte-stable across runs and machines.
    const auto spec = scenario::build_scenario(scenario::find_scenario(kStaticCell));
    const auto report = scenario::run_scenario(spec, {});
    obs::Registry reg;
    scenario::export_observability(spec, report, reg);
    check_golden("scenario_fat_tree_prometheus", reg.prometheusText());
}

TEST(ScenarioGolden, ChurnCellPrometheusText) {
    const auto spec = scenario::build_scenario(scenario::find_scenario(kChurnCell));
    const auto report = scenario::run_scenario(spec, {});
    obs::Registry reg;
    scenario::export_observability(spec, report, reg);
    check_golden("scenario_small_world_prometheus", reg.prometheusText());
}

}  // namespace

int main(int argc, char** argv) {
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--update-golden") g_update_golden = true;
    if (const char* env = std::getenv("LRGP_UPDATE_GOLDEN"); env != nullptr && *env != '\0')
        g_update_golden = true;
    return RUN_ALL_TESTS();
}
