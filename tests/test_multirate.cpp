#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "lrgp/optimizer.hpp"
#include "multirate/multirate.hpp"
#include "test_helpers.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using multirate::MultirateOptimizer;

TEST(Multirate, EvaluatorsMatchHandComputation) {
    const auto t = lrgp::test::make_tiny_problem();
    multirate::MultirateAllocation alloc;
    alloc.class_rates = {20.0, 5.0};  // gold at 20, public thinned to 5
    alloc.populations = {4, 10};
    alloc.flow_rates = {20.0};
    // utility: 4*30*log(21) + 10*4*log(6)
    EXPECT_NEAR(multirate::total_utility(t.spec, alloc),
                120.0 * std::log(21.0) + 40.0 * std::log(6.0), 1e-9);
    // node: F*r_flow + G_g*n_g*r_g + G_p*n_p*r_p = 2*20 + 5*4*20 + 10*10*5
    EXPECT_DOUBLE_EQ(multirate::node_usage(t.spec, alloc, t.cnode), 40.0 + 400.0 + 500.0);
    EXPECT_TRUE(multirate::is_feasible(t.spec, alloc));
}

TEST(Multirate, InfeasibilityDetected) {
    const auto t = lrgp::test::make_tiny_problem();
    multirate::MultirateAllocation alloc;
    alloc.class_rates = {20.0, 5.0};
    alloc.populations = {4, 10};
    alloc.flow_rates = {10.0};  // class rate 20 exceeds the source stream
    EXPECT_FALSE(multirate::is_feasible(t.spec, alloc));

    alloc.flow_rates = {20.0};
    alloc.populations = {9, 0};  // above gold's n_max of 8
    EXPECT_FALSE(multirate::is_feasible(t.spec, alloc));
}

TEST(Multirate, StaysFeasibleEveryIteration) {
    MultirateOptimizer opt(workload::make_base_workload());
    for (int i = 0; i < 150; ++i) {
        opt.step();
        ASSERT_TRUE(multirate::is_feasible(opt.problem(), opt.allocation()))
            << "iteration " << i;
    }
}

TEST(Multirate, ConvergesOnBaseWorkload) {
    MultirateOptimizer opt(workload::make_base_workload());
    opt.run(300);
    EXPECT_LT(opt.utilityTrace().trailingRelativeAmplitude(50), 0.02);
    EXPECT_GT(opt.currentUtility(), 0.0);
}

TEST(Multirate, DominatesSingleRateLrgp) {
    // Extra degrees of freedom: each class runs at its own point on its
    // utility curve, so the multirate optimum can only be better.  On the
    // base workload (classes of one flow differ strongly in rank) the
    // gain should be clearly visible.
    const auto spec = workload::make_base_workload();
    core::LrgpOptimizer single(spec);
    single.run(250);
    MultirateOptimizer multi(spec);
    multi.run(250);
    EXPECT_GT(multi.currentUtility(), single.currentUtility());
}

TEST(Multirate, ClassRatesDivergeByRank) {
    // Flow 0 hosts rank-20 and rank-1 classes at S0: the valuable class
    // should receive a faster stream than the cheap one.
    const auto spec = workload::make_base_workload();
    MultirateOptimizer opt(spec);
    opt.run(250);
    const auto& alloc = opt.allocation();
    // Classes 0 (rank 20) and 4 (rank 1) both consume flow 0 at S0.
    if (alloc.populations[0] > 0 && alloc.populations[4] > 0) {
        EXPECT_GE(alloc.class_rates[0], alloc.class_rates[4]);
    }
    // And the source streams at the maximum admitted class rate.
    double max_rate = 0.0;
    for (model::ClassId j : spec.classesOfFlow(model::FlowId{0}))
        if (alloc.populations[j.index()] > 0)
            max_rate = std::max(max_rate, alloc.class_rates[j.index()]);
    if (max_rate > 0.0) {
        EXPECT_NEAR(alloc.flow_rates[0], max_rate, 1e-9);
    }
}

TEST(Multirate, BigGainWhenClassesWantDifferentRates) {
    // The canonical multirate win: a handful of premium consumers want
    // the full-rate stream, while a large cheap population is only
    // affordable when thinned.  A single rate must either starve the
    // premium class or lock out the masses; multirate serves both.
    model::ProblemBuilder b;
    const auto src = b.addNode("P", 1e9);
    const auto node = b.addNode("S", 1e5);
    const auto flow = b.addFlow("feed", src, 10.0, 1000.0);
    b.routeThroughNode(flow, node, 1.0);
    b.addClass("premium", flow, node, 5, 10.0, std::make_shared<utility::LogUtility>(100.0));
    b.addClass("masses", flow, node, 2000, 19.0, std::make_shared<utility::LogUtility>(1.0));
    const auto spec = b.build();

    core::LrgpOptimizer single(spec);
    single.run(400);
    MultirateOptimizer multi(spec);
    multi.run(400);
    EXPECT_GT(multi.currentUtility(), 1.05 * single.currentUtility());
    // The premium class streams faster than the thinned masses.
    const auto& alloc = multi.allocation();
    if (alloc.populations[0] > 0 && alloc.populations[1] > 0) {
        EXPECT_GT(alloc.class_rates[0], alloc.class_rates[1]);
    }
}

TEST(Multirate, Validation) {
    MultirateOptimizer opt(workload::make_base_workload());
    EXPECT_THROW(opt.run(0), std::invalid_argument);
    EXPECT_THROW((void)opt.runUntilConverged(0), std::invalid_argument);
}

}  // namespace
