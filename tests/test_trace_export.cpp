#include <gtest/gtest.h>

#include <sstream>

#include "lrgp/trace_export.hpp"
#include "test_helpers.hpp"

namespace {

using namespace lrgp;

TEST(TraceExport, HeaderNamesEntities) {
    const auto t = lrgp::test::make_tiny_problem();
    core::LrgpOptimizer opt(t.spec);
    std::ostringstream os;
    core::run_and_export(os, opt, 3);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("iteration,utility"), std::string::npos);
    EXPECT_NE(csv.find("rate:trades"), std::string::npos);
    EXPECT_NE(csv.find("n:gold"), std::string::npos);
    EXPECT_NE(csv.find("n:public"), std::string::npos);
    EXPECT_NE(csv.find("price:S"), std::string::npos);
}

TEST(TraceExport, OneRowPerIteration) {
    const auto t = lrgp::test::make_tiny_problem();
    core::LrgpOptimizer opt(t.spec);
    std::ostringstream os;
    const auto records = core::run_and_export(os, opt, 7);
    EXPECT_EQ(records.size(), 7u);
    // header + 7 rows
    std::size_t lines = 0;
    for (char ch : os.str())
        if (ch == '\n') ++lines;
    EXPECT_EQ(lines, 8u);
}

TEST(TraceExport, ValuesMatchRecords) {
    const auto t = lrgp::test::make_tiny_problem();
    core::LrgpOptimizer opt(t.spec);
    std::vector<core::IterationRecord> records;
    for (int i = 0; i < 4; ++i) records.push_back(opt.step());
    std::ostringstream os;
    core::export_trace_csv(os, opt.problem(), records);
    std::istringstream in(os.str());
    std::string line;
    std::getline(in, line);  // header
    std::getline(in, line);  // first record
    std::istringstream row(line);
    std::string cell;
    std::getline(row, cell, ',');
    EXPECT_EQ(cell, "1");
    std::getline(row, cell, ',');
    EXPECT_NEAR(std::stod(cell), records[0].utility, 1e-6 * (1.0 + records[0].utility));
}

TEST(TraceExport, EmptyRecordListGivesHeaderOnly) {
    const auto t = lrgp::test::make_tiny_problem();
    std::ostringstream os;
    core::export_trace_csv(os, t.spec, {});
    std::size_t lines = 0;
    for (char ch : os.str())
        if (ch == '\n') ++lines;
    EXPECT_EQ(lines, 1u);
}

}  // namespace
