#include <gtest/gtest.h>

#include <algorithm>

#include "lrgp/optimizer.hpp"
#include "test_helpers.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using core::AdaptiveGamma;
using core::FixedGamma;
using core::LrgpOptimizer;
using core::LrgpOptions;
using lrgp::test::make_linked_problem;
using lrgp::test::make_tiny_problem;

TEST(Optimizer, ConvergesOnBaseWorkload) {
    LrgpOptimizer opt(workload::make_base_workload());
    const auto converged = opt.runUntilConverged(250);
    ASSERT_TRUE(converged.has_value());
    // Paper: 21 iterations; our detector window differs slightly, so
    // accept the same order of magnitude.
    EXPECT_LE(*converged, 60);
    // Paper's LRGP utility for this workload: 1,328,821.  Require within 2%.
    EXPECT_NEAR(opt.currentUtility(), 1328821.0, 0.02 * 1328821.0);
}

TEST(Optimizer, EveryIterationStaysFeasible) {
    LrgpOptimizer opt(workload::make_base_workload());
    for (int i = 0; i < 60; ++i) {
        opt.step();
        const auto report = model::check_feasibility(opt.problem(), opt.allocation());
        EXPECT_TRUE(report.feasible())
            << "iteration " << i << ": " << report.violations.front().detail;
    }
}

TEST(Optimizer, UtilityTraceMatchesRecords) {
    LrgpOptimizer opt(workload::make_base_workload());
    for (int i = 0; i < 10; ++i) {
        const auto& rec = opt.step();
        EXPECT_EQ(rec.iteration, i + 1);
        EXPECT_DOUBLE_EQ(rec.utility, opt.utilityTrace().back());
        EXPECT_DOUBLE_EQ(rec.utility, model::total_utility(opt.problem(), rec.allocation));
    }
    EXPECT_EQ(opt.utilityTrace().size(), 10u);
    EXPECT_EQ(opt.iterationsRun(), 10);
}

TEST(Optimizer, FixedGammaOneOscillates) {
    // Figure 1: no damping (gamma=1) leaves large oscillations; damping
    // (gamma=0.1) settles.  Compare trailing amplitude over the last 50
    // of 250 iterations.
    LrgpOptions undamped;
    undamped.gamma = FixedGamma{1.0, 1.0};
    LrgpOptimizer opt1(workload::make_base_workload(), undamped);
    opt1.run(250);

    LrgpOptions damped;
    damped.gamma = FixedGamma{0.1, 0.1};
    LrgpOptimizer opt2(workload::make_base_workload(), damped);
    opt2.run(250);

    const double amp1 = opt1.utilityTrace().trailingRelativeAmplitude(50);
    const double amp2 = opt2.utilityTrace().trailingRelativeAmplitude(50);
    EXPECT_GT(amp1, 10.0 * amp2);
    EXPECT_GT(amp1, 0.01);  // >1% swings without damping
}

TEST(Optimizer, SmallerGammaConvergesSlower) {
    // Figure 1's second observation: with gamma=0.1 the large fluctuations
    // stop within ~10 iterations, while gamma=0.01 needs nearly 100.  We
    // measure the first iteration where a 10-iteration trailing window
    // swings by less than 2%.
    auto iterations_to_settle = [](double gamma) {
        LrgpOptions options;
        options.gamma = FixedGamma{gamma, gamma};
        LrgpOptimizer opt(workload::make_base_workload(), options);
        opt.run(400);
        const auto& trace = opt.utilityTrace();
        for (std::size_t end = 10; end <= trace.size(); ++end) {
            const auto window = std::vector<double>(trace.samples().begin() + end - 10,
                                                    trace.samples().begin() + end);
            const auto [lo, hi] = std::minmax_element(window.begin(), window.end());
            double mean = 0.0;
            for (double v : window) mean += v;
            mean /= 10.0;
            if ((*hi - *lo) / mean < 0.02) return end;
        }
        return trace.size() + 1;
    };
    EXPECT_LT(iterations_to_settle(0.1), iterations_to_settle(0.01));
}

TEST(Optimizer, AdaptiveGammaConvergesAtLeastAsFastAsSmallFixed) {
    LrgpOptions adaptive;
    adaptive.gamma = AdaptiveGamma{};
    LrgpOptimizer a(workload::make_base_workload(), adaptive);
    const auto a_conv = a.runUntilConverged(400);

    LrgpOptions fixed_small;
    fixed_small.gamma = FixedGamma{0.01, 0.01};
    LrgpOptimizer f(workload::make_base_workload(), fixed_small);
    const auto f_conv = f.runUntilConverged(400);

    ASSERT_TRUE(a_conv.has_value());
    EXPECT_LE(*a_conv, f_conv.value_or(401));
}

TEST(Optimizer, TinyProblemAdmitsGoldFirst) {
    const auto t = make_tiny_problem();
    LrgpOptimizer opt(t.spec);
    opt.run(100);
    const auto& alloc = opt.allocation();
    // Gold consumers (high benefit-cost) are admitted first; at the
    // converged rate the node fits at least 7 of the 8.  The greedy order
    // also means the cheap-but-low-rank public class only gets capacity
    // gold could not use.
    EXPECT_GE(alloc.populations[t.gold.index()], 7);
    EXPECT_GE(alloc.populations[t.gold.index()], alloc.populations[t.pub.index()]);
    EXPECT_GT(opt.currentUtility(), 0.0);
}

TEST(Optimizer, LinkPricingConstrainsSharedBottleneck) {
    const auto p = make_linked_problem();
    LrgpOptions options;
    options.link_gamma = 1e-3;
    LrgpOptimizer opt(p.spec, options);
    opt.run(500);
    // Combined link usage must approach (and respect) the capacity 100.
    const double usage = model::link_usage(p.spec, opt.allocation(), p.shared_link);
    EXPECT_LE(usage, 100.0 * 1.02);
    EXPECT_GT(usage, 50.0);  // the link should actually be utilized
    // The higher-weight class's flow should get the larger share.
    EXPECT_GT(opt.allocation().rates[p.flow_b.index()],
              opt.allocation().rates[p.flow_a.index()]);
}

TEST(Optimizer, RemoveFlowDropsUtilityThenRecovers) {
    // Figure 3: removing flow 5 (the highest-rank classes) dents utility;
    // the optimizer re-allocates and stabilizes at a lower level.
    LrgpOptimizer opt(workload::make_base_workload());
    opt.run(100);
    const double before = opt.currentUtility();

    opt.removeFlow(workload::find_flow(opt.problem(), "f0_5"));
    opt.run(100);
    const double after = opt.currentUtility();
    EXPECT_LT(after, before);
    // Flow 5 serves the rank-100 classes, so the drop is large, but the
    // freed capacity re-admits consumers of the remaining flows.
    EXPECT_GT(after, 0.3 * before);
    // Allocation remains feasible and the removed flow stays zeroed.
    EXPECT_TRUE(model::check_feasibility(opt.problem(), opt.allocation()).feasible());
    const auto f5 = workload::find_flow(opt.problem(), "f0_5");
    EXPECT_DOUBLE_EQ(opt.allocation().rates[f5.index()], 0.0);
}

TEST(Optimizer, RestoreFlowRecoversUtility) {
    LrgpOptimizer opt(workload::make_base_workload());
    opt.run(100);
    const double before = opt.currentUtility();
    const auto f5 = workload::find_flow(opt.problem(), "f0_5");
    opt.removeFlow(f5);
    opt.run(50);
    opt.restoreFlow(f5);
    opt.run(100);
    EXPECT_NEAR(opt.currentUtility(), before, 0.02 * before);
}

TEST(Optimizer, RemoveFlowTwiceThrows) {
    LrgpOptimizer opt(workload::make_base_workload());
    const auto f0 = workload::find_flow(opt.problem(), "f0_0");
    opt.removeFlow(f0);
    EXPECT_THROW(opt.removeFlow(f0), std::logic_error);
    EXPECT_NO_THROW(opt.restoreFlow(f0));
    EXPECT_THROW(opt.restoreFlow(f0), std::logic_error);
}

TEST(Optimizer, CapacityIncreaseRaisesUtility) {
    LrgpOptimizer base_opt(workload::make_base_workload());
    base_opt.run(150);

    LrgpOptimizer big_opt(workload::make_base_workload());
    for (const auto& node : big_opt.problem().nodes())
        big_opt.setNodeCapacity(node.id, node.capacity * 2.0);
    big_opt.run(150);
    // Log utilities flatten the marginal value of capacity, so doubling
    // c_b yields well under 2x utility — but clearly more than 1x.
    EXPECT_GT(big_opt.currentUtility(), base_opt.currentUtility() * 1.15);
}

TEST(Optimizer, RunValidation) {
    LrgpOptimizer opt(workload::make_base_workload());
    EXPECT_THROW(opt.run(0), std::invalid_argument);
    EXPECT_THROW(opt.runUntilConverged(0), std::invalid_argument);
}

// Parameterized: every utility shape converges and yields a positive,
// feasible allocation (Table 3's workloads).
class ShapeSweep : public ::testing::TestWithParam<workload::UtilityShape> {};

TEST_P(ShapeSweep, ConvergesAndFeasible) {
    LrgpOptimizer opt(workload::make_base_workload(GetParam()));
    const auto converged = opt.runUntilConverged(400);
    EXPECT_TRUE(converged.has_value());
    EXPECT_GT(opt.currentUtility(), 0.0);
    EXPECT_TRUE(model::check_feasibility(opt.problem(), opt.allocation()).feasible());
}

INSTANTIATE_TEST_SUITE_P(AllShapes, ShapeSweep,
                         ::testing::Values(workload::UtilityShape::kLog,
                                           workload::UtilityShape::kPow025,
                                           workload::UtilityShape::kPow05,
                                           workload::UtilityShape::kPow075));

// Parameterized: utility scales linearly with c-node replication
// (Table 2's key observation).
class ScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScaleSweep, UtilityScalesLinearlyWithCNodes) {
    const int replicas = GetParam();
    LrgpOptimizer base_opt(workload::make_base_workload());
    base_opt.run(120);

    workload::WorkloadOptions options;
    options.cnode_replicas = replicas;
    LrgpOptimizer scaled_opt(workload::make_scaled_workload(options), LrgpOptions{});
    scaled_opt.run(120);

    EXPECT_NEAR(scaled_opt.currentUtility(), replicas * base_opt.currentUtility(),
                0.02 * replicas * base_opt.currentUtility());
}

INSTANTIATE_TEST_SUITE_P(Replicas, ScaleSweep, ::testing::Values(2, 4));

}  // namespace
