// Oracle property test: the rate-objective solver (closed form or
// bisection on the derivative) must agree with an independent
// derivative-free maximizer (golden-section search) across randomly
// generated instances of the per-flow subproblem.
#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "solver/root_finding.hpp"
#include "utility/rate_objective.hpp"

namespace {

using namespace lrgp;
using utility::WeightedUtility;

std::vector<WeightedUtility> randomTerms(std::mt19937& rng) {
    std::uniform_int_distribution<int> count(1, 5);
    std::uniform_int_distribution<int> family(0, 2);
    std::uniform_real_distribution<double> weight(0.5, 200.0);
    std::uniform_real_distribution<double> exponent(0.1, 0.9);
    std::uniform_real_distribution<double> scale(1.0, 300.0);
    std::uniform_int_distribution<int> population(0, 2000);

    std::vector<WeightedUtility> terms;
    const int n = count(rng);
    for (int k = 0; k < n; ++k) {
        std::shared_ptr<const utility::UtilityFunction> u;
        switch (family(rng)) {
            case 0: u = std::make_shared<utility::LogUtility>(weight(rng)); break;
            case 1: u = std::make_shared<utility::PowerUtility>(weight(rng), exponent(rng)); break;
            default:
                u = std::make_shared<utility::ShiftedLogUtility>(weight(rng), scale(rng));
        }
        terms.push_back({static_cast<double>(population(rng)), std::move(u)});
    }
    return terms;
}

class RateOracleSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RateOracleSweep, SolverMatchesGoldenSectionOracle) {
    std::mt19937 rng(GetParam());
    std::uniform_real_distribution<double> price_dist(0.0, 500.0);
    constexpr double kLo = 10.0, kHi = 1000.0;

    for (int instance = 0; instance < 40; ++instance) {
        const auto terms = randomTerms(rng);
        const double price = price_dist(rng);

        const auto solved = utility::solve_rate_objective(terms, price, kLo, kHi);
        const auto oracle = solver::golden_section_maximize(
            [&](double r) { return utility::rate_objective_value(terms, price, r); }, kLo, kHi,
            solver::RootOptions{1e-7, 400});

        const double solved_value = utility::rate_objective_value(terms, price, solved.rate);
        const double oracle_value = utility::rate_objective_value(terms, price, oracle.root);
        // The solver must be at least as good as the oracle (up to the
        // oracle's own tolerance).
        EXPECT_GE(solved_value, oracle_value - 1e-6 * (1.0 + std::abs(oracle_value)))
            << "seed " << GetParam() << " instance " << instance << " price " << price;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RateOracleSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
