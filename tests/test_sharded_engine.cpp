// Sharded control-plane suite (ctest label `shard`).
//
// Covers the three contracts of shard::ShardedLrgpEngine:
//   1. K=1 is bitwise-identical to the monolithic incremental engine —
//      records, prices, convergence return, and dynamic ops in lockstep;
//   2. K>1 keeps every allocation invariant (boxes, integer populations,
//      node capacity globally — per-shard budgets sum to the capacity)
//      and lands within 1% utility of the monolithic solver after
//      boundary-price reconciliation, deterministically for a given
//      (seed, K);
//   3. the partitioner and budget-splitting primitives behave: disjoint
//      regions never straddle shards, balance caps hold, floors are
//      respected and budgets always re-sum to the capacity.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <stdexcept>
#include <vector>

#include "lrgp/parallel_engine.hpp"
#include "model/analysis.hpp"
#include "shard/budget.hpp"
#include "shard/partitioner.hpp"
#include "shard/sharded_engine.hpp"
#include "workload/federated.hpp"

namespace lrgp {
namespace {

workload::FederatedWorkloadOptions small_options(std::uint32_t seed = 1) {
    workload::FederatedWorkloadOptions opt;
    opt.groups = 8;
    opt.flows_per_group = 4;
    opt.cnodes_per_group = 10;
    opt.tight_groups = 2;
    opt.seed = seed;
    return opt;
}

workload::FederatedWorkloadOptions coupled_options(std::uint32_t seed = 1) {
    workload::FederatedWorkloadOptions opt = small_options(seed);
    opt.coupling_cost = 2.0;
    opt.coupling_capacity_factor = 0.5;
    return opt;
}

shard::ShardedConfig config_for(int shards) {
    shard::ShardedConfig config;
    config.shards = shards;
    config.threads = 2;  // determinism must not depend on worker count
    return config;
}

/// Box, integrality and capacity invariants on a (spec, allocation)
/// pair.  `capacity_tol` is relative: boundary budgets re-sum to the
/// capacity only up to FP, so the global check gets a small slack.
void check_box_and_capacity(const model::ProblemSpec& spec, const model::Allocation& alloc,
                            double capacity_tol) {
    for (const model::FlowSpec& f : spec.flows()) {
        const double r = alloc.rates.at(f.id.index());
        if (!f.active) {
            EXPECT_EQ(r, 0.0) << "inactive flow " << f.name;
            continue;
        }
        EXPECT_GE(r, f.rate_min) << "flow " << f.name;
        EXPECT_LE(r, f.rate_max) << "flow " << f.name;
    }
    for (const model::ClassSpec& c : spec.classes()) {
        const int n = alloc.populations.at(c.id.index());
        EXPECT_GE(n, 0) << "class " << c.name;
        EXPECT_LE(n, c.max_consumers) << "class " << c.name;
    }
    for (const model::NodeSpec& b : spec.nodes()) {
        const double usage = model::node_usage(spec, alloc, b.id);
        EXPECT_LE(usage, b.capacity * (1.0 + capacity_tol) + 1e-9) << "node " << b.name;
    }
    for (const model::LinkSpec& l : spec.links()) {
        const double usage = model::link_usage(spec, alloc, l.id);
        EXPECT_LE(usage, l.capacity * (1.0 + capacity_tol) + 1e-9) << "link " << l.name;
    }
}

void expect_same_record(const core::IterationRecord& a, const core::IterationRecord& b) {
    EXPECT_EQ(a.iteration, b.iteration);
    EXPECT_EQ(a.utility, b.utility);
    ASSERT_EQ(a.allocation.rates.size(), b.allocation.rates.size());
    for (std::size_t i = 0; i < a.allocation.rates.size(); ++i)
        EXPECT_EQ(a.allocation.rates[i], b.allocation.rates[i]) << "rate " << i;
    ASSERT_EQ(a.allocation.populations.size(), b.allocation.populations.size());
    for (std::size_t i = 0; i < a.allocation.populations.size(); ++i)
        EXPECT_EQ(a.allocation.populations[i], b.allocation.populations[i]) << "pop " << i;
    ASSERT_EQ(a.prices.node.size(), b.prices.node.size());
    for (std::size_t i = 0; i < a.prices.node.size(); ++i)
        EXPECT_EQ(a.prices.node[i], b.prices.node[i]) << "node price " << i;
    ASSERT_EQ(a.prices.link.size(), b.prices.link.size());
    for (std::size_t i = 0; i < a.prices.link.size(); ++i)
        EXPECT_EQ(a.prices.link[i], b.prices.link[i]) << "link price " << i;
}

// ---------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------

TEST(ShardPartitioner, SingleShardHoldsEverythingWithNoBoundary) {
    const model::ProblemSpec spec = workload::make_federated_workload(small_options());
    const shard::Partition part = shard::make_partition(spec, {.shards = 1});
    EXPECT_EQ(part.shards, 1);
    EXPECT_EQ(part.flows_of_shard[0].size(), spec.flowCount());
    EXPECT_EQ(part.boundary_nodes, 0u);
    EXPECT_EQ(part.boundary_links, 0u);
    for (int s : part.shard_of_flow) EXPECT_EQ(s, 0);
}

TEST(ShardPartitioner, DisjointGroupsNeverStraddleShards) {
    const auto opt = small_options();
    const model::ProblemSpec spec = workload::make_federated_workload(opt);
    for (int k : {2, 4, 8}) {
        const shard::Partition part = shard::make_partition(spec, {.shards = k});
        SCOPED_TRACE("K=" + std::to_string(k));
        EXPECT_EQ(part.boundary_nodes, 0u);
        EXPECT_EQ(part.boundary_links, 0u);
        // Flows of one group share all its c-nodes, so they must share a
        // shard once the boundary is empty.
        for (int g = 0; g < opt.groups; ++g) {
            const int first = part.shard_of_flow[static_cast<std::size_t>(
                g * opt.flows_per_group)];
            for (int f = 1; f < opt.flows_per_group; ++f)
                EXPECT_EQ(part.shard_of_flow[static_cast<std::size_t>(
                              g * opt.flows_per_group + f)],
                          first)
                    << "group " << g << " flow " << f;
        }
    }
}

TEST(ShardPartitioner, BalanceCapHolds) {
    const model::ProblemSpec spec = workload::make_federated_workload(small_options());
    for (int k : {2, 4, 8}) {
        const shard::PartitionOptions opt{.shards = k, .refine_passes = 3,
                                          .balance_slack = 0.25};
        const shard::Partition part = shard::make_partition(spec, opt);
        const double cap =
            std::ceil(static_cast<double>(spec.classCount()) / k * (1.0 + opt.balance_slack));
        for (int s = 0; s < k; ++s)
            EXPECT_LE(static_cast<double>(part.classes_of_shard[s]), cap)
                << "K=" << k << " shard " << s;
    }
}

TEST(ShardPartitioner, CoupledComponentSplitsAcrossAllShards) {
    // The hub joins every group into one component, which exceeds the
    // balance cap and must be split with the hub as the only boundary
    // node shared by all shards that carry a hub flow.
    const model::ProblemSpec spec = workload::make_federated_workload(coupled_options());
    const shard::Partition part = shard::make_partition(spec, {.shards = 4});
    for (int s = 0; s < 4; ++s)
        EXPECT_FALSE(part.flows_of_shard[s].empty()) << "shard " << s;
    EXPECT_GE(part.boundary_nodes, 1u);
    EXPECT_TRUE(part.isBoundaryNode(model::NodeId{0}));  // hub is node 0
}

TEST(ShardPartitioner, DeterministicForGivenInputs) {
    const model::ProblemSpec spec = workload::make_federated_workload(coupled_options());
    const shard::Partition a = shard::make_partition(spec, {.shards = 4});
    const shard::Partition b = shard::make_partition(spec, {.shards = 4});
    EXPECT_EQ(a.shard_of_flow, b.shard_of_flow);
    EXPECT_EQ(a.boundary_nodes, b.boundary_nodes);
}

TEST(ShardPartitioner, RejectsBadOptions) {
    const model::ProblemSpec spec = workload::make_federated_workload(small_options());
    EXPECT_THROW(shard::make_partition(spec, {.shards = 0}), std::invalid_argument);
    EXPECT_THROW(shard::make_partition(spec, {.shards = 2, .balance_slack = -0.1}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Budget primitives
// ---------------------------------------------------------------------

TEST(ShardBudget, SplitWithFloorsSumsToCapacityAndRespectsFloors) {
    const std::vector<double> floors = {10.0, 20.0, 5.0};
    const std::vector<double> weights = {1.0, 3.0, 0.0};
    const std::vector<double> out = shard::split_with_floors(100.0, floors, weights);
    double sum = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_GE(out[i], floors[i]);
        sum += out[i];
    }
    EXPECT_NEAR(sum, 100.0, 1e-9);
    EXPECT_GT(out[1], out[0]);  // weight-proportional surplus
}

TEST(ShardBudget, SplitWithFloorsScalesWhenOversubscribed) {
    const std::vector<double> out =
        shard::split_with_floors(30.0, {40.0, 20.0}, {1.0, 1.0});
    EXPECT_NEAR(out[0] + out[1], 30.0, 1e-9);
    EXPECT_NEAR(out[0] / out[1], 2.0, 1e-9);  // floors scaled proportionally
}

TEST(ShardBudget, SplitWithFloorsValidates) {
    EXPECT_THROW(shard::split_with_floors(10.0, {1.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(shard::split_with_floors(0.0, {1.0}, {1.0}), std::invalid_argument);
    EXPECT_TRUE(shard::split_with_floors(10.0, {}, {}).empty());
}

TEST(ShardBudget, RebalanceMovesBudgetTowardHigherPrices) {
    const std::vector<double> budget = {50.0, 50.0};
    const shard::RebalanceResult result =
        shard::rebalance_budgets(100.0, budget, {1.0, 1.0}, {0.0, 10.0}, 0.5);
    EXPECT_GT(result.moved, 0.0);
    EXPECT_LT(result.budget[0], 50.0);
    EXPECT_GT(result.budget[1], 50.0);
    EXPECT_NEAR(result.budget[0] + result.budget[1], 100.0, 1e-9);
    EXPECT_GE(result.budget[0], 1.0);
}

TEST(ShardBudget, RebalanceIsAFixpointOnEqualOrZeroPrices) {
    const std::vector<double> budget = {30.0, 70.0};
    EXPECT_EQ(shard::rebalance_budgets(100.0, budget, {1.0, 1.0}, {0.0, 0.0}, 0.5).moved, 0.0);
    EXPECT_NEAR(shard::rebalance_budgets(100.0, budget, {1.0, 1.0}, {5.0, 5.0}, 0.5).moved,
                0.0, 1e-12);
    EXPECT_EQ(shard::rebalance_budgets(100.0, budget, {1.0, 1.0}, {1.0, 9.0}, 0.0).moved, 0.0);
}

TEST(ShardBudget, RebalanceValidates) {
    EXPECT_THROW(shard::rebalance_budgets(10.0, {5.0, 5.0}, {1.0}, {0.0, 0.0}, 0.5),
                 std::invalid_argument);
    EXPECT_THROW(shard::rebalance_budgets(10.0, {5.0, 5.0}, {1.0, 1.0}, {0.0, 0.0}, 1.5),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// K=1 bitwise parity with the monolithic incremental engine
// ---------------------------------------------------------------------

TEST(ShardedEngineParity, StepLockstepIsBitwiseIdentical) {
    const model::ProblemSpec spec = workload::make_federated_workload(small_options());
    core::ParallelLrgpEngine mono(spec, {}, {.threads = 1, .incremental = true});
    shard::ShardedLrgpEngine sharded(spec, {}, config_for(1));
    for (int i = 0; i < 30; ++i) {
        const core::IterationRecord& a = mono.step();
        const core::IterationRecord& b = sharded.step();
        SCOPED_TRACE("iteration " + std::to_string(i + 1));
        expect_same_record(a, b);
    }
}

TEST(ShardedEngineParity, RunUntilConvergedMatchesReturnAndState) {
    const model::ProblemSpec spec = workload::make_federated_workload(small_options(7));
    core::ParallelLrgpEngine mono(spec, {}, {.threads = 1, .incremental = true});
    shard::ShardedLrgpEngine sharded(spec, {}, config_for(1));
    const std::optional<int> a = mono.runUntilConverged(400);
    const std::optional<int> b = sharded.runUntilConverged(400);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a, b);
    EXPECT_EQ(mono.currentUtility(), sharded.currentUtility());
    EXPECT_EQ(mono.iterationsRun(), sharded.iterationsRun());
}

TEST(ShardedEngineParity, DynamicOpsStayInLockstep) {
    const auto opt = small_options(3);
    const model::ProblemSpec spec = workload::make_federated_workload(opt);
    core::ParallelLrgpEngine mono(spec, {}, {.threads = 1, .incremental = true});
    shard::ShardedLrgpEngine sharded(spec, {}, config_for(1));
    mono.run(10);
    sharded.run(10);

    const model::FlowId victim{3};
    mono.removeFlow(victim);
    sharded.removeFlow(victim);
    mono.run(5);
    sharded.run(5);
    expect_same_record(mono.run(1), sharded.run(1));

    mono.restoreFlow(victim);
    sharded.restoreFlow(victim);
    const model::NodeId node{5};
    const double squeezed = spec.node(node).capacity * 0.6;
    mono.setNodeCapacity(node, squeezed);
    sharded.setNodeCapacity(node, squeezed);
    const model::ClassId cls{11};
    mono.setClassMaxConsumers(cls, spec.consumerClass(cls).max_consumers / 2);
    sharded.setClassMaxConsumers(cls, spec.consumerClass(cls).max_consumers / 2);
    for (int i = 0; i < 12; ++i) expect_same_record(mono.step(), sharded.step());
}

// ---------------------------------------------------------------------
// Multi-shard: gap, invariants, determinism, dynamics
// ---------------------------------------------------------------------

TEST(ShardedEngine, SeededSweepGapWithinOnePercent) {
    for (std::uint32_t seed : {1u, 2u, 3u}) {
        for (bool coupled : {false, true}) {
            const model::ProblemSpec spec = workload::make_federated_workload(
                coupled ? coupled_options(seed) : small_options(seed));
            core::ParallelLrgpEngine mono(spec, {}, {.threads = 1, .incremental = true});
            mono.runUntilConverged(400);
            const double reference = mono.currentUtility();
            for (int k : {2, 4, 8}) {
                SCOPED_TRACE("seed " + std::to_string(seed) + " K=" + std::to_string(k) +
                             (coupled ? " coupled" : ""));
                shard::ShardedLrgpEngine engine(spec, {}, config_for(k));
                engine.runUntilConverged(400);
                const double gap =
                    std::fabs(reference - engine.currentUtility()) / std::fabs(reference);
                EXPECT_LE(gap, 0.01);
            }
        }
    }
}

TEST(ShardedEngine, InvariantsHoldPerShardAndGlobally) {
    for (int k : {1, 2, 4, 8}) {
        SCOPED_TRACE("K=" + std::to_string(k));
        const model::ProblemSpec spec = workload::make_federated_workload(coupled_options(5));
        shard::ShardedLrgpEngine engine(spec, {}, config_for(k));
        engine.run(25);
        const core::IterationRecord& record = engine.run(1);

        // Global: budgets re-sum to capacities only up to FP, so the
        // boundary-capacity check carries a small relative slack.
        check_box_and_capacity(spec, record.allocation, 1e-6);

        // Per shard: each member engine maintains the exact invariants
        // against its own sub-problem (budgeted capacities included).
        for (int s = 0; s < engine.shardCount(); ++s) {
            if (engine.summaries()[static_cast<std::size_t>(s)].flows == 0) continue;
            const core::Engine& member = engine.shardEngine(s);
            check_box_and_capacity(member.problem(), member.allocation(), 1e-9);
        }

        // Published utility: bitwise Eq. 1 for K=1; for K>1 the record
        // utility is the shard-sum, which reassociates the reduction.
        const double recomputed = model::total_utility(spec, record.allocation);
        if (k == 1)
            EXPECT_EQ(record.utility, recomputed);
        else
            EXPECT_NEAR(record.utility, recomputed, 1e-9 * std::fabs(recomputed));
    }
}

TEST(ShardedEngine, SameSeedAndShardCountIsByteIdentical) {
    const model::ProblemSpec spec = workload::make_federated_workload(coupled_options(9));
    for (int k : {2, 8}) {
        SCOPED_TRACE("K=" + std::to_string(k));
        shard::ShardedConfig a_cfg = config_for(k);
        shard::ShardedConfig b_cfg = config_for(k);
        b_cfg.threads = 1;  // worker count must not leak into results
        shard::ShardedLrgpEngine a(spec, {}, a_cfg);
        shard::ShardedLrgpEngine b(spec, {}, b_cfg);
        a.run(40);
        b.run(40);
        expect_same_record(a.run(1), b.run(1));
    }
}

TEST(ShardedEngine, DynamicOpLandsInOwningShardOnly) {
    const model::ProblemSpec spec = workload::make_federated_workload(small_options());
    shard::ShardedLrgpEngine engine(spec, {}, config_for(4));
    ASSERT_TRUE(engine.runUntilConverged(400).has_value());

    const model::FlowId victim{0};
    const int owner = engine.shardOfFlow(victim);
    engine.removeFlow(victim);
    EXPECT_EQ(engine.allocation().rates[victim.index()], 0.0);
    for (int s = 0; s < engine.shardCount(); ++s) {
        if (engine.summaries()[static_cast<std::size_t>(s)].flows == 0) continue;
        EXPECT_EQ(engine.shardEngine(s).convergence().converged(), s != owner)
            << "shard " << s << " owner " << owner;
    }

    // Re-convergence only advances the owning shard's member engine.
    std::vector<int> before(static_cast<std::size_t>(engine.shardCount()), 0);
    for (int s = 0; s < engine.shardCount(); ++s)
        before[static_cast<std::size_t>(s)] = engine.summaries()[static_cast<std::size_t>(s)].flows
                                                  ? engine.shardEngine(s).iterationsRun()
                                                  : 0;
    ASSERT_TRUE(engine.runUntilConverged(400).has_value());
    for (int s = 0; s < engine.shardCount(); ++s) {
        if (engine.summaries()[static_cast<std::size_t>(s)].flows == 0) continue;
        if (s == owner)
            EXPECT_GT(engine.shardEngine(s).iterationsRun(), before[static_cast<std::size_t>(s)]);
        else
            EXPECT_EQ(engine.shardEngine(s).iterationsRun(), before[static_cast<std::size_t>(s)]);
    }

    engine.restoreFlow(victim);
    ASSERT_TRUE(engine.runUntilConverged(400).has_value());
    EXPECT_GE(engine.allocation().rates[victim.index()], spec.flow(victim).rate_min);
}

TEST(ShardedEngine, BoundaryCapacityChangeResplitsAndReconverges) {
    const model::ProblemSpec spec = workload::make_federated_workload(coupled_options());
    shard::ShardedLrgpEngine engine(spec, {}, config_for(4));
    ASSERT_TRUE(engine.runUntilConverged(600).has_value());

    const model::NodeId hub{0};
    const double squeezed = spec.node(hub).capacity * 0.4;
    engine.setNodeCapacity(hub, squeezed);
    ASSERT_TRUE(engine.runUntilConverged(600).has_value());
    // The hub carries only flow costs (no classes), and the F * r
    // component is price-mediated, not hard-clipped: the monolithic
    // engine converges with the same sub-percent overshoot on this
    // squeeze, so the capacity check gets the convergence tolerance.
    check_box_and_capacity(engine.problem(), engine.allocation(), 1e-2);

    // The squeezed engine must land within 1% of an engine built fresh
    // at the squeezed capacity (same K), i.e. the re-split keeps the
    // boundary allocation near-optimal, not just feasible.
    model::ProblemSpec squeezed_spec = workload::make_federated_workload(coupled_options());
    squeezed_spec.setNodeCapacity(hub, squeezed);
    shard::ShardedLrgpEngine fresh(squeezed_spec, {}, config_for(4));
    fresh.runUntilConverged(600);
    const double gap = std::fabs(fresh.currentUtility() - engine.currentUtility()) /
                       std::fabs(fresh.currentUtility());
    EXPECT_LE(gap, 0.01);
}

TEST(ShardedEngine, MoreShardsThanFlowsLeavesEmptyShards) {
    workload::FederatedWorkloadOptions opt = small_options();
    opt.groups = 2;
    opt.flows_per_group = 2;  // 4 flows total
    // Loose capacity everywhere: single-flow shards of a capacity-starved
    // group oscillate below their own small utility forever (the
    // shard-local amplitude criterion divides by the shard's utility);
    // this test is about shard-count > flow-count handling, not that.
    opt.tight_groups = 0;
    const model::ProblemSpec spec = workload::make_federated_workload(opt);
    shard::ShardedLrgpEngine engine(spec, {}, config_for(8));
    ASSERT_TRUE(engine.runUntilConverged(400).has_value());
    int populated = 0;
    for (const shard::ShardSummary& s : engine.summaries())
        if (s.flows > 0) ++populated;
    EXPECT_LE(populated, 4);
    EXPECT_GE(populated, 1);
    check_box_and_capacity(spec, engine.allocation(), 1e-6);
    EXPECT_THROW(engine.shardEngine(engine.shardCount()), std::out_of_range);
}

TEST(ShardedEngine, WarmStartSeedsPricesAcrossShards) {
    const model::ProblemSpec spec = workload::make_federated_workload(small_options());
    shard::ShardedLrgpEngine donor(spec, {}, config_for(4));
    donor.runUntilConverged(400);

    shard::ShardedLrgpEngine engine(spec, {}, config_for(4));
    engine.warmStart(donor.prices());
    const std::optional<int> warm = engine.runUntilConverged(400);
    ASSERT_TRUE(warm.has_value());

    shard::ShardedLrgpEngine cold(spec, {}, config_for(4));
    const std::optional<int> cold_conv = cold.runUntilConverged(400);
    ASSERT_TRUE(cold_conv.has_value());
    EXPECT_LE(*warm, *cold_conv);

    core::PriceVector bad;
    bad.node.resize(spec.nodeCount() + 1);
    bad.link.resize(spec.linkCount());
    EXPECT_THROW(engine.warmStart(bad), std::invalid_argument);
}

TEST(ShardedEngine, ValidatesConfigAndArguments) {
    const model::ProblemSpec spec = workload::make_federated_workload(small_options());
    EXPECT_THROW(shard::ShardedLrgpEngine(spec, {}, config_for(0)), std::invalid_argument);
    {
        shard::ShardedConfig bad = config_for(2);
        bad.reconcile_interval = 0;
        EXPECT_THROW(shard::ShardedLrgpEngine(spec, {}, bad), std::invalid_argument);
    }
    {
        shard::ShardedConfig bad = config_for(2);
        bad.reconcile_step = 1.5;
        EXPECT_THROW(shard::ShardedLrgpEngine(spec, {}, bad), std::invalid_argument);
    }
    shard::ShardedLrgpEngine engine(spec, {}, config_for(2));
    EXPECT_THROW(engine.run(0), std::invalid_argument);
    EXPECT_THROW(engine.runUntilConverged(0), std::invalid_argument);
    EXPECT_EQ(std::string(engine.name()), "sharded");
}

}  // namespace
}  // namespace lrgp
