#include <gtest/gtest.h>

#include <memory>

#include "broker/filter.hpp"
#include "broker/overlay.hpp"
#include "broker/transform.hpp"
#include "lrgp/optimizer.hpp"
#include "test_helpers.hpp"

namespace {

using namespace lrgp;
using namespace lrgp::broker;
using lrgp::test::make_tiny_problem;

Message makeMsg(double price, const std::string& symbol) {
    Message m;
    m.fields["price"] = price;
    m.fields["symbol"] = symbol;
    return m;
}

// ------------------------------------------------------------------ filters

TEST(Filters, AcceptAllMatchesEverything) {
    AcceptAll f;
    EXPECT_TRUE(f.matches(makeMsg(1.0, "IBM")));
    EXPECT_TRUE(f.matches(Message{}));
}

TEST(Filters, NumericCompareAllOps) {
    const Message m = makeMsg(80.0, "IBM");
    using Op = NumericCompare::Op;
    EXPECT_TRUE(NumericCompare("price", Op::kLess, 81.0).matches(m));
    EXPECT_TRUE(NumericCompare("price", Op::kLessEq, 80.0).matches(m));
    EXPECT_TRUE(NumericCompare("price", Op::kGreater, 79.0).matches(m));
    EXPECT_TRUE(NumericCompare("price", Op::kGreaterEq, 80.0).matches(m));
    EXPECT_TRUE(NumericCompare("price", Op::kEqual, 80.0).matches(m));
    EXPECT_TRUE(NumericCompare("price", Op::kNotEqual, 81.0).matches(m));
    EXPECT_FALSE(NumericCompare("price", Op::kGreater, 80.0).matches(m));
}

TEST(Filters, NumericCompareMissingOrTextualFieldNeverMatches) {
    const Message m = makeMsg(80.0, "IBM");
    using Op = NumericCompare::Op;
    EXPECT_FALSE(NumericCompare("volume", Op::kGreater, 0.0).matches(m));
    EXPECT_FALSE(NumericCompare("symbol", Op::kEqual, 0.0).matches(m));
    EXPECT_THROW(NumericCompare("", Op::kEqual, 0.0), std::invalid_argument);
}

TEST(Filters, TextEquals) {
    const Message m = makeMsg(80.0, "IBM");
    EXPECT_TRUE(TextEquals("symbol", "IBM").matches(m));
    EXPECT_FALSE(TextEquals("symbol", "AAPL").matches(m));
    EXPECT_FALSE(TextEquals("price", "80").matches(m));  // numeric field
}

TEST(Filters, BooleanCombinators) {
    const Message m = makeMsg(80.0, "IBM");
    auto gt = std::make_shared<NumericCompare>("price", NumericCompare::Op::kGreater, 50.0);
    auto is_ibm = std::make_shared<TextEquals>("symbol", "IBM");
    auto is_aapl = std::make_shared<TextEquals>("symbol", "AAPL");
    EXPECT_TRUE(AndFilter({gt, is_ibm}).matches(m));
    EXPECT_FALSE(AndFilter({gt, is_aapl}).matches(m));
    EXPECT_TRUE(OrFilter({is_aapl, is_ibm}).matches(m));
    EXPECT_FALSE(OrFilter({}).matches(m));
    EXPECT_TRUE(AndFilter({}).matches(m));
    EXPECT_TRUE(NotFilter(is_aapl).matches(m));
    EXPECT_THROW(AndFilter({nullptr}), std::invalid_argument);
    EXPECT_THROW(NotFilter(nullptr), std::invalid_argument);
}

TEST(Filters, DescribeIsHumanReadable) {
    NumericCompare f("price", NumericCompare::Op::kGreater, 80.0);
    EXPECT_EQ(f.describe(), "price > 80");
}

// ------------------------------------------------------------- transforms

TEST(Transforms, RemoveFieldsStripsGoldOnlyContent) {
    RemoveFields t({"insider_flag"});
    Message m = makeMsg(80.0, "IBM");
    m.fields["insider_flag"] = 1.0;
    const auto out = t.apply(m);
    ASSERT_TRUE(out.has_value());
    EXPECT_FALSE(out->hasField("insider_flag"));
    EXPECT_TRUE(out->hasField("price"));
    EXPECT_THROW(RemoveFields({}), std::invalid_argument);
}

TEST(Transforms, ScaleFieldConvertsUnits) {
    ScaleField t("price", 100.0);  // dollars -> cents
    const auto out = t.apply(makeMsg(80.0, "IBM"));
    ASSERT_TRUE(out.has_value());
    EXPECT_DOUBLE_EQ(*out->numericField("price"), 8000.0);
    // Messages without the field pass through unchanged.
    Message no_price;
    no_price.fields["x"] = 1.0;
    EXPECT_TRUE(t.apply(no_price).has_value());
}

TEST(Transforms, AggregatorEmitsEveryWindowWithAverages) {
    Aggregator t(3);
    EXPECT_FALSE(t.apply(makeMsg(10.0, "IBM")).has_value());
    EXPECT_FALSE(t.apply(makeMsg(20.0, "IBM")).has_value());
    const auto out = t.apply(makeMsg(60.0, "IBM"));
    ASSERT_TRUE(out.has_value());
    EXPECT_DOUBLE_EQ(*out->numericField("price"), 30.0);
    // Window resets after emission.
    EXPECT_FALSE(t.apply(makeMsg(1.0, "IBM")).has_value());
    EXPECT_THROW(Aggregator(0), std::invalid_argument);
}

TEST(Transforms, PipelineChainsAndDrops) {
    auto scale = std::make_shared<ScaleField>("price", 2.0);
    auto agg = std::make_shared<Aggregator>(2);
    Pipeline p({scale, agg});
    EXPECT_FALSE(p.apply(makeMsg(10.0, "IBM")).has_value());
    const auto out = p.apply(makeMsg(20.0, "IBM"));
    ASSERT_TRUE(out.has_value());
    EXPECT_DOUBLE_EQ(*out->numericField("price"), 30.0);  // avg(20, 40)
    EXPECT_THROW(Pipeline({nullptr}), std::invalid_argument);
}

// ---------------------------------------------------------------- overlay

TEST(Overlay, EnactAdmitsInRegistrationOrder) {
    const auto t = make_tiny_problem();
    BrokerOverlay overlay(t.spec);
    std::vector<ConsumerId> gold_ids;
    for (int k = 0; k < 8; ++k) gold_ids.push_back(overlay.addConsumer(t.gold));

    auto alloc = model::Allocation::minimal(t.spec);
    alloc.populations[t.gold.index()] = 3;
    overlay.enact(alloc);
    for (int k = 0; k < 8; ++k)
        EXPECT_EQ(overlay.consumer(gold_ids[k]).admitted, k < 3) << "consumer " << k;
}

TEST(Overlay, EpochDeliversAtEnactedRate) {
    const auto t = make_tiny_problem();
    BrokerOverlay overlay(t.spec);
    const auto cid = overlay.addConsumer(t.gold);
    auto alloc = model::Allocation::minimal(t.spec);
    alloc.rates[t.flow.index()] = 10.0;
    alloc.populations[t.gold.index()] = 1;
    overlay.enact(alloc);

    const auto report = overlay.runEpoch(10.0);
    EXPECT_EQ(report.published[t.flow.index()], 100u);
    EXPECT_EQ(overlay.consumer(cid).delivered, 100u);
}

TEST(Overlay, MeasuredUsageMatchesEquationFive) {
    // The broker's measured cost must equal the constraint function the
    // optimizer reasons about: (F + sum_j G n_j) * r * seconds.
    const auto t = make_tiny_problem();
    BrokerOverlay overlay(t.spec);
    for (int k = 0; k < 8; ++k) overlay.addConsumer(t.gold);
    for (int k = 0; k < 20; ++k) overlay.addConsumer(t.pub);

    auto alloc = model::Allocation::minimal(t.spec);
    alloc.rates[t.flow.index()] = 7.0;
    alloc.populations[t.gold.index()] = 4;
    alloc.populations[t.pub.index()] = 9;
    ASSERT_TRUE(model::check_feasibility(t.spec, alloc).feasible());
    overlay.enact(alloc);

    const double seconds = 10.0;
    const auto report = overlay.runEpoch(seconds);
    const double predicted = model::node_usage(t.spec, alloc, t.cnode) * seconds;
    const double measured = report.node_stats[t.cnode.index()].used;
    EXPECT_NEAR(measured, predicted, 0.01 * predicted);
    EXPECT_EQ(report.node_stats[t.cnode.index()].dropped, 0u);
}

TEST(Overlay, OverloadedNodeDropsMessages) {
    const auto t = make_tiny_problem();
    BrokerOverlay overlay(t.spec);
    for (int k = 0; k < 20; ++k) overlay.addConsumer(t.pub);

    // Deliberately infeasible enactment: 20 public consumers at max rate
    // cost 10*20*50 = 10000/s against capacity 1000/s.
    model::Allocation alloc = model::Allocation::minimal(t.spec);
    alloc.rates[t.flow.index()] = 50.0;
    alloc.populations[t.pub.index()] = 20;
    overlay.enact(alloc);

    const auto report = overlay.runEpoch(2.0);
    const auto& stats = report.node_stats[t.cnode.index()];
    EXPECT_GT(stats.dropped, 0u);
    EXPECT_LE(stats.used, stats.budget + 1e-9);
    // Roughly capacity/cost messages make it through, the rest drop.
    EXPECT_LT(stats.processed, report.published[t.flow.index()]);
}

TEST(Overlay, FiltersSelectContent) {
    const auto t = make_tiny_problem();
    BrokerOverlay overlay(t.spec);
    const auto cheap = overlay.addConsumer(
        t.gold, std::make_shared<NumericCompare>("price", NumericCompare::Op::kLess, 50.0));
    const auto expensive = overlay.addConsumer(
        t.gold, std::make_shared<NumericCompare>("price", NumericCompare::Op::kGreaterEq, 50.0));

    overlay.setMessageFactory(t.flow, [](model::FlowId, std::uint64_t seq) {
        Message m;
        m.fields["price"] = static_cast<double>(seq);  // 0..99
        return m;
    });

    auto alloc = model::Allocation::minimal(t.spec);
    alloc.rates[t.flow.index()] = 10.0;
    alloc.populations[t.gold.index()] = 2;
    overlay.enact(alloc);
    overlay.runEpoch(10.0);  // 100 messages, prices 0..99

    EXPECT_EQ(overlay.consumer(cheap).delivered, 50u);
    EXPECT_EQ(overlay.consumer(cheap).filtered_out, 50u);
    EXPECT_EQ(overlay.consumer(expensive).delivered, 50u);
}

TEST(Overlay, TransformationAppliedBeforeConsumers) {
    const auto t = make_tiny_problem();
    BrokerOverlay overlay(t.spec);
    // Consumer filters on a field the transformation removes: nothing
    // may be delivered.
    const auto cid = overlay.addConsumer(
        t.gold, std::make_shared<NumericCompare>("secret", NumericCompare::Op::kGreaterEq, 0.0));
    overlay.setMessageFactory(t.flow, [](model::FlowId, std::uint64_t seq) {
        Message m;
        m.fields["secret"] = static_cast<double>(seq);
        return m;
    });
    overlay.setTransformation(t.flow, t.cnode,
                              std::make_shared<RemoveFields>(std::vector<std::string>{"secret"}));

    auto alloc = model::Allocation::minimal(t.spec);
    alloc.rates[t.flow.index()] = 10.0;
    alloc.populations[t.gold.index()] = 1;
    overlay.enact(alloc);
    overlay.runEpoch(5.0);
    EXPECT_EQ(overlay.consumer(cid).delivered, 0u);
    EXPECT_GT(overlay.consumer(cid).filtered_out, 0u);
}

TEST(Overlay, Validation) {
    const auto t = make_tiny_problem();
    BrokerOverlay overlay(t.spec);
    EXPECT_THROW(overlay.addConsumer(model::ClassId{99}), std::invalid_argument);
    EXPECT_THROW(overlay.enact(model::Allocation{}), std::invalid_argument);
    EXPECT_THROW(overlay.runEpoch(0.0), std::invalid_argument);
}

TEST(Overlay, EndToEndWithOptimizer) {
    // The full loop: optimize with LRGP, enact on the broker, run
    // traffic, and confirm no node drops anything (the allocation is
    // feasible by construction).
    const auto t = make_tiny_problem();
    core::LrgpOptimizer opt(t.spec);
    opt.run(100);

    BrokerOverlay overlay(t.spec);
    for (int k = 0; k < 8; ++k) overlay.addConsumer(t.gold);
    for (int k = 0; k < 20; ++k) overlay.addConsumer(t.pub);
    overlay.enact(opt.allocation());

    const auto report = overlay.runEpoch(20.0);
    for (const auto& stats : report.node_stats) {
        EXPECT_EQ(stats.dropped, 0u);
        EXPECT_LE(stats.used, stats.budget + 1e-9);
    }
    // Admitted gold consumers actually received the flow.
    int admitted_gold = opt.allocation().populations[t.gold.index()];
    ASSERT_GT(admitted_gold, 0);
    const auto gold_ids = overlay.consumersOfClass(t.gold);
    EXPECT_GT(overlay.consumer(gold_ids[0]).delivered, 0u);
}

}  // namespace
