// Chaos integration tests: deterministic fault replay, hardened-protocol
// reconvergence for every shipped scenario, crash/restart semantics, and
// the recovery-metrics analyzer.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/dist_lrgp.hpp"
#include "faults/scenarios.hpp"
#include "metrics/recovery.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using dist::DistLrgp;
using dist::DistOptions;

constexpr sim::SimTime kFaultStart = 10.0;
constexpr sim::SimTime kFaultDuration = 2.0;
constexpr sim::SimTime kSamplePeriod = 0.05;
constexpr sim::SimTime kHorizon = 24.0;

DistOptions hardened_options(faults::FaultPlan plan) {
    DistOptions options;
    options.synchronous = false;
    options.sample_period = kSamplePeriod;
    options.robustness = dist::RobustnessOptions::standard();
    options.fault_plan = std::move(plan);
    return options;
}

std::vector<faults::ChaosScenario> base_scenarios(const model::ProblemSpec& spec) {
    return faults::standard_scenarios(spec.flowCount(), spec.nodeCount(), spec.linkCount(),
                                      kFaultStart, kFaultDuration);
}

std::size_t fault_sample_index() {
    // Samples land at k*kSamplePeriod (k = 1, 2, ...); index the last one
    // strictly before the fault opens so the baseline window stays clean.
    return static_cast<std::size_t>(kFaultStart / kSamplePeriod) - 1;
}

TEST(ChaosDeterminism, SameFaultPlanAndSeedGiveBitwiseIdenticalTraces) {
    // The determinism contract: chaos runs are regression tests, not
    // flaky ones.  Two lockstep runs of every shipped scenario must
    // produce bitwise-identical utility traces.
    const auto spec = workload::make_base_workload();
    for (const faults::ChaosScenario& scenario : base_scenarios(spec)) {
        DistLrgp a(spec, hardened_options(scenario.plan));
        DistLrgp b(spec, hardened_options(scenario.plan));
        a.runFor(kHorizon);
        b.runFor(kHorizon);
        const auto& ta = a.utilityTrace();
        const auto& tb = b.utilityTrace();
        ASSERT_EQ(ta.size(), tb.size()) << scenario.name;
        for (std::size_t i = 0; i < ta.size(); ++i)
            ASSERT_EQ(ta[i], tb[i]) << scenario.name << " sample " << i;
        EXPECT_EQ(a.messagesSent(), b.messagesSent()) << scenario.name;
        EXPECT_EQ(a.messagesLost(), b.messagesLost()) << scenario.name;
        EXPECT_EQ(a.faultStats().messages_dropped, b.faultStats().messages_dropped)
            << scenario.name;
    }
}

TEST(ChaosDeterminism, DifferentSeedsDiverge) {
    const auto spec = workload::make_base_workload();
    faults::FaultPlan plan;
    plan.losses.push_back(
        faults::LossBurst{{kFaultStart, kFaultStart + kFaultDuration}, 0.4, std::nullopt,
                          std::nullopt});
    DistOptions oa = hardened_options(plan);
    DistOptions ob = hardened_options(plan);
    ob.seed = oa.seed + 1;
    DistLrgp a(spec, oa);
    DistLrgp b(spec, ob);
    a.runFor(14.0);
    b.runFor(14.0);
    EXPECT_NE(a.faultStats().messages_dropped, b.faultStats().messages_dropped);
}

TEST(ChaosRecovery, EveryShippedScenarioReconvergesWithinOnePercent) {
    // The headline robustness guarantee: under every shipped fault
    // scenario, the hardened protocol returns to within 1% of its
    // pre-fault steady-state utility.
    const auto spec = workload::make_base_workload();
    for (const faults::ChaosScenario& scenario : base_scenarios(spec)) {
        DistLrgp d(spec, hardened_options(scenario.plan));
        d.runFor(kHorizon);
        const metrics::RecoveryReport report = metrics::analyze_recovery(
            d.utilityTrace(), fault_sample_index(), kSamplePeriod);  // epsilon = 1%
        EXPECT_TRUE(report.reconverged) << scenario.name << ": " << scenario.description;
        EXPECT_LT(report.time_to_reconverge, kHorizon) << scenario.name;
        EXPECT_GE(report.dip_integral, 0.0) << scenario.name;
    }
}

TEST(ChaosRecovery, NodeCrashRestartSemantics) {
    const auto spec = workload::make_base_workload();
    const auto victim_index = static_cast<std::uint32_t>(spec.nodeCount() - 1);
    const faults::AgentRef victim{faults::AgentKind::kNode, victim_index};
    faults::FaultPlan plan;
    plan.crashes.push_back(
        faults::CrashEvent{victim, kFaultStart, kFaultStart + kFaultDuration});

    DistLrgp d(spec, hardened_options(plan));
    EXPECT_FALSE(d.agentDown(victim));
    d.runFor(kFaultStart + 1.0);  // inside the outage
    EXPECT_TRUE(d.agentDown(victim));
    EXPECT_EQ(d.faultStats().crashes, 1u);
    EXPECT_EQ(d.faultStats().restarts, 0u);
    d.runFor(kHorizon - (kFaultStart + 1.0));
    EXPECT_FALSE(d.agentDown(victim));
    EXPECT_EQ(d.faultStats().restarts, 1u);
    // The outage was noticed: sources suspected the silent node.
    EXPECT_GT(d.suspicionEvents(), 0u);
}

TEST(ChaosRecovery, TotalPartitionDegradesSourcesToRateFloor) {
    // Cut every node off from every source for a long window: with a
    // majority of priced resources suspected, hardened sources must
    // degrade to their conservative r_min rather than trust stale prices.
    const auto spec = workload::make_base_workload();
    faults::FaultPlan plan;
    faults::PartitionWindow partition;
    partition.window = {kFaultStart, kFaultStart + 4.0};
    for (std::uint32_t n = 0; n < spec.nodeCount(); ++n)
        partition.island.push_back({faults::AgentKind::kNode, n});
    plan.partitions.push_back(partition);

    DistLrgp d(spec, hardened_options(plan));
    d.runFor(kFaultStart + 2.0);  // well past the heartbeat timeout
    const model::Allocation during = d.snapshot();
    for (const model::FlowSpec& f : spec.flows()) {
        if (!f.active) continue;
        EXPECT_DOUBLE_EQ(during.rates[f.id.index()], f.rate_min) << "flow " << f.id.index();
    }
    // Backoff re-announcement kicked in instead of every-tick flooding.
    EXPECT_GT(d.reannouncementsSent(), 0u);
    // After the partition heals, the system recovers.
    d.runFor(kHorizon - (kFaultStart + 2.0));
    const metrics::RecoveryReport report =
        metrics::analyze_recovery(d.utilityTrace(), fault_sample_index(), kSamplePeriod);
    EXPECT_TRUE(report.reconverged);
}

TEST(ChaosRecovery, UnhardenedRunsAcceptPlansToo) {
    // Fault plans work without RobustnessOptions — the comparison runs
    // the bench relies on (price averaging only).
    const auto spec = workload::make_base_workload();
    faults::FaultPlan plan;
    plan.losses.push_back(
        faults::LossBurst{{2.0, 3.0}, 0.4, std::nullopt, std::nullopt});
    DistOptions options;
    options.synchronous = false;
    options.fault_plan = plan;
    DistLrgp d(spec, options);
    d.runFor(5.0);
    EXPECT_GT(d.faultStats().messages_dropped, 0u);
    EXPECT_EQ(d.suspicionEvents(), 0u);  // no detector without hardening
}

TEST(ChaosValidation, FaultPlanAgentRefsMustExist) {
    const auto spec = workload::make_base_workload();
    DistOptions options;
    options.synchronous = false;
    options.fault_plan.crashes.push_back(faults::CrashEvent{
        {faults::AgentKind::kNode, static_cast<std::uint32_t>(spec.nodeCount())}, 1.0, 2.0});
    EXPECT_THROW((DistLrgp{spec, options}), std::invalid_argument);

    DistOptions options2;
    options2.synchronous = false;
    options2.fault_plan.partitions.push_back(faults::PartitionWindow{
        {1.0, 2.0}, {{faults::AgentKind::kLink, 0}}});  // base workload has no links
    EXPECT_THROW((DistLrgp{spec, options2}), std::invalid_argument);
}

TEST(ChaosValidation, SynchronousModeRejectsChaos) {
    const auto spec = workload::make_base_workload();
    DistOptions with_plan;  // synchronous by default
    with_plan.fault_plan.reorders.push_back(faults::ReorderWindow{{0.0, 1.0}, 0.5, 0.1});
    EXPECT_THROW((DistLrgp{spec, with_plan}), std::invalid_argument);

    DistOptions with_robustness;
    with_robustness.robustness = dist::RobustnessOptions::standard();
    EXPECT_THROW((DistLrgp{spec, with_robustness}), std::invalid_argument);
}

TEST(ChaosValidation, BackoffRequiresHeartbeat) {
    const auto spec = workload::make_base_workload();
    DistOptions options;
    options.synchronous = false;
    options.robustness.reannounce_backoff_min = 0.1;
    options.robustness.reannounce_backoff_max = 0.5;
    EXPECT_THROW((DistLrgp{spec, options}), std::invalid_argument);

    options.robustness.heartbeat_timeout = 0.25;
    options.robustness.reannounce_backoff_min = 0.6;  // min > max
    options.robustness.reannounce_backoff_max = 0.5;
    EXPECT_THROW((DistLrgp{spec, options}), std::invalid_argument);
}

// ----------------------------------------------------- recovery metrics

metrics::TimeSeries synthetic(std::initializer_list<std::pair<int, double>> runs) {
    metrics::TimeSeries t;
    for (const auto& [count, value] : runs)
        for (int i = 0; i < count; ++i) t.append(value);
    return t;
}

TEST(RecoveryMetrics, FlatTraceReconvergesImmediately) {
    const auto trace = synthetic({{100, 500.0}});
    const auto report = metrics::analyze_recovery(trace, 50, 0.1);
    EXPECT_TRUE(report.reconverged);
    EXPECT_DOUBLE_EQ(report.time_to_reconverge, 0.0);
    EXPECT_DOUBLE_EQ(report.dip_integral, 0.0);
    EXPECT_DOUBLE_EQ(report.baseline_utility, 500.0);
}

TEST(RecoveryMetrics, DipAndRecoveryMeasured) {
    // 40 samples at 100, 10 samples at 50, 70 samples back at 100.
    const auto trace = synthetic({{40, 100.0}, {10, 50.0}, {70, 100.0}});
    const auto report = metrics::analyze_recovery(trace, 40, 0.1);
    ASSERT_TRUE(report.reconverged);
    // The trailing 20-window first clears the dip entirely at sample 50.
    EXPECT_DOUBLE_EQ(report.time_to_reconverge, 1.0);
    EXPECT_DOUBLE_EQ(report.min_utility, 50.0);
    EXPECT_DOUBLE_EQ(report.max_dip, 50.0);
    // 10 samples, 50 below target, 0.1s each.
    EXPECT_NEAR(report.dip_integral, 50.0, 1e-9);
}

TEST(RecoveryMetrics, PermanentDropNeverReconvergesToBaseline) {
    const auto trace = synthetic({{40, 100.0}, {80, 50.0}});
    const auto report = metrics::analyze_recovery(trace, 40, 0.1);
    EXPECT_FALSE(report.reconverged);
    EXPECT_TRUE(std::isinf(report.time_to_reconverge));
    EXPECT_GT(report.dip_integral, 0.0);
}

TEST(RecoveryMetrics, FinalSteadyStateTargetHandlesPermanentChange) {
    const auto trace = synthetic({{40, 100.0}, {10, 30.0}, {70, 80.0}});
    metrics::RecoveryOptions options;
    options.target = metrics::RecoveryTarget::kFinalSteadyState;
    const auto report = metrics::analyze_recovery(trace, 40, 0.1, options);
    EXPECT_TRUE(report.reconverged);
    EXPECT_DOUBLE_EQ(report.target_utility, 80.0);
    EXPECT_DOUBLE_EQ(report.baseline_utility, 100.0);
    EXPECT_DOUBLE_EQ(report.min_utility, 30.0);
}

TEST(RecoveryMetrics, RejectsTracesTooShortForWindows) {
    const auto trace = synthetic({{60, 100.0}});
    auto call = [&](std::size_t fault_index, double period, metrics::RecoveryOptions options) {
        (void)metrics::analyze_recovery(trace, fault_index, period, options);
    };
    EXPECT_THROW(call(20, 0.1, {}), std::invalid_argument);  // baseline window too long
    EXPECT_THROW(call(55, 0.1, {}), std::invalid_argument);  // settle window too long
    EXPECT_THROW(call(40, 0.0, {}), std::invalid_argument);  // bad sample period
    metrics::RecoveryOptions bad;
    bad.epsilon = 0.0;
    EXPECT_THROW(call(40, 0.1, bad), std::invalid_argument);
}

}  // namespace
