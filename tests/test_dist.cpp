#include <gtest/gtest.h>

#include "dist/dist_lrgp.hpp"
#include "lrgp/optimizer.hpp"
#include "test_helpers.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using dist::DistLrgp;
using dist::DistOptions;

TEST(DistSync, ProtocolMatchesCentralizedTrace) {
    // The synchronous distributed protocol only distributes the
    // arithmetic: its per-round utility trace must be bit-identical to
    // the centralized optimizer's per-iteration trace.
    const auto spec = workload::make_base_workload();

    core::LrgpOptimizer central(spec);
    central.run(40);

    DistLrgp distributed(spec, DistOptions{});
    distributed.runRounds(40);

    const auto& central_trace = central.utilityTrace();
    const auto& dist_trace = distributed.utilityTrace();
    ASSERT_GE(dist_trace.size(), 40u);
    for (std::size_t i = 0; i < 40; ++i)
        EXPECT_DOUBLE_EQ(dist_trace[i], central_trace[i]) << "round " << i + 1;
}

TEST(DistSync, LatencyJitterDoesNotChangeResults) {
    // Synchrony is enforced by counting, not timing: different latency
    // distributions must give identical round outcomes.
    const auto spec = workload::make_base_workload();
    DistOptions fast;
    fast.latency_min = 0.001;
    fast.latency_max = 0.002;
    fast.seed = 7;
    DistOptions slow;
    slow.latency_min = 0.05;
    slow.latency_max = 0.5;
    slow.seed = 99;

    DistLrgp a(spec, fast);
    a.runRounds(25);
    DistLrgp b(spec, slow);
    b.runRounds(25);
    for (std::size_t i = 0; i < 25; ++i) EXPECT_DOUBLE_EQ(a.utilityTrace()[i], b.utilityTrace()[i]);
    // But wall-clock (sim time) differs with latency.
    EXPECT_LT(a.now(), b.now());
}

TEST(DistSync, RoundTimeScalesWithLatency) {
    // An iteration costs roughly one round trip (rate down, report back).
    const auto spec = workload::make_base_workload();
    DistOptions options;
    options.latency_min = options.latency_max = 0.010;  // fixed 10ms
    DistLrgp d(spec, options);
    d.runRounds(10);
    // 10 rounds of (10ms down + 10ms up) = 0.2s.
    EXPECT_NEAR(d.now(), 0.2, 0.02);
}

TEST(DistSync, MessageCountPerRound) {
    const auto t = lrgp::test::make_tiny_problem();
    DistLrgp d(t.spec, DistOptions{});
    d.runRounds(5);
    // Per round: 1 rate message (flow->cnode) + 1 report (cnode->source).
    // Allow the in-flight tail of the final round.
    EXPECT_GE(d.messagesSent(), 10u);
    EXPECT_LE(d.messagesSent(), 12u);
}

TEST(DistSync, RunRoundsValidation) {
    const auto t = lrgp::test::make_tiny_problem();
    DistLrgp d(t.spec, DistOptions{});
    EXPECT_THROW(d.runRounds(0), std::invalid_argument);
    DistOptions zero_latency;
    zero_latency.latency_min = 0.0;
    EXPECT_THROW((DistLrgp{t.spec, zero_latency}), std::invalid_argument);
}

TEST(DistSync, RemoveFlowRejected) {
    const auto spec = workload::make_base_workload();
    DistLrgp d(spec, DistOptions{});
    EXPECT_THROW(d.removeFlowAt(model::FlowId{5}, 1.0), std::logic_error);
}

TEST(DistAsync, ConvergesNearCentralizedUtility) {
    const auto spec = workload::make_base_workload();
    core::LrgpOptimizer central(spec);
    central.run(120);

    DistOptions options;
    options.synchronous = false;
    DistLrgp d(spec, options);
    d.runFor(10.0);  // ~200 agent periods
    EXPECT_NEAR(d.currentUtility(), central.currentUtility(),
                0.05 * central.currentUtility());
    EXPECT_TRUE(model::check_feasibility(spec, d.snapshot()).feasible());
}

TEST(DistAsync, UtilitySamplerProducesTrace) {
    const auto spec = workload::make_base_workload();
    DistOptions options;
    options.synchronous = false;
    options.sample_period = 0.1;
    DistLrgp d(spec, options);
    d.runFor(5.0);
    EXPECT_NEAR(static_cast<double>(d.utilityTrace().size()), 50.0, 2.0);
}

TEST(DistAsync, FlowRemovalRecovers) {
    const auto spec = workload::make_base_workload();
    DistOptions options;
    options.synchronous = false;
    DistLrgp d(spec, options);
    d.runFor(8.0);
    const double before = d.currentUtility();
    d.removeFlowAt(workload::find_flow(spec, "f0_5"), d.now() + 0.1);
    d.runFor(8.0);
    const double after = d.currentUtility();
    EXPECT_LT(after, before);
    EXPECT_GT(after, 0.0);
    EXPECT_TRUE(model::check_feasibility(d.problem(), d.snapshot()).feasible());
}

TEST(DistAsync, PriceWindowValidation) {
    const auto t = lrgp::test::make_tiny_problem();
    DistOptions options;
    options.synchronous = false;
    options.price_window = 0;
    EXPECT_THROW((DistLrgp{t.spec, options}), std::invalid_argument);
}

TEST(DistAsync, LargerPriceWindowStillConverges) {
    const auto spec = workload::make_base_workload();
    DistOptions options;
    options.synchronous = false;
    options.price_window = 8;
    DistLrgp d(spec, options);
    d.runFor(12.0);
    core::LrgpOptimizer central(spec);
    central.run(150);
    EXPECT_NEAR(d.currentUtility(), central.currentUtility(),
                0.08 * central.currentUtility());
}

TEST(DistOptions, ValidationRejectsInconsistentSettings) {
    const auto spec = workload::make_base_workload();

    DistOptions inverted_latency;
    inverted_latency.latency_min = 0.02;
    inverted_latency.latency_max = 0.01;
    EXPECT_THROW((DistLrgp{spec, inverted_latency}), std::invalid_argument);

    DistOptions negative_loss;
    negative_loss.synchronous = false;
    negative_loss.message_loss_probability = -0.1;
    EXPECT_THROW((DistLrgp{spec, negative_loss}), std::invalid_argument);

    DistOptions bad_period;
    bad_period.synchronous = false;
    bad_period.agent_period = 0.0;
    EXPECT_THROW((DistLrgp{spec, bad_period}), std::invalid_argument);

    DistOptions bad_sampler;
    bad_sampler.synchronous = false;
    bad_sampler.sample_period = -1.0;
    EXPECT_THROW((DistLrgp{spec, bad_sampler}), std::invalid_argument);

    DistOptions bad_fraction;
    bad_fraction.synchronous = false;
    bad_fraction.robustness.heartbeat_timeout = 0.25;
    bad_fraction.robustness.degrade_fraction = 1.5;
    EXPECT_THROW((DistLrgp{spec, bad_fraction}), std::invalid_argument);

    // Staleness horizon shorter than the failure-detection timeout:
    // prices would expire before a silent peer is even suspected,
    // leaving nothing to degrade from.
    DistOptions stale_before_suspect;
    stale_before_suspect.synchronous = false;
    stale_before_suspect.robustness.heartbeat_timeout = 0.25;
    stale_before_suspect.robustness.price_max_age = 0.1;
    EXPECT_THROW((DistLrgp{spec, stale_before_suspect}), std::invalid_argument);
}

TEST(DistAsync, RunForRejectsNegativeDuration) {
    const auto spec = workload::make_base_workload();
    DistOptions options;
    options.synchronous = false;
    DistLrgp d(spec, options);
    EXPECT_THROW(d.runFor(-1.0), std::invalid_argument);
}

TEST(DistAsync, FlowRemovalUnderMessageLossStillReconverges) {
    // A departing flow whose goodbye coincides with 20% message loss:
    // the surviving flows must still settle near the centralized optimum
    // for the reduced problem.
    const auto spec = workload::make_base_workload();
    DistOptions options;
    options.synchronous = false;
    options.message_loss_probability = 0.2;
    DistLrgp d(spec, options);
    d.runFor(8.0);
    const model::FlowId removed = workload::find_flow(spec, "f0_5");
    d.removeFlowAt(removed, d.now() + 0.1);
    d.runFor(12.0);

    // Centralized reference on the same problem without the flow.
    core::LrgpOptimizer central(spec);
    central.removeFlow(removed);
    central.run(200);

    EXPECT_DOUBLE_EQ(d.snapshot().rates[removed.index()], 0.0);
    EXPECT_NEAR(d.currentUtility(), central.currentUtility(),
                0.08 * central.currentUtility());
    EXPECT_TRUE(model::check_feasibility(d.problem(), d.snapshot()).feasible());
}

}  // namespace
