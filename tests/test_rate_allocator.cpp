#include <gtest/gtest.h>

#include <cmath>

#include "lrgp/rate_allocator.hpp"
#include "test_helpers.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using core::PriceVector;
using core::RateAllocator;
using lrgp::test::make_linked_problem;
using lrgp::test::make_tiny_problem;

TEST(RateAllocator, TotalPriceCombinesNodeTerms) {
    const auto t = make_tiny_problem();
    RateAllocator ra(t.spec);
    PriceVector prices = PriceVector::zeros(t.spec.nodeCount(), 0);
    prices.node[t.cnode.index()] = 2.0;
    std::vector<int> pops(t.spec.classCount(), 0);
    pops[t.gold.index()] = 3;  // G=5 -> 15 per unit rate
    pops[t.pub.index()] = 2;   // G=10 -> 20 per unit rate
    // PB = (F + G_g n_g + G_p n_p) * p_b = (2 + 15 + 20) * 2 = 74
    EXPECT_DOUBLE_EQ(ra.totalPrice(t.flow, pops, prices), 74.0);
}

TEST(RateAllocator, TotalPriceIncludesLinkTerms) {
    const auto p = make_linked_problem();
    RateAllocator ra(p.spec);
    PriceVector prices = PriceVector::zeros(p.spec.nodeCount(), p.spec.linkCount());
    prices.link[p.shared_link.index()] = 3.0;
    std::vector<int> pops(p.spec.classCount(), 0);
    // flow_a: PL = L * p_l = 1 * 3; PB = 0 (node prices zero)
    EXPECT_DOUBLE_EQ(ra.totalPrice(p.flow_a, pops, prices), 3.0);
}

TEST(RateAllocator, ZeroPriceGivesMaxRate) {
    const auto t = make_tiny_problem();
    RateAllocator ra(t.spec);
    const PriceVector prices = PriceVector::zeros(t.spec.nodeCount(), 0);
    std::vector<int> pops(t.spec.classCount(), 0);
    pops[t.gold.index()] = 5;
    const auto result = ra.computeRate(t.flow, pops, prices);
    EXPECT_DOUBLE_EQ(result.rate, t.spec.flow(t.flow).rate_max);
}

TEST(RateAllocator, StationarityHoldsInInterior) {
    const auto t = make_tiny_problem();
    RateAllocator ra(t.spec);
    PriceVector prices = PriceVector::zeros(t.spec.nodeCount(), 0);
    prices.node[t.cnode.index()] = 0.1;
    std::vector<int> pops(t.spec.classCount(), 0);
    pops[t.gold.index()] = 4;
    pops[t.pub.index()] = 10;

    const auto result = ra.computeRate(t.flow, pops, prices);
    const double rate = result.rate;
    ASSERT_GT(rate, t.spec.flow(t.flow).rate_min);
    ASSERT_LT(rate, t.spec.flow(t.flow).rate_max);

    // d/dr [ sum n_j U_j(r) - r * P ] = 0 at the solution.
    const double total_price = ra.totalPrice(t.flow, pops, prices);
    const double marginal = 4 * 30.0 / (1.0 + rate) + 10 * 4.0 / (1.0 + rate);
    EXPECT_NEAR(marginal, total_price, 1e-6 * total_price);
}

TEST(RateAllocator, MorePopulationRaisesPricePressure) {
    // With the same node price, more admitted consumers increase PB (each
    // consumer adds per-rate cost) but also increase marginal utility;
    // for the log family the interior solution is W/P - 1.
    const auto t = make_tiny_problem();
    RateAllocator ra(t.spec);
    PriceVector prices = PriceVector::zeros(t.spec.nodeCount(), 0);
    prices.node[t.cnode.index()] = 0.5;
    std::vector<int> few(t.spec.classCount(), 0);
    few[t.gold.index()] = 1;
    std::vector<int> many(t.spec.classCount(), 0);
    many[t.gold.index()] = 8;
    const double r_few = ra.computeRate(t.flow, few, prices).rate;
    const double r_many = ra.computeRate(t.flow, many, prices).rate;
    // few: W=30, P=(2+5)*0.5=3.5 -> 30/3.5-1 = 7.57
    EXPECT_NEAR(r_few, 30.0 / 3.5 - 1.0, 1e-9);
    // many: W=240, P=(2+40)*0.5=21 -> 240/21-1 = 10.43
    EXPECT_NEAR(r_many, 240.0 / 21.0 - 1.0, 1e-9);
}

TEST(RateAllocator, InactiveFlowThrows) {
    auto t = make_tiny_problem();
    t.spec.setFlowActive(t.flow, false);
    RateAllocator ra(t.spec);
    const PriceVector prices = PriceVector::zeros(t.spec.nodeCount(), 0);
    const std::vector<int> pops(t.spec.classCount(), 0);
    EXPECT_THROW((void)ra.computeRate(t.flow, pops, prices), std::logic_error);
}

TEST(RateAllocator, BaseWorkloadRatesAlwaysWithinBounds) {
    const auto spec = workload::make_base_workload();
    RateAllocator ra(spec);
    std::vector<int> pops(spec.classCount(), 0);
    for (std::size_t j = 0; j < pops.size(); ++j) pops[j] = static_cast<int>(j * 37 % 500);
    for (double price_level : {0.0, 0.001, 0.01, 0.1, 1.0, 100.0}) {
        PriceVector prices = PriceVector::zeros(spec.nodeCount(), 0);
        for (double& p : prices.node) p = price_level;
        for (const model::FlowSpec& f : spec.flows()) {
            const double r = ra.computeRate(f.id, pops, prices).rate;
            EXPECT_GE(r, f.rate_min);
            EXPECT_LE(r, f.rate_max);
        }
    }
}

}  // namespace
