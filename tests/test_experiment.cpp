#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "lrgp/optimizer.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using exp::run_experiment_string;

TEST(Experiment, BaseLrgpRunMatchesDirectOptimizer) {
    const auto result = run_experiment_string(R"({
        "name": "basic",
        "workload": {"kind": "base"},
        "optimizer": {"kind": "lrgp", "iterations": 100}
    })");
    core::LrgpOptimizer direct(workload::make_base_workload());
    direct.run(100);
    EXPECT_EQ(result.name, "basic");
    EXPECT_DOUBLE_EQ(result.final_utility, direct.currentUtility());
    EXPECT_EQ(result.utility_trace.size(), 100u);
    EXPECT_EQ(result.converged_at, direct.convergence().convergedAt());
}

TEST(Experiment, FixedGammaHonored) {
    const auto adaptive = run_experiment_string(R"({
        "workload": {"kind": "base"},
        "optimizer": {"kind": "lrgp", "gamma": "adaptive", "iterations": 120}
    })");
    const auto fixed = run_experiment_string(R"({
        "workload": {"kind": "base"},
        "optimizer": {"kind": "lrgp", "gamma": 1.0, "iterations": 120}
    })");
    // Undamped gamma must leave a visibly noisier trace.
    EXPECT_GT(fixed.utility_trace.trailingRelativeAmplitude(40),
              10.0 * adaptive.utility_trace.trailingRelativeAmplitude(40));
}

TEST(Experiment, RemoveFlowEventReproducesFigureThree) {
    const auto result = run_experiment_string(R"({
        "name": "recovery",
        "workload": {"kind": "base"},
        "optimizer": {"kind": "lrgp", "iterations": 250},
        "events": [{"at": 150, "action": "remove_flow", "flow": "f0_5"}]
    })");
    // Utility right before the event is high; right after, depressed.
    EXPECT_GT(result.utility_trace[148], 1.2e6);
    EXPECT_LT(result.utility_trace[160], 0.6e6);
    EXPECT_LT(result.final_utility, 0.6e6);
}

TEST(Experiment, CapacityAndClassEvents) {
    const auto result = run_experiment_string(R"({
        "workload": {"kind": "base"},
        "optimizer": {"kind": "lrgp", "iterations": 200},
        "events": [
            {"at": 80,  "action": "set_node_capacity", "node": "r0_S0", "capacity": 1800000},
            {"at": 120, "action": "set_class_max", "class": "r0_c4", "max": 3000}
        ]
    })");
    // Doubling S0 and growing a class ceiling must raise utility over the
    // unperturbed run.
    core::LrgpOptimizer baseline_run(workload::make_base_workload());
    baseline_run.run(200);
    EXPECT_GT(result.final_utility, baseline_run.currentUtility());
}

TEST(Experiment, ScaledAndRandomWorkloads) {
    const auto scaled = run_experiment_string(R"({
        "workload": {"kind": "scaled", "flow_replicas": 2},
        "optimizer": {"kind": "lrgp", "iterations": 80}
    })");
    EXPECT_GT(scaled.final_utility, 2.5e6);
    const auto random_run = run_experiment_string(R"({
        "workload": {"kind": "random", "seed": 7},
        "optimizer": {"kind": "lrgp", "iterations": 80}
    })");
    EXPECT_GT(random_run.final_utility, 0.0);
}

TEST(Experiment, SaAndRatesOnlyKinds) {
    const auto sa = run_experiment_string(R"({
        "workload": {"kind": "base"},
        "optimizer": {"kind": "sa", "steps": 5000, "temperatures": [10.0]}
    })");
    EXPECT_GT(sa.final_utility, 0.0);
    const auto rates_only = run_experiment_string(R"({
        "workload": {"kind": "base"},
        "optimizer": {"kind": "rates_only", "policy": "proportional", "iterations": 200}
    })");
    EXPECT_GT(rates_only.final_utility, 0.0);
    EXPECT_LT(rates_only.final_utility, sa.final_utility * 2.0);
}

TEST(Experiment, MultirateKind) {
    const auto result = run_experiment_string(R"({
        "workload": {"kind": "base"},
        "optimizer": {"kind": "multirate", "iterations": 150}
    })");
    EXPECT_GT(result.final_utility, 1.3e6);
}

TEST(Experiment, InlineWorkload) {
    const auto result = run_experiment_string(R"({
        "workload": {"kind": "inline", "problem": {
            "nodes": [{"name": "P", "capacity": 1e9}, {"name": "S", "capacity": 1000}],
            "flows": [{"name": "f", "source": "P", "rate_min": 1, "rate_max": 50,
                       "nodes": [{"node": "S", "cost": 2}]}],
            "classes": [{"name": "c", "flow": "f", "node": "S", "max_consumers": 8,
                         "consumer_cost": 5,
                         "utility": {"type": "log", "weight": 30}}]
        }},
        "optimizer": {"kind": "lrgp", "iterations": 100}
    })");
    EXPECT_GT(result.final_utility, 0.0);
}

TEST(Experiment, ResultJsonSerialization) {
    const auto result = run_experiment_string(R"({
        "name": "ser",
        "workload": {"kind": "base"},
        "optimizer": {"kind": "lrgp", "iterations": 30}
    })");
    const auto json = exp::result_to_json(result);
    EXPECT_EQ(json.at("name").asString(), "ser");
    EXPECT_DOUBLE_EQ(json.at("final_utility").asNumber(), result.final_utility);
    EXPECT_EQ(json.at("utility_trace").asArray().size(), 30u);
    const auto no_trace = exp::result_to_json(result, false);
    EXPECT_FALSE(no_trace.has("utility_trace"));
}

TEST(Experiment, SchemaErrors) {
    EXPECT_THROW((void)run_experiment_string(R"({"workload": {"kind": "nope"},
        "optimizer": {"kind": "lrgp"}})"),
                 std::runtime_error);
    EXPECT_THROW((void)run_experiment_string(R"({"workload": {"kind": "base"},
        "optimizer": {"kind": "nope"}})"),
                 std::runtime_error);
    EXPECT_THROW((void)run_experiment_string(R"({"workload": {"kind": "base"},
        "optimizer": {"kind": "lrgp"},
        "events": [{"at": 0, "action": "remove_flow", "flow": "f0_0"}]})"),
                 std::runtime_error);
    EXPECT_THROW((void)run_experiment_string(R"({"workload": {"kind": "base"},
        "optimizer": {"kind": "sa"},
        "events": [{"at": 5, "action": "remove_flow", "flow": "f0_0"}]})"),
                 std::runtime_error);
}

TEST(Experiment, UnknownEventTargetThrows) {
    EXPECT_THROW((void)run_experiment_string(R"({
        "workload": {"kind": "base"},
        "optimizer": {"kind": "lrgp", "iterations": 50},
        "events": [{"at": 10, "action": "remove_flow", "flow": "ghost"}]})"),
                 std::invalid_argument);
}

}  // namespace
