#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "io/problem_json.hpp"
#include "lrgp/optimizer.hpp"
#include "utility/rate_objective.hpp"
#include "utility/utility_function.hpp"

namespace {

using namespace lrgp;
using utility::LogUtility;
using utility::RateSolveMethod;
using utility::ShiftedLogUtility;
using utility::WeightedUtility;

TEST(ShiftedLog, ValueDerivativeInverse) {
    ShiftedLogUtility u(30.0, 50.0);
    EXPECT_NEAR(u.value(50.0), 30.0 * std::log(2.0), 1e-12);
    EXPECT_NEAR(u.derivative(50.0), 0.3, 1e-12);
    const auto r = u.inverseDerivative(u.derivative(77.0));
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(*r, 77.0, 1e-9);
}

TEST(ShiftedLog, ScaleOneMatchesLogUtility) {
    ShiftedLogUtility shifted(7.0, 1.0);
    LogUtility plain(7.0);
    for (double r : {0.0, 1.0, 10.0, 500.0}) {
        EXPECT_NEAR(shifted.value(r), plain.value(r), 1e-12);
        EXPECT_NEAR(shifted.derivative(r), plain.derivative(r), 1e-12);
    }
}

TEST(ShiftedLog, SaturationOrdering) {
    // Small scale saturates early: it reaches most of its value at low
    // rates, and the *fraction* of additional value per extra rate unit
    // shrinks much faster than for a large-scale class.
    ShiftedLogUtility dashboard(10.0, 5.0);
    ShiftedLogUtility ticker(10.0, 500.0);
    EXPECT_GT(dashboard.value(50.0), ticker.value(50.0));
    const double dashboard_relative = dashboard.derivative(500.0) / dashboard.value(500.0);
    const double ticker_relative = ticker.derivative(500.0) / ticker.value(500.0);
    EXPECT_LT(dashboard_relative, ticker_relative);
}

TEST(ShiftedLog, Validation) {
    EXPECT_THROW(ShiftedLogUtility(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(ShiftedLogUtility(1.0, 0.0), std::invalid_argument);
}

TEST(ShiftedLog, SameScaleCombinesClosedForm) {
    std::vector<WeightedUtility> terms{{10.0, std::make_shared<ShiftedLogUtility>(4.0, 25.0)},
                                       {5.0, std::make_shared<ShiftedLogUtility>(8.0, 25.0)}};
    // W = 10*4 + 5*8 = 80; W/(25+r) = p -> r = 80/p - 25
    const auto result = utility::solve_rate_objective(terms, 1.0, 1.0, 1000.0);
    EXPECT_EQ(result.method, RateSolveMethod::kClosedForm);
    EXPECT_NEAR(result.rate, 55.0, 1e-9);
}

TEST(ShiftedLog, DifferentScalesFallBackToNumeric) {
    std::vector<WeightedUtility> terms{{10.0, std::make_shared<ShiftedLogUtility>(4.0, 25.0)},
                                       {5.0, std::make_shared<ShiftedLogUtility>(8.0, 100.0)}};
    const auto result = utility::solve_rate_objective(terms, 0.5, 1.0, 1000.0);
    EXPECT_EQ(result.method, RateSolveMethod::kNumeric);
    EXPECT_NEAR(utility::rate_objective_derivative(terms, 0.5, result.rate), 0.0, 1e-5);
}

TEST(ShiftedLog, MixWithPlainLogFallsBackToNumeric) {
    std::vector<WeightedUtility> terms{{10.0, std::make_shared<ShiftedLogUtility>(4.0, 25.0)},
                                       {5.0, std::make_shared<LogUtility>(8.0)}};
    const auto result = utility::solve_rate_objective(terms, 0.5, 1.0, 1000.0);
    EXPECT_EQ(result.method, RateSolveMethod::kNumeric);
}

TEST(ShiftedLog, JsonRoundTrip) {
    model::ProblemBuilder b;
    const auto n = b.addNode("N", 1e5);
    const auto f = b.addFlow("f", n, 1.0, 100.0);
    b.routeThroughNode(f, n, 1.0);
    b.addClass("c", f, n, 10, 2.0, std::make_shared<ShiftedLogUtility>(12.0, 40.0));
    const auto spec = b.build();
    const auto restored = io::problem_from_json_string(io::problem_to_json_string(spec));
    EXPECT_NEAR(restored.classes()[0].utility->value(40.0), 12.0 * std::log(2.0), 1e-9);
}

TEST(ShiftedLog, OptimizerHandlesMixedSaturationScales) {
    // Two classes on one flow with very different saturation scales: the
    // optimizer must run entirely on the numeric stationarity path and
    // still converge to a feasible allocation.
    model::ProblemBuilder b;
    const auto src = b.addNode("P", 1e9);
    const auto node = b.addNode("S", 2e5);
    const auto flow = b.addFlow("mixed", src, 10.0, 1000.0);
    b.routeThroughNode(flow, node, 3.0);
    b.addClass("dashboards", flow, node, 500, 19.0,
               std::make_shared<ShiftedLogUtility>(20.0, 5.0));
    b.addClass("tickers", flow, node, 200, 19.0,
               std::make_shared<ShiftedLogUtility>(20.0, 500.0));
    const auto spec = b.build();

    core::LrgpOptimizer opt(spec);
    opt.run(400);
    // The sharply different saturation scales leave a residual wobble
    // above the strict 0.1% criterion, but the trajectory stabilizes to
    // within 1% and stays feasible throughout.
    EXPECT_LT(opt.utilityTrace().trailingRelativeAmplitude(50), 0.01);
    EXPECT_GT(opt.currentUtility(), 0.0);
    EXPECT_TRUE(model::check_feasibility(spec, opt.allocation()).feasible());
}

}  // namespace
