// Message-level dataplane: enacted allocations running as simulated
// traffic, measured against the optimizer's planned numbers.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "broker/overlay.hpp"
#include "dataplane/closed_loop.hpp"
#include "dataplane/dataplane.hpp"
#include "dataplane/token_bucket.hpp"
#include "dist/dist_lrgp.hpp"
#include "faults/scenarios.hpp"
#include "lrgp/optimizer.hpp"
#include "metrics/recovery.hpp"
#include "model/allocation.hpp"
#include "model/problem.hpp"
#include "utility/utility_function.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;

/// Two consumer-hosting nodes, one link, two flows, three classes — big
/// enough to exercise link chains, fan-out and shared nodes, small
/// enough that expected counts can be reasoned about exactly.
model::ProblemSpec makeSmallSpec() {
    model::ProblemBuilder b;
    const model::NodeId s0 = b.addNode("S0", 100.0);
    const model::NodeId s1 = b.addNode("S1", 80.0);
    const model::LinkId l0 = b.addLink("l0", s0, s1, 50.0);
    const model::FlowId f0 = b.addFlow("f0", s0, 1.0, 10.0);
    b.routeThroughNode(f0, s0, 1.0);
    b.routeThroughNode(f0, s1, 1.0);
    b.routeOverLink(f0, l0, 1.0);
    const model::FlowId f1 = b.addFlow("f1", s1, 1.0, 8.0);
    b.routeThroughNode(f1, s1, 2.0);
    b.addClass("c0", f0, s0, 3, 0.5, std::make_shared<utility::LogUtility>(20.0));
    b.addClass("c1", f0, s1, 2, 1.0, std::make_shared<utility::LogUtility>(10.0));
    b.addClass("c2", f1, s1, 4, 0.5, std::make_shared<utility::LogUtility>(15.0));
    return b.build();
}

model::Allocation smallAllocation() {
    model::Allocation alloc;
    alloc.rates = {4.0, 2.0};
    alloc.populations = {2, 1, 3};
    return alloc;
}

TEST(TokenBucket, DeterministicArrivalsAtRefillRateNeverDrop) {
    dataplane::TokenBucket bucket(1.0, 5.0);
    double now = 0.0;
    for (int i = 0; i < 1000; ++i) {
        now += 0.2;  // exactly 1/rate apart
        EXPECT_TRUE(bucket.tryConsume(now)) << "arrival " << i;
    }
}

TEST(TokenBucket, PolicesBeyondBurstAllowance) {
    dataplane::TokenBucket bucket(4.0, 1.0);
    int passed = 0;
    for (int i = 0; i < 10; ++i) {
        if (bucket.tryConsume(0.0)) ++passed;
    }
    EXPECT_EQ(passed, 4);  // the burst allowance, then empty
    EXPECT_TRUE(bucket.tryConsume(1.0));
    EXPECT_FALSE(bucket.tryConsume(1.0));
}

TEST(Dataplane, SteadyStateMatchesPlannedUtilityWithinTwoPercent) {
    const model::ProblemSpec spec = makeSmallSpec();
    dataplane::Dataplane dp(spec);
    const model::Allocation alloc = smallAllocation();
    ASSERT_TRUE(model::check_feasibility(spec, alloc).feasible());
    dp.notePlanned(alloc);
    dp.enact(alloc);
    dp.runUntil(60.0);

    const dataplane::DataplaneStats stats = dp.collectStats();
    EXPECT_EQ(stats.dropped_link, 0u);
    EXPECT_EQ(stats.dropped_node, 0u);
    EXPECT_EQ(stats.drop_rate, 0.0);
    EXPECT_EQ(stats.total_shaped, 0u);
    ASSERT_GT(stats.utility.planned, 0.0);
    const double gap =
        std::abs(stats.utility.achieved_cumulative - stats.utility.planned) /
        stats.utility.planned;
    EXPECT_LE(gap, 0.02) << "achieved " << stats.utility.achieved_cumulative << " vs planned "
                         << stats.utility.planned;
    // Lightly loaded servers: end-to-end latency is a few service times.
    EXPECT_GT(stats.latency.count, 0u);
    EXPECT_LT(stats.latency.p99, 1.0);
    EXPECT_LE(stats.latency.p50, stats.latency.p99);
    EXPECT_LE(stats.latency.p99, stats.latency.max);
}

TEST(Dataplane, TokenBucketShapesOverdrivenProducer) {
    const model::ProblemSpec spec = makeSmallSpec();
    dataplane::Dataplane dp(spec);
    const model::Allocation alloc = smallAllocation();
    dp.enact(alloc);
    dp.setOfferedRate(model::FlowId{0}, 8.0);  // enacted is 4.0
    dp.runUntil(50.0);

    const dataplane::DataplaneStats stats = dp.collectStats();
    const dataplane::FlowStats& f0 = stats.flows[0];
    EXPECT_GT(f0.shaped, 0u);
    // Emission rate is pinned at the enacted rate (plus the initial
    // burst allowance), not the offered rate.
    EXPECT_NEAR(static_cast<double>(f0.emitted) / 50.0, 4.0, 0.4);
    // Everything that did get in is delivered (no overload downstream).
    EXPECT_EQ(stats.dropped_link, 0u);
    EXPECT_EQ(stats.dropped_node, 0u);
}

TEST(Dataplane, OverloadedNodeDropsAndUtilityFallsShort) {
    const model::ProblemSpec spec = makeSmallSpec();
    dataplane::Dataplane dp(spec);
    model::Allocation alloc = smallAllocation();
    alloc.rates = {10.0, 8.0};
    alloc.populations = {3, 2, 4};
    dp.notePlanned(alloc);
    dp.enact(alloc);
    // A capacity fault shrinks S1 far below the allocation's needs.
    dp.setNodeCapacity(model::NodeId{1}, 5.0);
    dp.runUntil(40.0);

    const dataplane::DataplaneStats stats = dp.collectStats();
    EXPECT_GT(stats.dropped_node, 0u);
    EXPECT_GT(stats.drop_rate, 0.0);
    EXPECT_LT(stats.utility.achieved_cumulative, stats.utility.planned * 0.95);
    // The overloaded server sits at full utilization with a deep queue.
    const dataplane::EntityStats& s1 = stats.nodes[1];
    EXPECT_GT(s1.dropped, 0u);
    EXPECT_GT(s1.utilization, 0.9);
    EXPECT_EQ(s1.peak_queue, 64u);
}

TEST(Dataplane, MidRunEnactmentShiftsEmissionRate) {
    const model::ProblemSpec spec = makeSmallSpec();
    dataplane::Dataplane dp(spec);
    model::Allocation alloc = smallAllocation();
    dp.enact(alloc);
    dp.runUntil(30.0);
    alloc.rates = {8.0, 4.0};
    dp.enact(alloc);
    dp.runUntil(60.0);

    const dataplane::DataplaneStats stats = dp.collectStats();
    EXPECT_EQ(stats.enactments, 2u);
    EXPECT_NEAR(static_cast<double>(stats.flows[0].emitted), 4.0 * 30 + 8.0 * 30, 8.0);
    EXPECT_NEAR(static_cast<double>(stats.flows[1].emitted), 2.0 * 30 + 4.0 * 30, 8.0);
    EXPECT_EQ(stats.dropped_link, 0u);
    EXPECT_EQ(stats.dropped_node, 0u);
}

TEST(Dataplane, FlowChurnStopsEmissionAndDipsAchievedUtility) {
    const model::ProblemSpec spec = makeSmallSpec();
    dataplane::Dataplane dp(spec);
    dp.enact(smallAllocation());
    dp.runUntil(30.0);
    const double steady = dp.achievedUtilityTrace().trailingMean(10);
    const std::uint64_t emitted_at_churn = dp.collectStats().flows[0].emitted;

    dp.setFlowActive(model::FlowId{0}, false);
    dp.runUntil(60.0);

    const dataplane::DataplaneStats stats = dp.collectStats();
    // The source stopped: at most one already-scheduled emission later.
    EXPECT_LE(stats.flows[0].emitted, emitted_at_churn + 1);
    EXPECT_FALSE(stats.flows[0].active);
    // f1 keeps delivering, so utility dips but does not vanish.
    const double after = dp.achievedUtilityTrace().trailingMean(10);
    EXPECT_LT(after, 0.75 * steady);
    EXPECT_GT(after, 0.0);
}

TEST(Dataplane, SameSeedRunsAreBitwiseIdenticalWithAndWithoutObs) {
    const model::ProblemSpec spec = makeSmallSpec();
    const auto drive = [&spec](obs::Registry* registry) {
        dataplane::DataplaneOptions options;
        options.arrivals = dataplane::ArrivalProcess::kPoisson;
        options.seed = 42;
        dataplane::Dataplane dp(spec, options);
        if (registry != nullptr) dp.attachObservability(registry);
        model::Allocation alloc = smallAllocation();
        dp.notePlanned(alloc);
        dp.enact(alloc);
        dp.runUntil(20.0);
        alloc.rates = {6.0, 3.0};
        dp.enact(alloc);
        dp.setFlowActive(model::FlowId{1}, false);
        dp.runUntil(40.0);
        return dp.statsJson(true);
    };
    const std::string first = drive(nullptr);
    const std::string second = drive(nullptr);
    EXPECT_EQ(first, second);
    obs::Registry registry;
    const std::string with_obs = drive(&registry);
    EXPECT_EQ(first, with_obs);
}

TEST(Dataplane, PoissonArrivalsAverageTheEnactedRate) {
    const model::ProblemSpec spec = makeSmallSpec();
    dataplane::DataplaneOptions options;
    options.arrivals = dataplane::ArrivalProcess::kPoisson;
    options.seed = 7;
    options.token_bucket_depth = 64.0;  // generous: police only the mean
    dataplane::Dataplane dp(spec, options);
    dp.enact(smallAllocation());
    dp.runUntil(200.0);

    const dataplane::DataplaneStats stats = dp.collectStats();
    // 800 expected emissions: the sample mean sits within ~4 sigma.
    EXPECT_NEAR(static_cast<double>(stats.flows[0].emitted), 800.0, 120.0);
    EXPECT_NEAR(static_cast<double>(stats.flows[1].emitted), 400.0, 90.0);
}

TEST(Dataplane, EnactRejectsMisSizedAllocation) {
    const model::ProblemSpec spec = makeSmallSpec();
    dataplane::Dataplane dp(spec);
    model::Allocation alloc = smallAllocation();
    alloc.rates.push_back(1.0);
    EXPECT_THROW(dp.enact(alloc), std::invalid_argument);
    EXPECT_THROW(dp.notePlanned(alloc), std::invalid_argument);
}

TEST(Dataplane, BrokerOverlayAndDataplaneAgreeOnEnactedState) {
    const model::ProblemSpec spec = makeSmallSpec();
    broker::BrokerOverlay overlay(spec);
    for (std::size_t j = 0; j < spec.classCount(); ++j) {
        const model::ClassId cls{static_cast<std::uint32_t>(j)};
        for (int c = 0; c < spec.consumerClass(cls).max_consumers; ++c) {
            overlay.addConsumer(cls);
        }
    }
    dataplane::Dataplane dp(spec);
    const model::Allocation alloc = smallAllocation();
    overlay.enact(alloc);
    dp.enact(alloc);
    dp.runUntil(20.0);

    const std::vector<int> admitted = overlay.admittedPopulations();
    const dataplane::DataplaneStats stats = dp.collectStats();
    ASSERT_EQ(admitted.size(), stats.classes.size());
    for (std::size_t j = 0; j < admitted.size(); ++j) {
        EXPECT_EQ(admitted[j], stats.classes[j].population) << "class " << j;
        if (admitted[j] > 0) {
            EXPECT_GT(stats.classes[j].delivered, 0u) << "class " << j;
        }
    }
    for (std::size_t i = 0; i < spec.flowCount(); ++i) {
        EXPECT_EQ(overlay.flowRate(model::FlowId{static_cast<std::uint32_t>(i)}),
                  stats.flows[i].enacted_rate);
    }
}

TEST(ClosedLoop, OptimizerDrivenDataplaneConvergesToPlannedUtility) {
    const model::ProblemSpec spec = makeSmallSpec();
    core::LrgpOptimizer optimizer{model::ProblemSpec(spec)};
    dataplane::Dataplane dp(spec);
    dataplane::ClosedLoopOptions options;
    options.duration = 30.0;
    options.enactment.rate_deadband = 0.05;
    options.enactment.population_deadband = 0;
    options.enactment.min_interval = 5.0;
    const dataplane::ClosedLoopResult result =
        dataplane::run_closed_loop(optimizer, dp, options);

    EXPECT_GT(result.iterations, 100u);
    EXPECT_GE(result.enactments, 1u);
    EXPECT_LE(result.enactments, result.offers);
    const dataplane::DataplaneStats stats = dp.collectStats();
    ASSERT_GT(stats.utility.planned, 0.0);
    // Windows are coarse (0.5 s) so compare smoothed achieved utility
    // against the optimizer's plan; the loop should close the gap to a
    // few percent once rates settle.
    const double achieved = dp.achievedUtilityTrace().trailingMean(20);
    const double planned = dp.plannedUtilityTrace().trailingMean(20);
    EXPECT_GT(achieved, 0.85 * planned);
    EXPECT_LT(achieved, 1.10 * planned);
    EXPECT_EQ(stats.dropped_node, 0u);
}

TEST(ClosedLoop, DistPartitionProducesMeasuredUtilityDip) {
    workload::WorkloadOptions wopts;
    wopts.rate_max = 60.0;        // keep message volume test-sized
    wopts.node_capacity = 3.0e7;  // headroom so the enacted optimum runs drop-free
    const model::ProblemSpec spec = workload::make_scaled_workload(wopts);
    // Cut every node off from every source for [10s, 12s]: hardened
    // sources degrade to r_min, so the *enacted* rates collapse and the
    // wire must show it.
    faults::FaultPlan plan;
    faults::PartitionWindow partition;
    partition.window = {10.0, 12.0};
    for (std::uint32_t n = 0; n < spec.nodeCount(); ++n) {
        partition.island.push_back({faults::AgentKind::kNode, n});
    }
    plan.partitions.push_back(partition);

    dist::DistOptions dopts;
    dopts.synchronous = false;
    dopts.sample_period = 0.05;
    dopts.fault_plan = plan;
    dopts.robustness = dist::RobustnessOptions::standard();
    dist::DistLrgp engine{model::ProblemSpec(spec), dopts};

    dataplane::Dataplane dp(spec);
    core::EnactmentOptions eopts;
    eopts.rate_deadband = 0.02;
    eopts.population_deadband = 0;
    eopts.min_interval = 1.0;
    dataplane::DistCoupling coupling(engine, dp, eopts);
    engine.runFor(24.0);
    dp.runUntil(24.0);

    EXPECT_GE(coupling.enactments(), 2u);

    // Allocation-level recovery (the protocol's own utility trace).
    metrics::RecoveryOptions alloc_opts;
    alloc_opts.epsilon = 0.02;
    const metrics::RecoveryReport alloc_report = metrics::analyze_recovery(
        engine.utilityTrace(), static_cast<std::size_t>(10.0 / 0.05) - 1, 0.05, alloc_opts);

    // Measured recovery (what consumers actually experienced).
    metrics::RecoveryOptions measured_opts;
    measured_opts.epsilon = 0.05;
    measured_opts.baseline_window = 10;
    measured_opts.settle_window = 5;
    const metrics::RecoveryReport measured_report = metrics::analyze_recovery(
        dp.achievedUtilityTrace(), static_cast<std::size_t>(10.0 / 0.5) - 1, 0.5, measured_opts);

    // The measured numbers must agree with the allocation-level ones in
    // sign and ordering: a substantial dip below a positive baseline in
    // both traces, and both recover after the partition heals.
    EXPECT_GT(measured_report.baseline_utility, 0.0);
    EXPECT_GT(alloc_report.max_dip, 0.05 * alloc_report.baseline_utility);
    EXPECT_GT(measured_report.max_dip, 0.05 * measured_report.baseline_utility);
    EXPECT_LT(measured_report.min_utility, measured_report.baseline_utility);
    EXPECT_LT(alloc_report.min_utility, alloc_report.baseline_utility);
    EXPECT_TRUE(alloc_report.reconverged);
    EXPECT_TRUE(measured_report.reconverged);
}

}  // namespace
