#include <gtest/gtest.h>

#include <cmath>

#include "model/allocation.hpp"
#include "test_helpers.hpp"

namespace {

using namespace lrgp;
using lrgp::test::make_linked_problem;
using lrgp::test::make_tiny_problem;

TEST(Allocation, MinimalIsFeasibleAndZeroUtility) {
    const auto t = make_tiny_problem();
    const auto a = model::Allocation::minimal(t.spec);
    EXPECT_DOUBLE_EQ(a.rates[t.flow.index()], 1.0);
    EXPECT_EQ(a.populations[t.gold.index()], 0);
    EXPECT_TRUE(model::check_feasibility(t.spec, a).feasible());
    EXPECT_DOUBLE_EQ(model::total_utility(t.spec, a), 0.0);
}

TEST(Allocation, UtilityMatchesHandComputation) {
    const auto t = make_tiny_problem();
    auto a = model::Allocation::minimal(t.spec);
    a.rates[t.flow.index()] = 9.0;
    a.populations[t.gold.index()] = 3;
    a.populations[t.pub.index()] = 5;
    // 3*30*log(10) + 5*4*log(10)
    EXPECT_NEAR(model::total_utility(t.spec, a), (90.0 + 20.0) * std::log(10.0), 1e-9);
}

TEST(Allocation, NodeUsageMatchesEquationFive) {
    const auto t = make_tiny_problem();
    auto a = model::Allocation::minimal(t.spec);
    a.rates[t.flow.index()] = 10.0;
    a.populations[t.gold.index()] = 4;
    a.populations[t.pub.index()] = 6;
    // F*r + (G_gold*n_gold + G_pub*n_pub)*r = 2*10 + (5*4 + 10*6)*10
    EXPECT_DOUBLE_EQ(model::node_usage(t.spec, a, t.cnode), 20.0 + 800.0);
    // Producer node carries no cost.
    EXPECT_DOUBLE_EQ(model::node_usage(t.spec, a, model::NodeId{0}), 0.0);
}

TEST(Allocation, LinkUsageMatchesEquationFour) {
    const auto p = make_linked_problem();
    auto a = model::Allocation::minimal(p.spec);
    a.rates[p.flow_a.index()] = 30.0;
    a.rates[p.flow_b.index()] = 50.0;
    EXPECT_DOUBLE_EQ(model::link_usage(p.spec, a, p.shared_link), 80.0);
}

TEST(Feasibility, DetectsRateBoundViolations) {
    const auto t = make_tiny_problem();
    auto a = model::Allocation::minimal(t.spec);
    a.rates[t.flow.index()] = 0.5;  // below min of 1
    auto report = model::check_feasibility(t.spec, a);
    ASSERT_FALSE(report.feasible());
    EXPECT_EQ(report.violations[0].kind, model::Violation::Kind::kRateBelowMin);

    a.rates[t.flow.index()] = 51.0;  // above max of 50
    report = model::check_feasibility(t.spec, a);
    ASSERT_FALSE(report.feasible());
    EXPECT_EQ(report.violations[0].kind, model::Violation::Kind::kRateAboveMax);
}

TEST(Feasibility, DetectsPopulationViolations) {
    const auto t = make_tiny_problem();
    auto a = model::Allocation::minimal(t.spec);
    a.populations[t.gold.index()] = 9;  // max is 8
    auto report = model::check_feasibility(t.spec, a);
    ASSERT_FALSE(report.feasible());
    EXPECT_EQ(report.violations[0].kind, model::Violation::Kind::kPopulationAboveMax);

    a.populations[t.gold.index()] = -1;
    report = model::check_feasibility(t.spec, a);
    ASSERT_FALSE(report.feasible());
    EXPECT_EQ(report.violations[0].kind, model::Violation::Kind::kPopulationNegative);
}

TEST(Feasibility, DetectsNodeOverCapacity) {
    const auto t = make_tiny_problem();
    auto a = model::Allocation::minimal(t.spec);
    a.rates[t.flow.index()] = 50.0;
    a.populations[t.pub.index()] = 20;  // 2*50 + 10*20*50 = 10100 > 1000
    const auto report = model::check_feasibility(t.spec, a);
    ASSERT_FALSE(report.feasible());
    EXPECT_EQ(report.violations[0].kind, model::Violation::Kind::kNodeOverCapacity);
}

TEST(Feasibility, DetectsLinkOverCapacity) {
    const auto p = make_linked_problem();
    auto a = model::Allocation::minimal(p.spec);
    a.rates[p.flow_a.index()] = 80.0;
    a.rates[p.flow_b.index()] = 80.0;  // 160 > 100
    const auto report = model::check_feasibility(p.spec, a);
    ASSERT_FALSE(report.feasible());
    EXPECT_EQ(report.violations[0].kind, model::Violation::Kind::kLinkOverCapacity);
}

TEST(Feasibility, ToleranceAllowsTinySlack) {
    const auto t = make_tiny_problem();
    auto a = model::Allocation::minimal(t.spec);
    // Exactly at capacity: F*r + G*n*r = 1000 with r=10: 20 + 10*n*10 = 1000
    // -> n = 9.8; use n=9 -> 920; then nudge rate to overshoot slightly.
    a.rates[t.flow.index()] = 10.0;
    a.populations[t.pub.index()] = 9;
    EXPECT_TRUE(model::check_feasibility(t.spec, a).feasible());
}

TEST(Feasibility, InactiveFlowMustBeZeroed) {
    auto t = make_tiny_problem();
    t.spec.setFlowActive(t.flow, false);
    auto a = model::Allocation::minimal(t.spec);
    // minimal() zeroes inactive flows.
    EXPECT_DOUBLE_EQ(a.rates[t.flow.index()], 0.0);
    EXPECT_TRUE(model::check_feasibility(t.spec, a).feasible());

    a.rates[t.flow.index()] = 5.0;
    const auto report = model::check_feasibility(t.spec, a);
    ASSERT_FALSE(report.feasible());
    EXPECT_EQ(report.violations[0].kind, model::Violation::Kind::kInactiveFlowNonzero);
}

TEST(Feasibility, InactiveFlowContributesNothing) {
    auto t = make_tiny_problem();
    auto a = model::Allocation::minimal(t.spec);
    a.rates[t.flow.index()] = 10.0;
    a.populations[t.gold.index()] = 2;
    const double active_utility = model::total_utility(t.spec, a);
    EXPECT_GT(active_utility, 0.0);

    t.spec.setFlowActive(t.flow, false);
    EXPECT_DOUBLE_EQ(model::total_utility(t.spec, a), 0.0);
    EXPECT_DOUBLE_EQ(model::node_usage(t.spec, a, t.cnode), 0.0);
}

TEST(Feasibility, WrongSizeAllocationRejected) {
    const auto t = make_tiny_problem();
    model::Allocation a;  // empty
    EXPECT_FALSE(model::check_feasibility(t.spec, a).feasible());
}

}  // namespace
