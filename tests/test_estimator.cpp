#include <gtest/gtest.h>

#include "broker/estimator.hpp"
#include "broker/overlay.hpp"
#include "test_helpers.hpp"

namespace {

using namespace lrgp;
using broker::CostEstimator;
using broker::CostObservation;

TEST(CostEstimator, RecoversExactLinearModel) {
    // usage = 3r + 19nr, the paper's constants.
    CostEstimator estimator;
    for (double r : {10.0, 50.0, 200.0})
        for (double n : {0.0, 5.0, 40.0})
            estimator.addObservation({r, n, 3.0 * r + 19.0 * n * r});
    const auto est = estimator.estimate();
    ASSERT_TRUE(est.has_value());
    EXPECT_NEAR(est->flow_node_cost, 3.0, 1e-9);
    EXPECT_NEAR(est->consumer_cost, 19.0, 1e-9);
    EXPECT_NEAR(est->max_residual, 0.0, 1e-9);
}

TEST(CostEstimator, ToleratesNoise) {
    CostEstimator estimator;
    // +-1% multiplicative noise, deterministic pattern.  The G term
    // dominates the regressors, so G is recovered tightly while F (a
    // small additive component) absorbs most of the noise.
    int k = 0;
    for (double r : {20.0, 80.0, 300.0, 700.0})
        for (double n : {0.0, 10.0, 100.0}) {
            const double noise = 1.0 + ((k++ % 2 == 0) ? 0.01 : -0.01);
            estimator.addObservation({r, n, (3.0 * r + 19.0 * n * r) * noise});
        }
    const auto est = estimator.estimate();
    ASSERT_TRUE(est.has_value());
    EXPECT_NEAR(est->flow_node_cost, 3.0, 1.5);
    EXPECT_NEAR(est->consumer_cost, 19.0, 0.5);
}

TEST(CostEstimator, SingularWithoutVariation) {
    CostEstimator estimator;
    // All observations share n = 4: F and G are not separable.
    for (double r : {10.0, 20.0, 30.0}) estimator.addObservation({r, 4.0, 2.0 * r + 5.0 * 4 * r});
    EXPECT_FALSE(estimator.estimate().has_value());
}

TEST(CostEstimator, NeedsTwoObservations) {
    CostEstimator estimator;
    EXPECT_FALSE(estimator.estimate().has_value());
    estimator.addObservation({10.0, 2.0, 100.0});
    EXPECT_FALSE(estimator.estimate().has_value());
    EXPECT_EQ(estimator.observationCount(), 1u);
    estimator.clear();
    EXPECT_EQ(estimator.observationCount(), 0u);
}

TEST(CostEstimator, CalibratesFromBrokerEpochs) {
    // The full autonomic-calibration loop: run traffic epochs at several
    // operating points on the broker, measure node usage, and recover
    // the configured F=2, G=5 of the tiny problem's gold class.
    const auto t = lrgp::test::make_tiny_problem();
    CostEstimator estimator;

    // Operating points chosen to stay within the node budget (capacity
    // 1000/s): max usage/s = 2*20 + 5*6*20 = 640.  Overloaded epochs
    // would cap the measured usage and bias the fit.
    for (double rate : {5.0, 10.0, 20.0}) {
        for (int n : {0, 2, 6}) {
            broker::BrokerOverlay overlay(t.spec);
            for (int k = 0; k < 8; ++k) overlay.addConsumer(t.gold);
            auto alloc = model::Allocation::minimal(t.spec);
            alloc.rates[t.flow.index()] = rate;
            alloc.populations[t.gold.index()] = n;
            overlay.enact(alloc);
            const auto report = overlay.runEpoch(10.0);
            estimator.addObservation(
                {rate, static_cast<double>(n),
                 report.node_stats[t.cnode.index()].used / report.seconds});
        }
    }

    const auto est = estimator.estimate();
    ASSERT_TRUE(est.has_value());
    // The epoch publishes floor(rate*seconds) messages, so the effective
    // rate is quantized; allow a few percent.
    EXPECT_NEAR(est->flow_node_cost, 2.0, 0.1);
    EXPECT_NEAR(est->consumer_cost, 5.0, 0.1);
}

}  // namespace
