#include <gtest/gtest.h>

#include <memory>

#include "baseline/annealing.hpp"
#include "baseline/exhaustive.hpp"
#include "lrgp/optimizer.hpp"
#include "utility/utility_function.hpp"

namespace {

using namespace lrgp;
using baseline::ExhaustiveOptions;
using baseline::exhaustive_search;

/// A micro problem small enough for dense enumeration: one flow, two
/// classes with conflicting benefit-cost profiles.
model::ProblemSpec microProblem() {
    model::ProblemBuilder b;
    const auto src = b.addNode("P", 1e9);
    const auto node = b.addNode("S", 200.0);
    const auto flow = b.addFlow("f", src, 1.0, 20.0);
    b.routeThroughNode(flow, node, 1.0);
    b.addClass("hi", flow, node, 4, 3.0, std::make_shared<utility::LogUtility>(12.0));
    b.addClass("lo", flow, node, 6, 1.0, std::make_shared<utility::LogUtility>(2.0));
    return b.build();
}

TEST(Exhaustive, FindsFeasibleOptimum) {
    const auto spec = microProblem();
    const auto result = exhaustive_search(spec, ExhaustiveOptions{32, 10'000'000});
    EXPECT_GT(result.best_utility, 0.0);
    EXPECT_TRUE(model::check_feasibility(spec, result.best).feasible());
    EXPECT_GT(result.steps_taken, 0u);
}

TEST(Exhaustive, ThrowsWhenSpaceTooLarge) {
    const auto spec = microProblem();
    EXPECT_THROW((void)exhaustive_search(spec, ExhaustiveOptions{32, 100}),
                 std::invalid_argument);
}

TEST(Exhaustive, FinerGridNeverWorse) {
    const auto spec = microProblem();
    const auto coarse = exhaustive_search(spec, ExhaustiveOptions{4, 10'000'000});
    const auto fine = exhaustive_search(spec, ExhaustiveOptions{24, 10'000'000});
    EXPECT_GE(fine.best_utility, coarse.best_utility - 1e-9);
}

TEST(Exhaustive, LrgpWithinTenPercentOfOptimum) {
    // The paper could not compute ground truth for its workloads; on a
    // micro instance we can.  LRGP is a heuristic without an optimality
    // proof, but it should land close to the dense-grid optimum.
    const auto spec = microProblem();
    const auto optimum = exhaustive_search(spec, ExhaustiveOptions{64, 40'000'000});

    core::LrgpOptimizer opt(spec);
    opt.run(200);
    // The grid optimum is itself approximate (rates are quantized), so a
    // continuous-rate solution may slightly beat it.
    EXPECT_LE(opt.currentUtility(), 1.02 * optimum.best_utility);
    EXPECT_GE(opt.currentUtility(), 0.90 * optimum.best_utility);
}

TEST(Exhaustive, AnnealingApproachesOptimumOnMicroProblem) {
    const auto spec = microProblem();
    const auto optimum = exhaustive_search(spec, ExhaustiveOptions{32, 10'000'000});
    baseline::AnnealOptions options;
    options.max_steps = 200'000;
    options.rate_step_fraction = 0.25;
    options.population_step_fraction = 0.5;
    const auto sa = baseline::simulated_annealing(spec, options);
    EXPECT_GE(sa.best_utility, 0.9 * optimum.best_utility);
    // SA's rates are continuous, so it may edge past the quantized grid.
    EXPECT_LE(sa.best_utility, 1.05 * optimum.best_utility);
}

}  // namespace
