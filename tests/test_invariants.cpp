// Property-based correctness harness: LRGP invariants checked over a
// large family of seeded random workloads, plus a differential oracle
// that runs the same problems through all three engines (serial,
// parallel, synchronous distributed) and requires agreement.
//
// These tests are registered under the ctest label `property` so CI can
// run them separately (including under sanitizers).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dist/dist_lrgp.hpp"
#include "lrgp/greedy_allocator.hpp"
#include "lrgp/optimizer.hpp"
#include "lrgp/parallel_engine.hpp"
#include "model/allocation.hpp"
#include "model/analysis.hpp"
#include "workload/random_workload.hpp"

namespace lrgp {
namespace {

constexpr int kPropertySeeds = 200;     ///< random problems per property
constexpr int kDifferentialSeeds = 25;  ///< problems for the 3-engine oracle
constexpr int kIterations = 40;         ///< LRGP iterations per problem

/// Varies every generator knob with the seed so the 200 problems cover
/// utility shapes, sizes, and (every fourth seed) a shared bottleneck
/// link that exercises link pricing.
workload::RandomWorkloadOptions options_for_seed(std::uint32_t seed) {
    workload::RandomWorkloadOptions opt;
    opt.seed = seed;
    switch (seed % 4) {
        case 0: opt.shape = workload::UtilityShape::kLog; break;
        case 1: opt.shape = workload::UtilityShape::kPow025; break;
        case 2: opt.shape = workload::UtilityShape::kPow05; break;
        default: opt.shape = workload::UtilityShape::kPow075; break;
    }
    opt.max_flows = 3 + static_cast<int>(seed % 6);
    opt.max_cnodes = 2 + static_cast<int>(seed % 5);
    opt.link_bottleneck_probability = (seed % 4 == 0) ? 1.0 : 0.0;
    return opt;
}

/// All the per-allocation invariants that must hold after ANY number of
/// iterations (they are maintained by construction, not by convergence).
void check_allocation_invariants(const model::ProblemSpec& spec,
                                 const core::IterationRecord& record,
                                 std::uint32_t seed) {
    const model::Allocation& alloc = record.allocation;
    SCOPED_TRACE("seed " + std::to_string(seed));

    // Rates respect their boxes (Eq. 2); inactive flows are pinned to 0.
    for (const model::FlowSpec& f : spec.flows()) {
        const double r = alloc.rates.at(f.id.index());
        if (!f.active) {
            EXPECT_EQ(r, 0.0) << "inactive flow " << f.name;
            continue;
        }
        EXPECT_GE(r, f.rate_min) << "flow " << f.name;
        EXPECT_LE(r, f.rate_max) << "flow " << f.name;
    }

    // Populations are integers in [0, n_max] (Eq. 3).
    for (const model::ClassSpec& c : spec.classes()) {
        const int n = alloc.populations.at(c.id.index());
        EXPECT_GE(n, 0) << "class " << c.name;
        EXPECT_LE(n, c.max_consumers) << "class " << c.name;
    }

    // Node capacity (Eq. 5) holds on every iteration: the greedy
    // allocator only admits consumers into the remaining capacity.
    // The epsilon covers accumulated rounding in the usage recompute.
    for (const model::NodeSpec& b : spec.nodes()) {
        const double usage = model::node_usage(spec, alloc, b.id);
        EXPECT_LE(usage, b.capacity * (1.0 + 1e-9) + 1e-9) << "node " << b.name;
    }

    // The reported utility is exactly the model's Eq. 1 recomputation —
    // bitwise, not approximately: every engine promises this.
    EXPECT_EQ(record.utility, model::total_utility(spec, alloc));
}

/// Greedy post-conditions at the final rates: the published populations
/// must be exactly what a fresh allocation run produces, admission must
/// follow the benefit-cost ranking, and no unmet class may still fit.
void check_greedy_invariants(const model::ProblemSpec& spec,
                             const core::IterationRecord& record,
                             std::uint32_t seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const core::GreedyConsumerAllocator greedy(spec);
    for (const model::NodeSpec& b : spec.nodes()) {
        if (spec.classesAtNode(b.id).empty()) continue;
        const core::NodeAllocationResult fresh =
            greedy.allocate(b.id, record.allocation.rates);

        // Oracle equality: the engine's populations at this node are the
        // greedy allocation of its final rates, exactly.
        for (const auto& [cls, n] : fresh.populations)
            EXPECT_EQ(record.allocation.populations.at(cls.index()), n)
                << "node " << b.name << " class " << spec.consumerClass(cls).name;

        const std::vector<core::BenefitCost> ranked =
            greedy.benefitCosts(b.id, record.allocation.rates);
        const double remaining = b.capacity - fresh.used;

        // Ranked-prefix admission: every class ranked before the first
        // unmet class is fully admitted.
        bool met_prefix = true;
        for (const core::BenefitCost& bc : ranked) {
            const model::ClassSpec& c = spec.consumerClass(bc.cls);
            const int n = record.allocation.populations.at(bc.cls.index());
            if (n < c.max_consumers) {
                if (met_prefix && fresh.best_unmet_bc) {
                    EXPECT_EQ(*fresh.best_unmet_bc, bc.ratio)
                        << "first unmet class must define BC(b,t) at node " << b.name;
                }
                met_prefix = false;
                // Greedy maximality: an unmet class must no longer fit.
                EXPECT_LT(remaining, bc.unit_cost * (1.0 + 1e-9) + 1e-9)
                    << "unmet class " << c.name << " still fits at node " << b.name;
            }
        }
    }
}

TEST(PropertyInvariants, RandomWorkloadsSatisfyAllInvariants) {
    for (std::uint32_t seed = 1; seed <= kPropertySeeds; ++seed) {
        const model::ProblemSpec spec =
            workload::make_random_workload(options_for_seed(seed));
        core::LrgpOptimizer optimizer(spec);
        for (int i = 0; i < kIterations; ++i) {
            const core::IterationRecord& record = optimizer.step();
            // Checking every iteration would be O(iters * spec); the
            // transient first steps and the settled tail catch the
            // interesting violations.
            if (i < 3 || i == kIterations - 1)
                check_allocation_invariants(spec, record, seed);
        }
        check_greedy_invariants(spec, optimizer.step(), seed);
    }
}

TEST(PropertyInvariants, DynamicChangesPreserveInvariants) {
    // Flow removal / restore and capacity changes must never produce an
    // infeasible intermediate allocation.
    for (std::uint32_t seed = 1; seed <= 40; ++seed) {
        const model::ProblemSpec spec =
            workload::make_random_workload(options_for_seed(seed));
        core::LrgpOptimizer optimizer(spec);
        optimizer.run(10);
        const model::FlowId victim = spec.flows().front().id;
        // The optimizer mutates its own copy of the problem, so the
        // invariants must be checked against optimizer.problem().
        optimizer.removeFlow(victim);
        check_allocation_invariants(optimizer.problem(), optimizer.step(), seed);
        optimizer.restoreFlow(victim);
        check_allocation_invariants(optimizer.problem(), optimizer.step(), seed);
        const model::NodeSpec& node = spec.nodes().back();
        optimizer.setNodeCapacity(node.id, node.capacity * 0.5);
        optimizer.step();
        check_allocation_invariants(optimizer.problem(), optimizer.step(), seed);
    }
}

TEST(PropertyInvariants, ParallelEngineInvariantsAndBitwiseParity) {
    // The compiled parallel engine — in both full and incremental mode —
    // satisfies the same invariants and is bitwise identical to the
    // serial optimizer on every trajectory.
    for (std::uint32_t seed = 1; seed <= 60; ++seed) {
        const model::ProblemSpec spec =
            workload::make_random_workload(options_for_seed(seed));
        core::LrgpOptimizer serial(spec);
        core::EngineConfig config;
        config.threads = (seed % 3) + 1;
        core::ParallelLrgpEngine engine(spec, {}, config);
        config.threads = ((seed + 1) % 3) + 1;
        config.incremental = true;
        core::ParallelLrgpEngine incremental(spec, {}, config);
        for (int i = 0; i < kIterations; ++i) {
            const core::IterationRecord& s = serial.step();
            const core::IterationRecord& p = engine.step();
            const core::IterationRecord& q = incremental.step();
            ASSERT_EQ(s.utility, p.utility) << "seed " << seed << " iter " << i;
            ASSERT_EQ(s.allocation.rates, p.allocation.rates) << "seed " << seed;
            ASSERT_EQ(s.allocation.populations, p.allocation.populations) << "seed " << seed;
            ASSERT_EQ(s.prices.node, p.prices.node) << "seed " << seed;
            ASSERT_EQ(s.prices.link, p.prices.link) << "seed " << seed;
            ASSERT_EQ(s.utility, q.utility) << "inc seed " << seed << " iter " << i;
            ASSERT_EQ(s.allocation.rates, q.allocation.rates) << "inc seed " << seed;
            ASSERT_EQ(s.allocation.populations, q.allocation.populations) << "inc seed " << seed;
            ASSERT_EQ(s.prices.node, q.prices.node) << "inc seed " << seed;
            ASSERT_EQ(s.prices.link, q.prices.link) << "inc seed " << seed;
        }
        check_allocation_invariants(spec, engine.step(), seed);
        check_allocation_invariants(spec, incremental.step(), seed);
    }
}

TEST(PropertyDifferential, ThreeEnginesAgreeOnSeededWorkloads) {
    // Differential oracle: the serial optimizer, the parallel engine
    // (full and incremental) and the lossless synchronous distributed
    // protocol implement the same iteration; their utility trajectories
    // must coincide.  Serial vs parallel is a bitwise contract; the
    // distributed protocol computes the same arithmetic from
    // message-carried state, so its per-round utilities match to
    // double-equality.
    for (std::uint32_t seed = 1; seed <= kDifferentialSeeds; ++seed) {
        workload::RandomWorkloadOptions opt = options_for_seed(seed);
        // Sync rounds cost sim events proportional to hops; keep the
        // differential instances moderate so 25 of them stay fast.
        opt.max_flows = std::min(opt.max_flows, 5);
        const model::ProblemSpec spec = workload::make_random_workload(opt);

        core::LrgpOptimizer serial(spec);
        serial.run(20);

        core::EngineConfig config;
        config.threads = 2;
        core::ParallelLrgpEngine parallel(spec, {}, config);
        parallel.run(20);

        config.incremental = true;
        core::ParallelLrgpEngine incremental(spec, {}, config);
        incremental.run(20);

        dist::DistLrgp distributed(spec, dist::DistOptions{});
        distributed.runRounds(20);

        const auto& st = serial.utilityTrace();
        const auto& pt = parallel.utilityTrace();
        const auto& it = incremental.utilityTrace();
        const auto& dt = distributed.utilityTrace();
        ASSERT_GE(dt.size(), 20u) << "seed " << seed;
        for (std::size_t i = 0; i < 20; ++i) {
            EXPECT_EQ(st[i], pt[i]) << "seed " << seed << " iter " << i;
            EXPECT_EQ(st[i], it[i]) << "seed " << seed << " iter " << i;
            EXPECT_DOUBLE_EQ(st[i], dt[i]) << "seed " << seed << " round " << i + 1;
        }
    }
}

}  // namespace
}  // namespace lrgp
