#include <gtest/gtest.h>

#include "lrgp/optimizer.hpp"
#include "model/analysis.hpp"
#include "test_helpers.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using lrgp::test::make_tiny_problem;

TEST(JainIndex, PerfectlyEvenIsOne) {
    EXPECT_DOUBLE_EQ(model::jain_index({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(JainIndex, SingleWinnerIsOneOverN) {
    EXPECT_NEAR(model::jain_index({10.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainIndex, EdgeCases) {
    EXPECT_DOUBLE_EQ(model::jain_index({}), 0.0);
    EXPECT_DOUBLE_EQ(model::jain_index({0.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(model::jain_index({7.0}), 1.0);
}

TEST(Summarize, CountsAdmissionBuckets) {
    const auto t = make_tiny_problem();
    auto alloc = model::Allocation::minimal(t.spec);
    alloc.rates[t.flow.index()] = 10.0;
    alloc.populations[t.gold.index()] = 8;   // full
    alloc.populations[t.pub.index()] = 5;    // partial
    const auto summary = model::summarize(t.spec, alloc);
    EXPECT_EQ(summary.classes_fully_admitted, 1);
    EXPECT_EQ(summary.classes_partially_admitted, 1);
    EXPECT_EQ(summary.classes_denied, 0);
    EXPECT_NEAR(summary.classes[t.gold.index()].admission_ratio, 1.0, 1e-12);
    EXPECT_NEAR(summary.classes[t.pub.index()].admission_ratio, 0.25, 1e-12);
}

TEST(Summarize, UtilityBreakdownSumsToTotal) {
    const auto spec = workload::make_base_workload();
    core::LrgpOptimizer opt(spec);
    opt.run(100);
    const auto summary = model::summarize(spec, opt.allocation());
    double sum = 0.0;
    for (const auto& s : summary.classes) sum += s.aggregate_utility;
    EXPECT_NEAR(sum, summary.total_utility, 1e-6 * summary.total_utility);
    EXPECT_NEAR(summary.total_utility, opt.currentUtility(), 1e-9);
}

TEST(Summarize, UtilizationMatchesEvaluators) {
    const auto spec = workload::make_base_workload();
    core::LrgpOptimizer opt(spec);
    opt.run(100);
    const auto summary = model::summarize(spec, opt.allocation());
    ASSERT_EQ(summary.node_utilization.size(), spec.nodeCount());
    for (const auto& node : spec.nodes()) {
        const double expected =
            model::node_usage(spec, opt.allocation(), node.id) / node.capacity;
        EXPECT_NEAR(summary.node_utilization[node.id.index()], expected, 1e-12);
        EXPECT_LE(summary.node_utilization[node.id.index()], 1.0 + 1e-9);
    }
    // Consumer nodes run hot at the optimum; the producer node is idle.
    const auto s0 = workload::find_node(spec, "r0_S0");
    EXPECT_GT(summary.node_utilization[s0.index()], 0.95);
}

TEST(Summarize, InactiveFlowClassesAreDenied) {
    auto t = make_tiny_problem();
    auto alloc = model::Allocation::minimal(t.spec);
    alloc.rates[t.flow.index()] = 10.0;
    alloc.populations[t.gold.index()] = 4;
    t.spec.setFlowActive(t.flow, false);
    alloc.rates[t.flow.index()] = 0.0;
    alloc.populations[t.gold.index()] = 0;
    const auto summary = model::summarize(t.spec, alloc);
    EXPECT_EQ(summary.classes_denied, 2);
    EXPECT_DOUBLE_EQ(summary.total_utility, 0.0);
}

TEST(Summarize, FairnessReflectsRankSkew) {
    // The base workload concentrates utility in high-rank classes, so
    // fairness is far from 1 but nonzero.
    const auto spec = workload::make_base_workload();
    core::LrgpOptimizer opt(spec);
    opt.run(100);
    const auto summary = model::summarize(spec, opt.allocation());
    EXPECT_GT(summary.jain_fairness, 0.05);
    EXPECT_LT(summary.jain_fairness, 0.9);
}

}  // namespace
