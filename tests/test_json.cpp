#include <gtest/gtest.h>

#include "io/json.hpp"

namespace {

using namespace lrgp::io;

TEST(Json, PrimitivesRoundTrip) {
    EXPECT_EQ(parse_json("null").isNull(), true);
    EXPECT_EQ(parse_json("true").asBool(), true);
    EXPECT_EQ(parse_json("false").asBool(), false);
    EXPECT_DOUBLE_EQ(parse_json("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parse_json("-3.5e2").asNumber(), -350.0);
    EXPECT_EQ(parse_json("\"hi\"").asString(), "hi");
}

TEST(Json, DumpPrimitives) {
    EXPECT_EQ(JsonValue(nullptr).dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(3.0).dump(), "3");
    EXPECT_EQ(JsonValue("x").dump(), "\"x\"");
}

TEST(Json, StringEscapes) {
    const JsonValue v(std::string("a\"b\\c\nd\te"));
    const std::string dumped = v.dump();
    EXPECT_EQ(parse_json(dumped).asString(), "a\"b\\c\nd\te");
}

TEST(Json, UnicodeEscapeAscii) {
    EXPECT_EQ(parse_json("\"\\u0041\"").asString(), "A");
    EXPECT_THROW((void)parse_json("\"\\u00e9\""), std::runtime_error);  // non-ASCII unsupported
}

TEST(Json, ArraysAndObjects) {
    const JsonValue v = parse_json(R"({"a": [1, 2, 3], "b": {"c": true}})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("a").asArray().size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("a").asArray()[1].asNumber(), 2.0);
    EXPECT_TRUE(v.at("b").at("c").asBool());
    EXPECT_TRUE(v.has("a"));
    EXPECT_FALSE(v.has("zz"));
}

TEST(Json, EmptyContainers) {
    EXPECT_TRUE(parse_json("[]").asArray().empty());
    EXPECT_TRUE(parse_json("{}").asObject().empty());
    EXPECT_EQ(JsonValue(JsonArray{}).dump(), "[]");
    EXPECT_EQ(JsonValue(JsonObject{}).dump(), "{}");
}

TEST(Json, NestedRoundTripCompactAndPretty) {
    JsonObject inner;
    inner.emplace("x", 1.5);
    inner.emplace("y", "str,with\"stuff");
    JsonArray arr;
    arr.emplace_back(JsonValue(std::move(inner)));
    arr.emplace_back(false);
    arr.emplace_back(nullptr);
    JsonObject root;
    root.emplace("items", std::move(arr));
    const JsonValue original{std::move(root)};

    for (bool pretty : {false, true}) {
        const JsonValue reparsed = parse_json(original.dump(pretty));
        EXPECT_DOUBLE_EQ(reparsed.at("items").asArray()[0].at("x").asNumber(), 1.5);
        EXPECT_EQ(reparsed.at("items").asArray()[0].at("y").asString(), "str,with\"stuff");
        EXPECT_TRUE(reparsed.at("items").asArray()[2].isNull());
    }
}

TEST(Json, NumberPrecisionPreserved) {
    const double tricky = 0.1 + 0.2;  // 0.30000000000000004
    const JsonValue v(tricky);
    EXPECT_DOUBLE_EQ(parse_json(v.dump()).asNumber(), tricky);
}

TEST(Json, ParseErrors) {
    EXPECT_THROW((void)parse_json(""), std::runtime_error);
    EXPECT_THROW((void)parse_json("{"), std::runtime_error);
    EXPECT_THROW((void)parse_json("[1,]"), std::runtime_error);
    EXPECT_THROW((void)parse_json("tru"), std::runtime_error);
    EXPECT_THROW((void)parse_json("\"unterminated"), std::runtime_error);
    EXPECT_THROW((void)parse_json("{\"a\":1} extra"), std::runtime_error);
    EXPECT_THROW((void)parse_json("-"), std::runtime_error);
    EXPECT_THROW((void)parse_json("01x"), std::runtime_error);
}

TEST(Json, TypeMismatchThrows) {
    const JsonValue v = parse_json("[1]");
    EXPECT_THROW((void)v.asObject(), std::runtime_error);
    EXPECT_THROW((void)v.asString(), std::runtime_error);
    EXPECT_THROW((void)v.at("k"), std::runtime_error);
    const JsonValue obj = parse_json("{}");
    EXPECT_THROW((void)obj.at("missing"), std::runtime_error);
}

TEST(Json, WhitespaceTolerated) {
    const JsonValue v = parse_json("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ");
    EXPECT_EQ(v.at("a").asArray().size(), 2u);
}

TEST(Json, RejectsNonFiniteOnDump) {
    EXPECT_THROW((void)JsonValue(std::numeric_limits<double>::infinity()).dump(),
                 std::runtime_error);
}

}  // namespace
