// Dynamic-workload behaviour of the optimizer: consumers arriving and
// leaving (n^max changes), warm-started re-optimization, and the
// asynchronous protocol under message loss (Section 3.5's tolerance
// claim).
#include <gtest/gtest.h>

#include "dist/dist_lrgp.hpp"
#include "lrgp/optimizer.hpp"
#include "test_helpers.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;

TEST(Dynamics, GrowingPopulationCeilingRaisesUtility) {
    const auto t = lrgp::test::make_tiny_problem();
    core::LrgpOptimizer opt(t.spec);
    opt.run(100);
    const double before = opt.currentUtility();
    // 20 more gold consumers arrive.
    opt.setClassMaxConsumers(t.gold, 28);
    opt.run(100);
    EXPECT_GT(opt.currentUtility(), before * 1.05);
    EXPECT_TRUE(model::check_feasibility(opt.problem(), opt.allocation()).feasible());
}

TEST(Dynamics, ShrinkingCeilingEvictsImmediately) {
    const auto t = lrgp::test::make_tiny_problem();
    core::LrgpOptimizer opt(t.spec);
    opt.run(100);
    ASSERT_GE(opt.allocation().populations[t.gold.index()], 7);
    opt.setClassMaxConsumers(t.gold, 2);
    // Even before the next iteration the allocation is within bounds.
    EXPECT_LE(opt.allocation().populations[t.gold.index()], 2);
    opt.run(50);
    EXPECT_LE(opt.allocation().populations[t.gold.index()], 2);
    EXPECT_TRUE(model::check_feasibility(opt.problem(), opt.allocation()).feasible());
}

TEST(Dynamics, CeilingValidation) {
    const auto t = lrgp::test::make_tiny_problem();
    core::LrgpOptimizer opt(t.spec);
    EXPECT_THROW(opt.setClassMaxConsumers(t.gold, -1), std::invalid_argument);
}

TEST(Dynamics, WarmStartReconvergesFasterAfterSmallChange) {
    // Converge, perturb one node's capacity by 10%, and compare cold vs
    // warm re-optimization on the perturbed problem.
    core::LrgpOptimizer first(workload::make_base_workload());
    first.run(150);
    const auto learned_prices = first.prices();
    const auto learned_populations = first.allocation().populations;

    auto perturbed = workload::make_base_workload();
    const auto s0 = workload::find_node(perturbed, "r0_S0");
    perturbed.setNodeCapacity(s0, perturbed.node(s0).capacity * 0.9);

    core::LrgpOptimizer cold(perturbed);
    const auto cold_conv = cold.runUntilConverged(400);

    core::LrgpOptimizer warm(perturbed);
    warm.warmStart(learned_prices, &learned_populations);
    const auto warm_conv = warm.runUntilConverged(400);

    ASSERT_TRUE(warm_conv.has_value());
    ASSERT_TRUE(cold_conv.has_value());
    EXPECT_LE(*warm_conv, *cold_conv);
    // Both land at essentially the same utility.
    EXPECT_NEAR(warm.currentUtility(), cold.currentUtility(),
                0.01 * cold.currentUtility());
}

TEST(Dynamics, WarmStartValidatesSizes) {
    core::LrgpOptimizer opt(workload::make_base_workload());
    core::PriceVector wrong = core::PriceVector::zeros(1, 0);
    EXPECT_THROW(opt.warmStart(wrong), std::invalid_argument);
    const auto t = lrgp::test::make_tiny_problem();
    core::LrgpOptimizer tiny(t.spec);
    std::vector<int> wrong_pops(99, 0);
    EXPECT_THROW(
        tiny.warmStart(core::PriceVector::zeros(t.spec.nodeCount(), 0), &wrong_pops),
        std::invalid_argument);
}

TEST(Dynamics, WarmStartClampsPopulationsToCeilings) {
    const auto t = lrgp::test::make_tiny_problem();
    core::LrgpOptimizer opt(t.spec);
    std::vector<int> oversized(t.spec.classCount(), 1000);  // above every n^max
    opt.warmStart(core::PriceVector::zeros(t.spec.nodeCount(), 0), &oversized);
    EXPECT_LE(opt.allocation().populations[t.gold.index()], 8);
    EXPECT_LE(opt.allocation().populations[t.pub.index()], 20);
}

TEST(MessageLoss, AsyncToleratesTenPercentLoss) {
    const auto spec = workload::make_base_workload();
    core::LrgpOptimizer central(spec);
    central.run(150);

    dist::DistOptions options;
    options.synchronous = false;
    options.message_loss_probability = 0.10;
    options.price_window = 5;  // averaging smooths over the gaps
    dist::DistLrgp d(spec, options);
    d.runFor(15.0);

    EXPECT_GT(d.messagesLost(), 0u);
    EXPECT_NEAR(d.currentUtility(), central.currentUtility(),
                0.10 * central.currentUtility());
    EXPECT_TRUE(model::check_feasibility(spec, d.snapshot()).feasible());
}

TEST(MessageLoss, LossRateMatchesConfiguration) {
    const auto spec = workload::make_base_workload();
    dist::DistOptions options;
    options.synchronous = false;
    options.message_loss_probability = 0.25;
    dist::DistLrgp d(spec, options);
    d.runFor(10.0);
    const double observed =
        static_cast<double>(d.messagesLost()) / static_cast<double>(d.messagesSent());
    EXPECT_NEAR(observed, 0.25, 0.05);
}

TEST(MessageLoss, RejectedInSyncMode) {
    const auto spec = workload::make_base_workload();
    dist::DistOptions options;
    options.message_loss_probability = 0.1;  // synchronous default
    EXPECT_THROW((dist::DistLrgp{spec, options}), std::invalid_argument);
    dist::DistOptions bad;
    bad.synchronous = false;
    bad.message_loss_probability = 1.0;
    EXPECT_THROW((dist::DistLrgp{spec, bad}), std::invalid_argument);
}

}  // namespace
