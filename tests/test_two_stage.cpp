#include <gtest/gtest.h>

#include "lrgp/two_stage.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;

class TwoStageShapeSweep : public ::testing::TestWithParam<workload::UtilityShape> {};

TEST_P(TwoStageShapeSweep, BothStagesConvergeAndStayClose) {
    core::TwoStageOptions options;
    options.max_iterations = 300;
    const auto result = core::two_stage_optimize(workload::make_base_workload(GetParam()), options);
    EXPECT_GT(result.stage_one_utility, 0.0);
    EXPECT_GT(result.stage_two_utility, 0.0);
    // The base workload routes tightly, so the two stages agree closely.
    EXPECT_NEAR(result.stage_two_utility, result.stage_one_utility,
                0.05 * result.stage_one_utility);
    EXPECT_GT(result.stage_one_iterations, 0);
    EXPECT_GT(result.stage_two_iterations, 0);
}

INSTANTIATE_TEST_SUITE_P(AllShapes, TwoStageShapeSweep,
                         ::testing::Values(workload::UtilityShape::kLog,
                                           workload::UtilityShape::kPow025,
                                           workload::UtilityShape::kPow05,
                                           workload::UtilityShape::kPow075));

TEST(TwoStage, AllocationSizedForOriginalProblem) {
    const auto spec = workload::make_base_workload();
    const auto result = core::two_stage_optimize(spec);
    EXPECT_EQ(result.allocation.rates.size(), spec.flowCount());
    EXPECT_EQ(result.allocation.populations.size(), spec.classCount());
}

TEST(TwoStage, RespectsCustomLrgpOptions) {
    core::TwoStageOptions options;
    options.lrgp.gamma = core::FixedGamma{0.1, 0.1};
    options.max_iterations = 150;
    const auto result = core::two_stage_optimize(workload::make_base_workload(), options);
    EXPECT_GT(result.stage_one_utility, 1.2e6);
}

}  // namespace
