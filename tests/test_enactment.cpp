#include <gtest/gtest.h>

#include "lrgp/enactment.hpp"
#include "lrgp/optimizer.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using core::EnactmentController;
using core::EnactmentOptions;

model::Allocation twoVarAllocation(double rate, int population) {
    model::Allocation a;
    a.rates = {rate};
    a.populations = {population};
    return a;
}

TEST(Enactment, FirstOfferAlwaysEnacts) {
    int calls = 0;
    EnactmentController ctrl(EnactmentOptions{}, [&](const model::Allocation&) { ++calls; });
    EXPECT_TRUE(ctrl.offer(0.0, twoVarAllocation(10.0, 5)));
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(ctrl.enactments(), 1u);
}

TEST(Enactment, SmallChangesSuppressed) {
    int calls = 0;
    EnactmentOptions options;
    options.rate_deadband = 0.10;
    options.population_deadband = 5;
    options.min_interval = 1000.0;
    EnactmentController ctrl(options, [&](const model::Allocation&) { ++calls; });
    ctrl.offer(0.0, twoVarAllocation(100.0, 50));
    // 5% rate wiggle and +-3 consumers: inside the deadband.
    EXPECT_FALSE(ctrl.offer(1.0, twoVarAllocation(105.0, 53)));
    EXPECT_FALSE(ctrl.offer(2.0, twoVarAllocation(95.0, 47)));
    EXPECT_EQ(calls, 1);
}

TEST(Enactment, LargeRateChangeEnacts) {
    int calls = 0;
    EnactmentOptions options;
    options.rate_deadband = 0.10;
    options.min_interval = 1000.0;
    EnactmentController ctrl(options, [&](const model::Allocation&) { ++calls; });
    ctrl.offer(0.0, twoVarAllocation(100.0, 50));
    EXPECT_TRUE(ctrl.offer(1.0, twoVarAllocation(120.0, 50)));  // +20%
    EXPECT_EQ(calls, 2);
}

TEST(Enactment, LargePopulationChangeEnacts) {
    int calls = 0;
    EnactmentOptions options;
    options.population_deadband = 5;
    options.min_interval = 1000.0;
    EnactmentController ctrl(options, [&](const model::Allocation&) { ++calls; });
    ctrl.offer(0.0, twoVarAllocation(100.0, 50));
    EXPECT_TRUE(ctrl.offer(1.0, twoVarAllocation(100.0, 60)));  // +10 consumers
    EXPECT_EQ(calls, 2);
}

TEST(Enactment, PeriodicTimerForcesEnactment) {
    int calls = 0;
    EnactmentOptions options;
    options.rate_deadband = 0.50;   // huge deadband: changes never trigger
    options.population_deadband = 1000;
    options.min_interval = 60.0;
    EnactmentController ctrl(options, [&](const model::Allocation&) { ++calls; });
    ctrl.offer(0.0, twoVarAllocation(100.0, 50));
    EXPECT_FALSE(ctrl.offer(30.0, twoVarAllocation(101.0, 50)));
    EXPECT_TRUE(ctrl.offer(61.0, twoVarAllocation(101.0, 50)));  // period elapsed
    EXPECT_EQ(calls, 2);
}

TEST(Enactment, DifferentShapeAlwaysEnacts) {
    int calls = 0;
    EnactmentController ctrl(EnactmentOptions{}, [&](const model::Allocation&) { ++calls; });
    ctrl.offer(0.0, twoVarAllocation(100.0, 50));
    model::Allocation other;
    other.rates = {100.0, 200.0};
    other.populations = {50, 60};
    EXPECT_TRUE(ctrl.offer(1.0, other));
}

TEST(Enactment, Validation) {
    EXPECT_THROW(EnactmentController(EnactmentOptions{}, nullptr), std::invalid_argument);
    EnactmentOptions bad;
    bad.rate_deadband = -0.1;
    EXPECT_THROW(EnactmentController(bad, [](const model::Allocation&) {}),
                 std::invalid_argument);
}

TEST(Enactment, FirstOfferEnactsAtTimeZeroEvenWhenTrivial) {
    // t = 0 with an all-minimal allocation: nothing to compare against,
    // so the first offer must install the configuration unconditionally.
    int calls = 0;
    EnactmentOptions options;
    options.min_interval = 1e9;
    EnactmentController ctrl(options, [&](const model::Allocation&) { ++calls; });
    EXPECT_TRUE(ctrl.offer(0.0, twoVarAllocation(0.0, 0)));
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(ctrl.offers(), 1u);
    EXPECT_EQ(ctrl.suppressions(), 0u);
}

TEST(Enactment, DeadbandExactlyAtThresholdIsSuppressed) {
    // The comparisons are strict: a change of *exactly* the deadband
    // stays suppressed; one epsilon beyond it fires.
    int calls = 0;
    EnactmentOptions options;
    options.rate_deadband = 0.10;
    options.population_deadband = 5;
    options.min_interval = 1e9;
    EnactmentController ctrl(options, [&](const model::Allocation&) { ++calls; });
    ctrl.offer(0.0, twoVarAllocation(100.0, 50));
    EXPECT_FALSE(ctrl.offer(1.0, twoVarAllocation(110.0, 50)));  // exactly +10%
    EXPECT_FALSE(ctrl.offer(2.0, twoVarAllocation(100.0, 55)));  // exactly +5
    EXPECT_FALSE(ctrl.significantlyDifferent(twoVarAllocation(110.0, 55)));
    EXPECT_TRUE(ctrl.offer(3.0, twoVarAllocation(110.2, 50)));   // just beyond
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(ctrl.offers(), 4u);
    EXPECT_EQ(ctrl.suppressions(), 2u);
}

TEST(Enactment, PeriodicTriggerFiresWithUnchangedAllocationAndResetsTimer) {
    // "Enact once every few minutes" refreshes the live configuration
    // even when the allocation is bit-for-bit unchanged — and each
    // periodic enactment restarts the interval clock.
    int calls = 0;
    EnactmentOptions options;
    options.rate_deadband = 0.50;
    options.population_deadband = 1000;
    options.min_interval = 10.0;
    EnactmentController ctrl(options, [&](const model::Allocation&) { ++calls; });
    const model::Allocation same = twoVarAllocation(100.0, 50);
    ctrl.offer(0.0, same);
    EXPECT_FALSE(ctrl.offer(9.0, same));
    EXPECT_TRUE(ctrl.offer(10.0, same));   // interval elapsed, unchanged
    EXPECT_FALSE(ctrl.offer(19.0, same));  // timer restarted at t=10
    EXPECT_TRUE(ctrl.offer(20.0, same));
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(ctrl.offers(), 5u);
    EXPECT_EQ(ctrl.suppressions(), 2u);
}

TEST(Enactment, SuppressesChurnDuringConvergence) {
    // Drive the controller from a real optimizer run: during the early
    // oscillation phase many iterations differ, but after convergence the
    // deadbands suppress all enactments — the "do not disrupt consumers"
    // behaviour the paper asks for.
    core::LrgpOptimizer opt(workload::make_base_workload());
    int enactments = 0;
    EnactmentOptions options;
    options.rate_deadband = 0.10;
    options.population_deadband = 25;
    options.min_interval = 1e9;  // disable the periodic path
    EnactmentController ctrl(options, [&](const model::Allocation&) { ++enactments; });

    for (int i = 0; i < 200; ++i) {
        const auto& rec = opt.step();
        ctrl.offer(static_cast<double>(i), rec.allocation);
    }
    const int during_convergence = enactments;
    for (int i = 200; i < 400; ++i) {
        const auto& rec = opt.step();
        ctrl.offer(static_cast<double>(i), rec.allocation);
    }
    EXPECT_GT(during_convergence, 1);
    // Converged phase: residual churn is an order of magnitude lower
    // than the convergence phase (adaptive gamma keeps a tiny wobble, so
    // an occasional enactment can still fire).
    EXPECT_LE(enactments - during_convergence, 3);
    // And the last enacted allocation is still near-optimal.
    ASSERT_TRUE(ctrl.lastEnacted().has_value());
    const double enacted_utility =
        model::total_utility(opt.problem(), *ctrl.lastEnacted());
    EXPECT_GT(enacted_utility, 0.98 * opt.currentUtility());
}

}  // namespace
