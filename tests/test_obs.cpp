#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "dist/dist_lrgp.hpp"
#include "lrgp/optimizer.hpp"
#include "lrgp/parallel_engine.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/tracer.hpp"
#include "test_helpers.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;

TEST(ObsRegistry, CounterRegisterOrReturn) {
    obs::Registry reg;
    obs::Counter& a = reg.counter("events_total", "help");
    obs::Counter& b = reg.counter("events_total");
    EXPECT_EQ(&a, &b);  // same (name, labels) -> same instrument
    a.add(3);
    b.add(2);
    EXPECT_EQ(reg.counterValue("events_total"), 5u);
    EXPECT_EQ(reg.size(), 1u);

    // Different labels are a different series.
    obs::Counter& c = reg.counter("events_total", "", {{"kind", "x"}});
    EXPECT_NE(&a, &c);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.counterValue("events_total", {{"kind", "x"}}), 0u);
}

TEST(ObsRegistry, FindDoesNotRegister) {
    obs::Registry reg;
    EXPECT_EQ(reg.findCounter("nope"), nullptr);
    EXPECT_EQ(reg.findGauge("nope"), nullptr);
    EXPECT_EQ(reg.findHistogram("nope"), nullptr);
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_EQ(reg.counterValue("nope"), 0u);

    reg.gauge("level").set(2.5);
    ASSERT_NE(reg.findGauge("level"), nullptr);
    EXPECT_DOUBLE_EQ(reg.findGauge("level")->value(), 2.5);
}

TEST(ObsRegistry, InvalidMetricNamesThrow) {
    obs::Registry reg;
    EXPECT_THROW(reg.counter("1starts_with_digit"), std::invalid_argument);
    EXPECT_THROW(reg.counter("has space"), std::invalid_argument);
    EXPECT_THROW(reg.counter(""), std::invalid_argument);
    EXPECT_NO_THROW(reg.counter("ok_name:with_colon_0"));
}

TEST(ObsRegistry, HistogramBucketsAndReregistration) {
    obs::Registry reg;
    obs::Histogram& h = reg.histogram("latency_seconds", {0.1, 1.0, 10.0});
    h.observe(0.05);   // bucket 0
    h.observe(0.5);    // bucket 1
    h.observe(0.5);    // bucket 1
    h.observe(100.0);  // +Inf bucket
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);  // +Inf
    EXPECT_EQ(h.count(), 4u);
    EXPECT_NEAR(h.sum(), 101.05, 1e-12);

    // Re-registration returns the same histogram; different bounds throw.
    EXPECT_EQ(&reg.histogram("latency_seconds", {0.1, 1.0, 10.0}), &h);
    EXPECT_THROW(reg.histogram("latency_seconds", {1.0, 2.0}), std::invalid_argument);
}

TEST(ObsRegistry, PrometheusTextShape) {
    obs::Registry reg;
    reg.counter("msgs_total", "messages", {{"kind", "rate"}}).add(7);
    reg.counter("msgs_total", "messages", {{"kind", "report"}}).add(1);
    reg.gauge("utility", "objective").set(3.5);
    reg.histogram("t_seconds", {0.5, 2.0}, "timing").observe(1.0);

    const std::string text = reg.prometheusText();
    // One HELP/TYPE pair per family even with two series.
    EXPECT_EQ(text.find("# HELP msgs_total messages\n"),
              text.rfind("# HELP msgs_total messages\n"));
    EXPECT_NE(text.find("# TYPE msgs_total counter"), std::string::npos);
    EXPECT_NE(text.find("msgs_total{kind=\"rate\"} 7"), std::string::npos);
    EXPECT_NE(text.find("msgs_total{kind=\"report\"} 1"), std::string::npos);
    EXPECT_NE(text.find("# TYPE utility gauge"), std::string::npos);
    EXPECT_NE(text.find("utility 3.5"), std::string::npos);
    // Histogram renders cumulative buckets plus +Inf, sum and count.
    EXPECT_NE(text.find("t_seconds_bucket{le=\"0.5\"} 0"), std::string::npos);
    EXPECT_NE(text.find("t_seconds_bucket{le=\"2\"} 1"), std::string::npos);
    EXPECT_NE(text.find("t_seconds_bucket{le=\"+Inf\"} 1"), std::string::npos);
    EXPECT_NE(text.find("t_seconds_sum 1"), std::string::npos);
    EXPECT_NE(text.find("t_seconds_count 1"), std::string::npos);
}

TEST(ObsTracer, SamplingGateAndBounds) {
    obs::TracerOptions opt;
    opt.sample_every = 3;
    opt.max_events = 4;
    obs::IterationTracer tracer(opt);

    // Iteration 1 is always sampled (so short runs still trace), then
    // every 3rd iteration.
    tracer.beginIteration(1);
    EXPECT_TRUE(tracer.sampling());
    tracer.complete("it1", "t", 0, 0.0, 1.0);
    tracer.beginIteration(2);
    EXPECT_FALSE(tracer.sampling());
    tracer.complete("it2", "t", 0, 1.0, 1.0);  // discarded, not even counted
    tracer.beginIteration(3);
    EXPECT_TRUE(tracer.sampling());
    tracer.instant("it3", "t", 0, 2.0);
    ASSERT_EQ(tracer.events().size(), 2u);
    EXPECT_EQ(tracer.events()[0].name, "it1");
    EXPECT_EQ(tracer.events()[1].name, "it3");
    EXPECT_EQ(tracer.droppedEvents(), 0u);

    // The capacity gate counts (not stores) the overflow.
    tracer.counterSample("c", 0, 3.0, 1.0);
    tracer.counterSample("c", 0, 4.0, 2.0);
    tracer.counterSample("c", 0, 5.0, 3.0);
    EXPECT_EQ(tracer.events().size(), 4u);
    EXPECT_EQ(tracer.droppedEvents(), 1u);
}

TEST(ObsTracer, ChromeTraceJsonShape) {
    obs::IterationTracer tracer;
    tracer.complete("phase", "lrgp", 2, 10.0, 5.5, {{"iteration", 3.0}});
    tracer.instant("crash", "dist", 1, 20.0, {{"kind", std::string("node")}});
    tracer.counterSample("utility", 0, 30.0, 42.0);

    const std::string json = tracer.chromeTraceText();
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("{\"name\":\"phase\",\"cat\":\"lrgp\",\"ph\":\"X\",\"pid\":1,"
                        "\"tid\":2,\"ts\":10,\"dur\":5.5,\"args\":{\"iteration\":3}}"),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"kind\":\"node\"}"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"value\":42}"), std::string::npos);
}

#ifdef LRGP_OBS

TEST(ObsIntegration, SerialOptimizerCountsIterations) {
    const auto spec = workload::make_base_workload();
    core::LrgpOptimizer optimizer(spec);
    obs::Registry reg;
    obs::IterationTracer tracer;
    optimizer.attachObservability(&reg, &tracer);
    const auto& record = optimizer.run(10);

    EXPECT_EQ(reg.counterValue("lrgp_iterations_total"), 10u);
    EXPECT_GE(reg.counterValue("lrgp_rate_solves_total"), 10u * spec.flowCount());
    ASSERT_NE(reg.findGauge("lrgp_utility"), nullptr);
    EXPECT_EQ(reg.findGauge("lrgp_utility")->value(), record.utility);
    ASSERT_NE(reg.findHistogram("lrgp_iteration_seconds"), nullptr);
    EXPECT_EQ(reg.findHistogram("lrgp_iteration_seconds")->count(), 10u);
    // Method-breakdown counters add up to the total.
    const std::uint64_t by_method =
        reg.counterValue("rate_solves_by_method_total", {{"method", "closed_form"}}) +
        reg.counterValue("rate_solves_by_method_total", {{"method", "numeric"}}) +
        reg.counterValue("rate_solves_by_method_total", {{"method", "bound"}});
    EXPECT_EQ(by_method, reg.counterValue("lrgp_rate_solves_total"));

    // Per-iteration spans made it into the trace.
    std::size_t iteration_spans = 0;
    for (const auto& e : tracer.events())
        if (e.name == "iteration" && e.ph == 'X') ++iteration_spans;
    EXPECT_EQ(iteration_spans, 10u);

    // Detaching stops collection.
    optimizer.attachObservability(nullptr, nullptr);
    optimizer.step();
    EXPECT_EQ(reg.counterValue("lrgp_iterations_total"), 10u);
}

TEST(ObsIntegration, ParallelEngineStaysBitwiseWithObsAttached) {
    const auto spec = workload::make_base_workload();
    core::LrgpOptimizer serial(spec);
    core::EngineConfig config;
    config.threads = 3;
    core::ParallelLrgpEngine engine(spec, {}, config);
    obs::Registry reg;
    engine.attachObservability(&reg, nullptr);
    for (int i = 0; i < 15; ++i) {
        const auto& s = serial.step();
        const auto& p = engine.step();
        ASSERT_EQ(s.utility, p.utility) << "iter " << i;
        ASSERT_EQ(s.allocation.rates, p.allocation.rates);
        ASSERT_EQ(s.allocation.populations, p.allocation.populations);
    }
    EXPECT_EQ(reg.counterValue("lrgp_iterations_total"), 15u);
    EXPECT_GE(reg.counterValue("lrgp_pool_jobs_total"), 1u);
    const obs::Histogram* fanout = reg.findHistogram("lrgp_pool_fanout_chunks");
    ASSERT_NE(fanout, nullptr);
    EXPECT_EQ(fanout->count(), reg.counterValue("lrgp_pool_jobs_total"));
}

TEST(ObsIntegration, DistLrgpCountsMessagesAndRounds) {
    const auto spec = workload::make_base_workload();
    dist::DistLrgp driver(spec, dist::DistOptions{});
    obs::Registry reg;
    obs::IterationTracer tracer;
    driver.attachObservability(&reg, &tracer);
    driver.runRounds(5);

    const std::uint64_t sent =
        reg.counterValue("dist_messages_sent_total", {{"kind", "rate"}}) +
        reg.counterValue("dist_messages_sent_total", {{"kind", "node_report"}}) +
        reg.counterValue("dist_messages_sent_total", {{"kind", "link_report"}});
    EXPECT_EQ(sent, driver.messagesSent());
    // runRounds stops as soon as the target round completes at every
    // node; the tail of that round's reports may still be in flight, so
    // delivered trails sent by at most one round's worth of messages.
    const std::uint64_t delivered = reg.counterValue("dist_messages_delivered_total");
    EXPECT_LE(delivered, driver.messagesSent());
    EXPECT_GE(delivered, driver.messagesSent() - driver.messagesSent() / 5);
    EXPECT_EQ(reg.counterValue("dist_rounds_completed_total"),
              static_cast<std::uint64_t>(driver.completedRounds()));
    ASSERT_NE(reg.findGauge("dist_utility"), nullptr);
    EXPECT_EQ(reg.findGauge("dist_utility")->value(), driver.currentUtility());

    // Tracer timestamps are simulated time: strictly within the run.
    for (const auto& e : tracer.events()) {
        EXPECT_GE(e.ts_us, 0.0);
        EXPECT_LE(e.ts_us, driver.now() * 1e6 + 1e-6);
    }
}

#endif  // LRGP_OBS

}  // namespace
