#include <gtest/gtest.h>

#include <memory>

#include "model/problem.hpp"
#include "test_helpers.hpp"
#include "utility/utility_function.hpp"

namespace {

using namespace lrgp;
using lrgp::test::make_tiny_problem;

std::shared_ptr<const utility::UtilityFunction> logu(double w) {
    return std::make_shared<utility::LogUtility>(w);
}

TEST(Ids, DefaultIsInvalid) {
    model::FlowId id;
    EXPECT_FALSE(id.valid());
    EXPECT_TRUE(model::FlowId{3}.valid());
}

TEST(Ids, ComparisonAndHash) {
    model::NodeId a{1}, b{2}, a2{1};
    EXPECT_EQ(a, a2);
    EXPECT_NE(a, b);
    EXPECT_LT(a, b);
    EXPECT_EQ(std::hash<model::NodeId>{}(a), std::hash<model::NodeId>{}(a2));
}

TEST(ProblemBuilder, BuildsTinyProblem) {
    const auto t = make_tiny_problem();
    EXPECT_EQ(t.spec.nodeCount(), 2u);
    EXPECT_EQ(t.spec.flowCount(), 1u);
    EXPECT_EQ(t.spec.classCount(), 2u);
    EXPECT_EQ(t.spec.linkCount(), 0u);
    EXPECT_EQ(t.spec.flow(t.flow).name, "trades");
    EXPECT_DOUBLE_EQ(t.spec.node(t.cnode).capacity, 1000.0);
}

TEST(ProblemBuilder, DenseIdsMatchIndices) {
    const auto t = make_tiny_problem();
    for (std::size_t i = 0; i < t.spec.nodeCount(); ++i)
        EXPECT_EQ(t.spec.nodes()[i].id.index(), i);
    for (std::size_t i = 0; i < t.spec.classCount(); ++i)
        EXPECT_EQ(t.spec.classes()[i].id.index(), i);
}

TEST(ProblemBuilder, ReverseIndexes) {
    const auto t = make_tiny_problem();
    EXPECT_EQ(t.spec.classesOfFlow(t.flow).size(), 2u);
    EXPECT_EQ(t.spec.classesAtNode(t.cnode).size(), 2u);
    ASSERT_EQ(t.spec.flowsAtNode(t.cnode).size(), 1u);
    EXPECT_EQ(t.spec.flowsAtNode(t.cnode)[0], t.flow);
    // The producer node hosts no flows or classes.
    const model::NodeId producer{0};
    EXPECT_TRUE(t.spec.flowsAtNode(producer).empty());
    EXPECT_TRUE(t.spec.classesAtNode(producer).empty());
}

TEST(ProblemBuilder, CostLookups) {
    const auto t = make_tiny_problem();
    EXPECT_DOUBLE_EQ(t.spec.flowNodeCost(t.cnode, t.flow), 2.0);
    EXPECT_DOUBLE_EQ(t.spec.flowNodeCost(model::NodeId{0}, t.flow), 0.0);
    EXPECT_DOUBLE_EQ(t.spec.consumerClass(t.gold).consumer_cost, 5.0);
}

TEST(ProblemBuilder, RejectsBadNodes) {
    model::ProblemBuilder b;
    EXPECT_THROW(b.addNode("n", 0.0), std::invalid_argument);
    EXPECT_THROW(b.addNode("n", -5.0), std::invalid_argument);
}

TEST(ProblemBuilder, RejectsBadLinks) {
    model::ProblemBuilder b;
    const auto n1 = b.addNode("n1", 10.0);
    const auto n2 = b.addNode("n2", 10.0);
    EXPECT_THROW(b.addLink("l", n1, n1, 10.0), std::invalid_argument);
    EXPECT_THROW(b.addLink("l", n1, n2, 0.0), std::invalid_argument);
    EXPECT_THROW(b.addLink("l", n1, model::NodeId{99}, 10.0), std::invalid_argument);
}

TEST(ProblemBuilder, RejectsBadFlows) {
    model::ProblemBuilder b;
    const auto n = b.addNode("n", 10.0);
    EXPECT_THROW(b.addFlow("f", model::NodeId{99}, 1.0, 2.0), std::invalid_argument);
    EXPECT_THROW(b.addFlow("f", n, 0.0, 2.0), std::invalid_argument);
    EXPECT_THROW(b.addFlow("f", n, 3.0, 2.0), std::invalid_argument);
}

TEST(ProblemBuilder, RejectsDuplicateRouting) {
    model::ProblemBuilder b;
    const auto n = b.addNode("n", 10.0);
    const auto f = b.addFlow("f", n, 1.0, 2.0);
    b.routeThroughNode(f, n, 1.0);
    EXPECT_THROW(b.routeThroughNode(f, n, 1.0), std::invalid_argument);
}

TEST(ProblemBuilder, RejectsNegativeCosts) {
    model::ProblemBuilder b;
    const auto n = b.addNode("n", 10.0);
    const auto f = b.addFlow("f", n, 1.0, 2.0);
    EXPECT_THROW(b.routeThroughNode(f, n, -1.0), std::invalid_argument);
}

TEST(ProblemBuilder, RejectsBadClasses) {
    model::ProblemBuilder b;
    const auto n = b.addNode("n", 10.0);
    const auto f = b.addFlow("f", n, 1.0, 2.0);
    b.routeThroughNode(f, n, 1.0);
    EXPECT_THROW(b.addClass("c", f, n, -1, 1.0, logu(1.0)), std::invalid_argument);
    EXPECT_THROW(b.addClass("c", f, n, 1, 0.0, logu(1.0)), std::invalid_argument);
    EXPECT_THROW(b.addClass("c", f, n, 1, 1.0, nullptr), std::invalid_argument);
}

TEST(ProblemBuilder, BuildRejectsClassOffFlowRoute) {
    model::ProblemBuilder b;
    const auto n1 = b.addNode("n1", 10.0);
    const auto n2 = b.addNode("n2", 10.0);
    const auto f = b.addFlow("f", n1, 1.0, 2.0);
    b.routeThroughNode(f, n1, 1.0);
    b.addClass("c", f, n2, 1, 1.0, logu(1.0));  // n2 not on f's route
    EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(ProblemSpec, FlowActiveToggle) {
    auto t = make_tiny_problem();
    EXPECT_TRUE(t.spec.flowActive(t.flow));
    t.spec.setFlowActive(t.flow, false);
    EXPECT_FALSE(t.spec.flowActive(t.flow));
}

TEST(ProblemSpec, SetNodeCapacity) {
    auto t = make_tiny_problem();
    t.spec.setNodeCapacity(t.cnode, 555.0);
    EXPECT_DOUBLE_EQ(t.spec.node(t.cnode).capacity, 555.0);
    EXPECT_THROW(t.spec.setNodeCapacity(t.cnode, 0.0), std::invalid_argument);
}

}  // namespace
