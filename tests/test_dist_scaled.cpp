// Distributed-protocol coverage at scale and across utility shapes.
#include <gtest/gtest.h>

#include <algorithm>

#include "dist/dist_lrgp.hpp"
#include "lrgp/optimizer.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using dist::DistLrgp;
using dist::DistOptions;

TEST(DistScaled, SyncMatchesCentralizedOnScaledWorkload) {
    workload::WorkloadOptions options;
    options.flow_replicas = 2;
    options.cnode_replicas = 2;
    const auto spec = workload::make_scaled_workload(options);

    core::LrgpOptimizer central(spec);
    central.run(25);
    DistLrgp distributed(spec, DistOptions{});
    distributed.runRounds(25);
    for (std::size_t i = 0; i < 25; ++i)
        EXPECT_DOUBLE_EQ(distributed.utilityTrace()[i], central.utilityTrace()[i])
            << "round " << i + 1;
}

TEST(DistScaled, SyncMatchesCentralizedAcrossShapes) {
    for (auto shape : {workload::UtilityShape::kPow025, workload::UtilityShape::kPow075}) {
        const auto spec = workload::make_base_workload(shape);
        core::LrgpOptimizer central(spec);
        central.run(20);
        DistLrgp distributed(spec, DistOptions{});
        distributed.runRounds(20);
        for (std::size_t i = 0; i < 20; ++i)
            EXPECT_DOUBLE_EQ(distributed.utilityTrace()[i], central.utilityTrace()[i])
                << workload::shape_name(shape) << " round " << i + 1;
    }
}

TEST(DistScaled, MessageCountScalesWithTopology) {
    // Per round, every (flow, c-node) pair costs one rate message and one
    // report.  Doubling the c-nodes doubles the message volume.
    const auto base_spec = workload::make_base_workload();
    DistLrgp base_run(base_spec, DistOptions{});
    base_run.runRounds(10);

    workload::WorkloadOptions options;
    options.cnode_replicas = 2;
    DistLrgp scaled_run(workload::make_scaled_workload(options), DistOptions{});
    scaled_run.runRounds(10);

    const double ratio = static_cast<double>(scaled_run.messagesSent()) /
                         static_cast<double>(base_run.messagesSent());
    EXPECT_NEAR(ratio, 2.0, 0.15);
}

TEST(DistScaled, AsyncConvergesOnPowerShape) {
    const auto spec = workload::make_base_workload(workload::UtilityShape::kPow05);
    core::LrgpOptimizer central(spec);
    central.run(200);
    DistOptions options;
    options.synchronous = false;
    DistLrgp d(spec, options);
    d.runFor(15.0);
    EXPECT_NEAR(d.currentUtility(), central.currentUtility(),
                0.08 * central.currentUtility());
}

TEST(DistScaled, AsyncOvershootBoundedAndEventuallyFeasible) {
    // Asynchrony means a node's admissions can briefly pair with fresher
    // (higher) rates than the ones they were computed against, so strict
    // per-instant feasibility is not an async invariant (Section 3.5
    // tolerates stale values).  What must hold: transient node overuse
    // stays small, and the converged snapshot is feasible.
    const auto spec = workload::make_base_workload();
    DistOptions options;
    options.synchronous = false;
    DistLrgp d(spec, options);
    double worst_overuse = 0.0;
    for (int tick = 0; tick < 40; ++tick) {
        d.runFor(0.25);
        const auto snapshot = d.snapshot();
        for (const model::NodeSpec& b : spec.nodes()) {
            const double usage = model::node_usage(spec, snapshot, b.id);
            worst_overuse = std::max(worst_overuse, usage / b.capacity - 1.0);
        }
    }
    EXPECT_LT(worst_overuse, 0.25);
    // After the transient, the system settles into a feasible point.
    d.runFor(10.0);
    EXPECT_TRUE(model::check_feasibility(spec, d.snapshot(), 0.02).feasible());
}

}  // namespace
