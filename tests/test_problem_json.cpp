#include <gtest/gtest.h>

#include "io/problem_json.hpp"
#include "lrgp/optimizer.hpp"
#include "test_helpers.hpp"
#include "workload/random_workload.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;

void expectSpecsEquivalent(const model::ProblemSpec& a, const model::ProblemSpec& b) {
    ASSERT_EQ(a.nodeCount(), b.nodeCount());
    ASSERT_EQ(a.linkCount(), b.linkCount());
    ASSERT_EQ(a.flowCount(), b.flowCount());
    ASSERT_EQ(a.classCount(), b.classCount());
    for (std::size_t i = 0; i < a.nodeCount(); ++i) {
        EXPECT_EQ(a.nodes()[i].name, b.nodes()[i].name);
        EXPECT_DOUBLE_EQ(a.nodes()[i].capacity, b.nodes()[i].capacity);
    }
    for (std::size_t i = 0; i < a.flowCount(); ++i) {
        EXPECT_EQ(a.flows()[i].name, b.flows()[i].name);
        EXPECT_DOUBLE_EQ(a.flows()[i].rate_min, b.flows()[i].rate_min);
        EXPECT_DOUBLE_EQ(a.flows()[i].rate_max, b.flows()[i].rate_max);
        EXPECT_EQ(a.flows()[i].active, b.flows()[i].active);
        ASSERT_EQ(a.flows()[i].nodes.size(), b.flows()[i].nodes.size());
        for (std::size_t h = 0; h < a.flows()[i].nodes.size(); ++h) {
            EXPECT_EQ(a.flows()[i].nodes[h].node, b.flows()[i].nodes[h].node);
            EXPECT_DOUBLE_EQ(a.flows()[i].nodes[h].flow_node_cost,
                             b.flows()[i].nodes[h].flow_node_cost);
        }
    }
    for (std::size_t j = 0; j < a.classCount(); ++j) {
        EXPECT_EQ(a.classes()[j].name, b.classes()[j].name);
        EXPECT_EQ(a.classes()[j].max_consumers, b.classes()[j].max_consumers);
        EXPECT_DOUBLE_EQ(a.classes()[j].consumer_cost, b.classes()[j].consumer_cost);
        // Same utility values at sample points.
        for (double r : {10.0, 100.0, 900.0})
            EXPECT_DOUBLE_EQ(a.classes()[j].utility->value(r), b.classes()[j].utility->value(r));
    }
}

TEST(ProblemJson, BaseWorkloadRoundTrips) {
    const auto spec = workload::make_base_workload();
    const auto restored = io::problem_from_json_string(io::problem_to_json_string(spec));
    expectSpecsEquivalent(spec, restored);
}

TEST(ProblemJson, PowerShapeRoundTrips) {
    const auto spec = workload::make_base_workload(workload::UtilityShape::kPow075);
    const auto restored = io::problem_from_json_string(io::problem_to_json_string(spec));
    expectSpecsEquivalent(spec, restored);
}

TEST(ProblemJson, LinkedProblemRoundTrips) {
    const auto p = lrgp::test::make_linked_problem();
    const auto restored = io::problem_from_json_string(io::problem_to_json_string(p.spec));
    expectSpecsEquivalent(p.spec, restored);
    EXPECT_DOUBLE_EQ(restored.linkCost(p.shared_link, p.flow_a), 1.0);
}

TEST(ProblemJson, InactiveFlowPreserved) {
    auto spec = workload::make_base_workload();
    spec.setFlowActive(model::FlowId{2}, false);
    const auto restored = io::problem_from_json_string(io::problem_to_json_string(spec));
    EXPECT_FALSE(restored.flowActive(model::FlowId{2}));
}

TEST(ProblemJson, ScaledUtilityRoundTrips) {
    model::ProblemBuilder b;
    const auto n = b.addNode("N", 1e5);
    const auto f = b.addFlow("f", n, 1.0, 10.0);
    b.routeThroughNode(f, n, 1.0);
    b.addClass("c", f, n, 5, 1.0,
               std::make_shared<utility::ScaledUtility>(
                   2.5, std::make_shared<utility::PowerUtility>(4.0, 0.5)));
    const auto spec = b.build();
    const auto restored = io::problem_from_json_string(io::problem_to_json_string(spec));
    EXPECT_DOUBLE_EQ(restored.classes()[0].utility->value(4.0), 2.5 * 4.0 * 2.0);
}

TEST(ProblemJson, SigmoidUtilityRoundTrips) {
    model::ProblemBuilder b;
    const auto n = b.addNode("N", 1e5);
    const auto f = b.addFlow("f", n, 1.0, 10.0);
    b.routeThroughNode(f, n, 1.0);
    b.addClass("c", f, n, 5, 1.0, std::make_shared<utility::SigmoidUtility>(9.0, 4.0, 2.5));
    const auto spec = b.build();
    const auto restored = io::problem_from_json_string(io::problem_to_json_string(spec));
    const auto& u = *restored.classes()[0].utility;
    EXPECT_FALSE(u.concave());
    for (double r : {0.0, 1.0, 4.0, 8.0})
        EXPECT_DOUBLE_EQ(u.value(r), spec.classes()[0].utility->value(r));
}

TEST(ProblemJson, OptimizationEquivalentAfterRoundTrip) {
    // The restored problem must optimize to exactly the same trajectory.
    const auto spec = workload::make_base_workload();
    const auto restored = io::problem_from_json_string(io::problem_to_json_string(spec));
    core::LrgpOptimizer a(spec);
    core::LrgpOptimizer b(restored);
    for (int i = 0; i < 40; ++i) EXPECT_DOUBLE_EQ(a.step().utility, b.step().utility);
}

TEST(ProblemJson, RandomWorkloadsRoundTrip) {
    for (std::uint32_t seed : {1u, 7u, 99u}) {
        workload::RandomWorkloadOptions options;
        options.seed = seed;
        options.link_bottleneck_probability = seed % 2 ? 1.0 : 0.0;
        const auto spec = workload::make_random_workload(options);
        const auto restored = io::problem_from_json_string(io::problem_to_json_string(spec));
        expectSpecsEquivalent(spec, restored);
    }
}

TEST(ProblemJson, RejectsUnknownReferences) {
    EXPECT_THROW((void)io::problem_from_json_string(
                     R"({"nodes": [], "flows": [{"name":"f","source":"ghost",
                         "rate_min":1,"rate_max":2,"nodes":[]}], "classes": []})"),
                 std::runtime_error);
}

TEST(ProblemJson, RejectsDuplicateNames) {
    EXPECT_THROW((void)io::problem_from_json_string(
                     R"({"nodes": [{"name":"n","capacity":1},{"name":"n","capacity":2}],
                         "flows": [], "classes": []})"),
                 std::runtime_error);
}

TEST(ProblemJson, RejectsUnknownUtilityType) {
    EXPECT_THROW(
        (void)io::problem_from_json_string(
            R"({"nodes": [{"name":"n","capacity":10}],
                "flows": [{"name":"f","source":"n","rate_min":1,"rate_max":2,
                           "nodes":[{"node":"n","cost":1}]}],
                "classes": [{"name":"c","flow":"f","node":"n","max_consumers":1,
                             "consumer_cost":1,"utility":{"type":"cubic","weight":1}}]})"),
        std::runtime_error);
}

TEST(AllocationJson, RoundTrips) {
    const auto spec = workload::make_base_workload();
    core::LrgpOptimizer opt(spec);
    opt.run(60);
    const auto json = io::allocation_to_json(spec, opt.allocation());
    const auto restored = io::allocation_from_json(spec, io::parse_json(json.dump()));
    ASSERT_EQ(restored.rates.size(), opt.allocation().rates.size());
    for (std::size_t i = 0; i < restored.rates.size(); ++i)
        EXPECT_DOUBLE_EQ(restored.rates[i], opt.allocation().rates[i]);
    for (std::size_t j = 0; j < restored.populations.size(); ++j)
        EXPECT_EQ(restored.populations[j], opt.allocation().populations[j]);
}

TEST(AllocationJson, SizeValidated) {
    const auto spec = workload::make_base_workload();
    EXPECT_THROW((void)io::allocation_to_json(spec, model::Allocation{}),
                 std::invalid_argument);
}

}  // namespace
