// Property suite for the production scenario generators (ROADMAP item 3):
// catalog shape, the 100-seed determinism sweep (byte-identical problem
// JSON + manifest), topology sanity per family, feasibility floors on
// initial and end-state problems, overdrive twin problem equality, and
// churn-schedule validity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "io/problem_json.hpp"
#include "model/allocation.hpp"
#include "scenario/scenario.hpp"
#include "scenario/topology.hpp"

namespace {

using lrgp::scenario::build_scenario;
using lrgp::scenario::DynamicOp;
using lrgp::scenario::find_scenario;
using lrgp::scenario::OpKind;
using lrgp::scenario::Overlay;
using lrgp::scenario::scenario_catalog;
using lrgp::scenario::ScenarioOptions;
using lrgp::scenario::ScenarioSpec;

// ------------------------------------------------------------------ catalog

TEST(ScenarioCatalog, HasAtLeastTwelveUniquelyNamedCells) {
    const auto& catalog = scenario_catalog();
    EXPECT_GE(catalog.size(), 12u);
    std::set<std::string> names;
    for (const ScenarioOptions& cell : catalog) {
        EXPECT_FALSE(cell.name.empty());
        EXPECT_TRUE(names.insert(cell.name).second) << "duplicate cell " << cell.name;
    }
}

TEST(ScenarioCatalog, CoversEveryFamilyAxis) {
    std::set<std::string> topologies, traffics, utilities;
    bool any_overdrive = false;
    for (const ScenarioOptions& cell : scenario_catalog()) {
        topologies.insert(cell.topology);
        traffics.insert(cell.traffic);
        utilities.insert(cell.utility);
        any_overdrive = any_overdrive || cell.overdrive;
    }
    EXPECT_EQ(topologies, (std::set<std::string>{"fat_tree", "scale_free", "small_world"}));
    EXPECT_EQ(traffics,
              (std::set<std::string>{"diurnal", "flash_crowd", "heavy_tail", "churn"}));
    EXPECT_EQ(utilities, (std::set<std::string>{"shifted_log", "sigmoid", "step"}));
    EXPECT_TRUE(any_overdrive);
}

TEST(ScenarioCatalog, FindScenarioRoundTripsAndRejectsUnknown) {
    for (const ScenarioOptions& cell : scenario_catalog()) {
        const ScenarioOptions found = find_scenario(cell.name);
        EXPECT_EQ(found.topology, cell.topology);
        EXPECT_EQ(found.seed, cell.seed);
    }
    try {
        (void)find_scenario("no_such_cell");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        // The error lists the known names so CLI users can self-serve.
        EXPECT_NE(std::string(e.what()).find("fat_tree_heavy_tail_shifted_log"),
                  std::string::npos);
    }
}

TEST(ScenarioCatalog, EveryCellBuilds) {
    for (const ScenarioOptions& cell : scenario_catalog()) {
        const ScenarioSpec spec = build_scenario(cell);
        EXPECT_GT(spec.problem.flowCount(), 0u) << cell.name;
        EXPECT_GT(spec.problem.classCount(), 0u) << cell.name;
        EXPECT_TRUE(spec.overlay.connected()) << cell.name;
        // The schedule must be sorted: the runner applies ops in order.
        EXPECT_TRUE(std::is_sorted(
            spec.schedule.begin(), spec.schedule.end(),
            [](const DynamicOp& a, const DynamicOp& b) { return a.time < b.time; }))
            << cell.name;
        for (const DynamicOp& op : spec.schedule) {
            EXPECT_GE(op.time, 0.0) << cell.name;
            EXPECT_LE(op.time, cell.duration) << cell.name;
        }
    }
}

TEST(ScenarioBuild, RejectsUnknownFamilies) {
    ScenarioOptions bad;
    bad.topology = "torus";
    EXPECT_THROW((void)build_scenario(bad), std::invalid_argument);
    bad = ScenarioOptions{};
    bad.traffic = "steady_state";
    EXPECT_THROW((void)build_scenario(bad), std::invalid_argument);
    bad = ScenarioOptions{};
    bad.utility = "linear";
    EXPECT_THROW((void)build_scenario(bad), std::invalid_argument);
}

// ------------------------------------------------- 100-seed determinism sweep

TEST(ScenarioDeterminism, HundredSeedSweepIsByteIdentical) {
    // Rotate through every (topology, traffic, utility) axis while the
    // seed climbs, so the sweep exercises each generator's RNG paths.
    const char* topologies[] = {"fat_tree", "scale_free", "small_world"};
    const char* traffics[] = {"diurnal", "flash_crowd", "heavy_tail", "churn"};
    const char* utilities[] = {"shifted_log", "sigmoid", "step"};
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        ScenarioOptions options;
        options.topology = topologies[seed % 3];
        options.traffic = traffics[seed % 4];
        options.utility = utilities[seed % 5 % 3];
        options.overdrive = (seed % 7) == 0;
        options.seed = seed;
        const ScenarioSpec a = build_scenario(options);
        const ScenarioSpec b = build_scenario(options);
        ASSERT_EQ(lrgp::io::problem_to_json_string(a.problem),
                  lrgp::io::problem_to_json_string(b.problem))
            << "seed " << seed;
        ASSERT_EQ(a.manifestString(), b.manifestString()) << "seed " << seed;
        ASSERT_EQ(a.schedule.size(), b.schedule.size()) << "seed " << seed;
        for (std::size_t i = 0; i < a.schedule.size(); ++i) {
            ASSERT_EQ(a.schedule[i].time, b.schedule[i].time);
            ASSERT_EQ(a.schedule[i].kind, b.schedule[i].kind);
            ASSERT_EQ(a.schedule[i].target, b.schedule[i].target);
            ASSERT_EQ(a.schedule[i].value, b.schedule[i].value);
        }
    }
}

TEST(ScenarioDeterminism, DifferentSeedsDiverge) {
    ScenarioOptions options;
    options.topology = "scale_free";
    options.seed = 7;
    const ScenarioSpec a = build_scenario(options);
    options.seed = 8;
    const ScenarioSpec b = build_scenario(options);
    EXPECT_NE(lrgp::io::problem_to_json_string(a.problem),
              lrgp::io::problem_to_json_string(b.problem));
}

// ----------------------------------------------------------- topology sanity

TEST(ScenarioTopology, AllFamiliesConnectedAcrossSeeds) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        EXPECT_TRUE(lrgp::scenario::make_scale_free({24, 2, seed}).connected()) << seed;
        EXPECT_TRUE(lrgp::scenario::make_small_world({24, 4, 0.2, seed}).connected()) << seed;
        EXPECT_TRUE(lrgp::scenario::make_small_world({24, 6, 1.0, seed}).connected()) << seed;
    }
    EXPECT_TRUE(lrgp::scenario::make_fat_tree({4}).connected());
    EXPECT_TRUE(lrgp::scenario::make_fat_tree({6}).connected());
}

TEST(ScenarioTopology, FatTreeShapeAndWeights) {
    // k=4: 4 core + 4 pods x (2 agg + 2 edge) = 20 nodes, 32 edges.
    const Overlay overlay = lrgp::scenario::make_fat_tree({4});
    ASSERT_EQ(overlay.nodeCount(), 20u);
    EXPECT_EQ(overlay.edges.size(), 32u);
    const auto deg = overlay.degrees();
    for (int c = 0; c < 4; ++c) {
        EXPECT_DOUBLE_EQ(overlay.node_weight[c], 4.0);  // core
        EXPECT_EQ(deg[c], 4u);                          // one agg per pod
    }
    for (int pod = 0; pod < 4; ++pod) {
        const int agg0 = 4 + pod * 4;
        for (int j = 0; j < 2; ++j) {
            EXPECT_DOUBLE_EQ(overlay.node_weight[agg0 + j], 2.0);      // agg
            EXPECT_EQ(deg[agg0 + j], 4u);                              // 2 edge + 2 core
            EXPECT_DOUBLE_EQ(overlay.node_weight[agg0 + 2 + j], 1.0);  // edge
            EXPECT_EQ(deg[agg0 + 2 + j], 2u);                          // 2 agg
        }
    }
    EXPECT_THROW((void)lrgp::scenario::make_fat_tree({3}), std::invalid_argument);
    EXPECT_THROW((void)lrgp::scenario::make_fat_tree({0}), std::invalid_argument);
}

TEST(ScenarioTopology, ScaleFreeDegreeTail) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const Overlay overlay = lrgp::scenario::make_scale_free({40, 2, seed});
        ASSERT_EQ(overlay.nodeCount(), 40u);
        // m edges per newcomer on top of the seed clique.
        EXPECT_EQ(overlay.edges.size(), 3u + 37u * 2u);
        const auto deg = overlay.degrees();
        std::size_t max_deg = 0;
        for (std::size_t d : deg) {
            EXPECT_GE(d, 2u);  // every node keeps at least its attach edges
            max_deg = std::max(max_deg, d);
        }
        // Preferential attachment must actually produce hubs: the hub
        // degree has to beat what a degree-regular graph would allow.
        EXPECT_GE(max_deg, 6u) << "seed " << seed;
        // Hubs get more relative capacity than leaves (sqrt(degree)).
        const auto hub = std::max_element(deg.begin(), deg.end()) - deg.begin();
        const auto leaf = std::min_element(deg.begin(), deg.end()) - deg.begin();
        EXPECT_GT(overlay.node_weight[hub], overlay.node_weight[leaf]);
        EXPECT_NEAR(overlay.node_weight[hub], std::sqrt(static_cast<double>(deg[hub])), 1e-12);
    }
    EXPECT_THROW((void)lrgp::scenario::make_scale_free({2, 1, 1}), std::invalid_argument);
    EXPECT_THROW((void)lrgp::scenario::make_scale_free({10, 10, 1}), std::invalid_argument);
}

TEST(ScenarioTopology, SmallWorldRingPreservedAndRewiringBounded) {
    const lrgp::scenario::SmallWorldOptions options{24, 4, 0.5, 9};
    const Overlay overlay = lrgp::scenario::make_small_world(options);
    ASSERT_EQ(overlay.nodeCount(), 24u);
    // The offset-1 ring is never rewired: every (i, i+1 mod n) pair is
    // present, so the overlay is connected for any beta.
    std::set<std::pair<std::uint32_t, std::uint32_t>> edge_set;
    for (const auto& e : overlay.edges)
        edge_set.insert({std::min(e.a, e.b), std::max(e.a, e.b)});
    for (std::uint32_t i = 0; i < 24; ++i) {
        const std::uint32_t j = (i + 1) % 24;
        EXPECT_TRUE(edge_set.count({std::min(i, j), std::max(i, j)})) << "ring edge " << i;
    }
    // Edge count: the n ring edges plus at most chord_count chords
    // (duplicate-target rewires are dropped, never doubled).
    const std::size_t chords = lrgp::scenario::small_world_chord_count(options);
    EXPECT_EQ(chords, 24u);
    EXPECT_GE(overlay.edges.size(), 24u);
    EXPECT_LE(overlay.edges.size(), 24u + chords);
}

TEST(ScenarioTopology, SmallWorldBetaZeroIsPureLattice) {
    const Overlay overlay = lrgp::scenario::make_small_world({24, 4, 0.0, 1});
    // No rewiring: exactly n * ring_degree / 2 edges, all within the
    // lattice neighborhood (ring distance <= ring_degree/2).
    EXPECT_EQ(overlay.edges.size(), 24u * 4u / 2u);
    for (const auto& e : overlay.edges) {
        const int d = std::abs(static_cast<int>(e.a) - static_cast<int>(e.b));
        EXPECT_LE(std::min(d, 24 - d), 2) << "chord (" << e.a << "," << e.b << ")";
    }
    EXPECT_THROW((void)lrgp::scenario::make_small_world({24, 4, 1.5, 1}),
                 std::invalid_argument);
    EXPECT_THROW((void)lrgp::scenario::make_small_world({24, 3, 0.2, 1}),
                 std::invalid_argument);
}

TEST(ScenarioTopology, AdjacencyIsSortedByNeighbor) {
    const Overlay overlay = lrgp::scenario::make_scale_free({24, 2, 5});
    for (const auto& list : overlay.adjacency())
        EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
}

// -------------------------------------------------------- feasibility floors

TEST(ScenarioFeasibility, MinimalAllocationFeasibleOnEveryCell) {
    // Calibration must never produce a problem whose rate floors already
    // violate capacity — neither initially nor after the full schedule.
    for (const ScenarioOptions& cell : scenario_catalog()) {
        const ScenarioSpec spec = build_scenario(cell);
        const auto initial = lrgp::model::Allocation::minimal(spec.problem);
        EXPECT_TRUE(lrgp::model::check_feasibility(spec.problem, initial).feasible())
            << cell.name << " (initial)";
        const auto end_spec = lrgp::scenario::end_state_problem(spec);
        const auto final_floor = lrgp::model::Allocation::minimal(end_spec);
        EXPECT_TRUE(lrgp::model::check_feasibility(end_spec, final_floor).feasible())
            << cell.name << " (end state)";
    }
}

TEST(ScenarioFeasibility, OverdriveTwinSharesThePlannersProblem) {
    // Overdrive no longer rewrites the problem: the planner's view is
    // byte-identical to the headroom twin; only the physical scale that
    // the runner applies to the dataplane differs.
    const ScenarioSpec headroom = build_scenario(find_scenario("fat_tree_heavy_tail_shifted_log"));
    const ScenarioSpec overdrive =
        build_scenario(find_scenario("fat_tree_heavy_tail_shifted_log_overdrive"));
    EXPECT_EQ(lrgp::io::problem_to_json_string(headroom.problem),
              lrgp::io::problem_to_json_string(overdrive.problem));
    EXPECT_DOUBLE_EQ(headroom.physical_capacity_scale, 1.0);
    EXPECT_DOUBLE_EQ(overdrive.physical_capacity_scale, overdrive.options.overdrive_factor);
    EXPECT_LT(overdrive.physical_capacity_scale, 1.0);
}

// ------------------------------------------------------------ churn validity

TEST(ScenarioChurn, ScheduleNeverDoubleRemovesOrRestoresActive) {
    for (const ScenarioOptions& cell : scenario_catalog()) {
        if (cell.traffic != "churn") continue;
        const ScenarioSpec spec = build_scenario(cell);
        ASSERT_FALSE(spec.schedule.empty()) << cell.name;
        std::vector<bool> removed(spec.problem.flowCount(), false);
        for (const DynamicOp& op : spec.schedule) {
            switch (op.kind) {
                case OpKind::kRemoveFlow:
                    ASSERT_LT(op.target, removed.size()) << cell.name;
                    EXPECT_FALSE(removed[op.target])
                        << cell.name << ": flow " << op.target << " removed twice";
                    removed[op.target] = true;
                    break;
                case OpKind::kRestoreFlow:
                    ASSERT_LT(op.target, removed.size()) << cell.name;
                    EXPECT_TRUE(removed[op.target])
                        << cell.name << ": flow " << op.target << " restored while active";
                    removed[op.target] = false;
                    break;
                case OpKind::kSetClassMaxConsumers:
                    ASSERT_LT(op.target, spec.problem.classCount()) << cell.name;
                    EXPECT_GE(op.value, 0.0);
                    break;
                case OpKind::kSetNodeCapacity:
                case OpKind::kSetLinkCapacity:
                    // Churn cells run on the async runtime too, which
                    // cannot mirror capacity ops — the composer must not
                    // emit them for churn traffic.
                    FAIL() << cell.name << ": capacity op in a churn schedule";
            }
        }
        // Churn must end balanced enough that the end-state problem keeps
        // at least one active flow to optimize.
        const std::size_t still_removed =
            static_cast<std::size_t>(std::count(removed.begin(), removed.end(), true));
        EXPECT_LT(still_removed, removed.size()) << cell.name;
    }
}

TEST(ScenarioChurn, PrincipalDisturbanceMarksDynamicCellsOnly) {
    for (const ScenarioOptions& cell : scenario_catalog()) {
        const ScenarioSpec spec = build_scenario(cell);
        if (cell.traffic == "heavy_tail") {
            EXPECT_TRUE(spec.schedule.empty()) << cell.name;
            EXPECT_LT(spec.principal_disturbance, 0.0) << cell.name;
        } else {
            EXPECT_FALSE(spec.schedule.empty()) << cell.name;
            EXPECT_GE(spec.principal_disturbance, 0.0) << cell.name;
            EXPECT_LE(spec.principal_disturbance, cell.duration) << cell.name;
        }
    }
}

}  // namespace
