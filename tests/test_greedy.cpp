#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "lrgp/greedy_allocator.hpp"
#include "model/allocation.hpp"
#include "test_helpers.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using core::GreedyConsumerAllocator;
using lrgp::test::make_tiny_problem;

TEST(Greedy, BenefitCostsSortedDescending) {
    const auto t = make_tiny_problem();
    GreedyConsumerAllocator greedy(t.spec);
    std::vector<double> rates{10.0};
    const auto bcs = greedy.benefitCosts(t.cnode, rates);
    ASSERT_EQ(bcs.size(), 2u);
    EXPECT_GE(bcs[0].ratio, bcs[1].ratio);
    // gold: 30*log(11)/(5*10) = 1.438...; public: 4*log(11)/(10*10) = 0.0959
    EXPECT_EQ(bcs[0].cls, t.gold);
    EXPECT_NEAR(bcs[0].ratio, 30.0 * std::log(11.0) / 50.0, 1e-9);
    EXPECT_NEAR(bcs[1].ratio, 4.0 * std::log(11.0) / 100.0, 1e-9);
}

TEST(Greedy, AdmitsBestClassFirst) {
    const auto t = make_tiny_problem();
    GreedyConsumerAllocator greedy(t.spec);
    // At rate 10: base usage = 20, remaining = 980.  Gold unit cost 50:
    // all 8 admitted (400).  Then public unit cost 100: remaining 580 -> 5.
    const auto result = greedy.allocate(t.cnode, {10.0});
    int gold_n = -1, pub_n = -1;
    for (const auto& [cls, n] : result.populations) {
        if (cls == t.gold) gold_n = n;
        if (cls == t.pub) pub_n = n;
    }
    EXPECT_EQ(gold_n, 8);
    EXPECT_EQ(pub_n, 5);
    EXPECT_DOUBLE_EQ(result.used, 20.0 + 8 * 50.0 + 5 * 100.0);
}

TEST(Greedy, NeverExceedsCapacity) {
    const auto t = make_tiny_problem();
    GreedyConsumerAllocator greedy(t.spec);
    for (double rate = 1.0; rate <= 50.0; rate += 1.0) {
        const auto result = greedy.allocate(t.cnode, {rate});
        EXPECT_LE(result.used, t.spec.node(t.cnode).capacity + 1e-9) << "rate=" << rate;
    }
}

TEST(Greedy, BestUnmetBcReflectsFirstUnsatisfiedClass) {
    const auto t = make_tiny_problem();
    GreedyConsumerAllocator greedy(t.spec);
    // At rate 10, gold is fully admitted but public is not: BC(b,t) is
    // public's ratio.
    const auto result = greedy.allocate(t.cnode, {10.0});
    ASSERT_TRUE(result.best_unmet_bc.has_value());
    EXPECT_NEAR(*result.best_unmet_bc, 4.0 * std::log(11.0) / 100.0, 1e-9);
}

TEST(Greedy, BestUnmetBcEmptyWhenAllAdmitted) {
    // Huge capacity: everything fits.
    model::ProblemBuilder b;
    const auto src = b.addNode("P", 1e9);
    const auto node = b.addNode("S", 1e9);
    const auto flow = b.addFlow("f", src, 1.0, 50.0);
    b.routeThroughNode(flow, node, 1.0);
    b.addClass("c", flow, node, 5, 1.0, std::make_shared<utility::LogUtility>(2.0));
    const auto spec = b.build();
    GreedyConsumerAllocator greedy(spec);
    const auto result = greedy.allocate(model::NodeId{1}, {10.0});
    EXPECT_EQ(result.populations[0].second, 5);
    EXPECT_FALSE(result.best_unmet_bc.has_value());
}

TEST(Greedy, FlowCostsAloneCanExhaustNode) {
    // Tiny capacity: F*r alone exceeds it; no consumer admitted, and the
    // used value reports the overshoot (paper: "all n_j remain at 0").
    model::ProblemBuilder b;
    const auto src = b.addNode("P", 1e9);
    const auto node = b.addNode("S", 5.0);
    const auto flow = b.addFlow("f", src, 1.0, 50.0);
    b.routeThroughNode(flow, node, 1.0);
    b.addClass("c", flow, node, 5, 1.0, std::make_shared<utility::LogUtility>(2.0));
    const auto spec = b.build();
    GreedyConsumerAllocator greedy(spec);
    const auto result = greedy.allocate(model::NodeId{1}, {50.0});
    EXPECT_EQ(result.populations[0].second, 0);
    EXPECT_DOUBLE_EQ(result.used, 50.0);  // > capacity 5
}

TEST(Greedy, InactiveFlowsConsumeNothing) {
    auto t = make_tiny_problem();
    t.spec.setFlowActive(t.flow, false);
    GreedyConsumerAllocator greedy(t.spec);
    const auto result = greedy.allocate(t.cnode, {10.0});
    for (const auto& [cls, n] : result.populations) EXPECT_EQ(n, 0);
    EXPECT_DOUBLE_EQ(result.used, 0.0);
    EXPECT_FALSE(result.best_unmet_bc.has_value());
}

TEST(Greedy, ZeroMaxConsumerClassesIgnored) {
    model::ProblemBuilder b;
    const auto src = b.addNode("P", 1e9);
    const auto node = b.addNode("S", 1000.0);
    const auto flow = b.addFlow("f", src, 1.0, 50.0);
    b.routeThroughNode(flow, node, 1.0);
    b.addClass("empty", flow, node, 0, 1.0, std::make_shared<utility::LogUtility>(99.0));
    b.addClass("real", flow, node, 3, 1.0, std::make_shared<utility::LogUtility>(1.0));
    const auto spec = b.build();
    GreedyConsumerAllocator greedy(spec);
    const auto bcs = greedy.benefitCosts(model::NodeId{1}, {10.0});
    ASSERT_EQ(bcs.size(), 1u);  // the n_max=0 class is not allocatable
    const auto result = greedy.allocate(model::NodeId{1}, {10.0});
    EXPECT_EQ(result.populations[0].second, 0);
    EXPECT_EQ(result.populations[1].second, 3);
}

TEST(Greedy, BatchedAndUnbatchedAgree) {
    const auto spec = workload::make_base_workload();
    GreedyConsumerAllocator greedy(spec);
    std::vector<double> rates(spec.flowCount());
    for (const auto& f : spec.flows()) rates[f.id.index()] = 10.0 + 37.0 * f.id.value;
    for (const model::NodeSpec& node : spec.nodes()) {
        const auto batched = greedy.allocate(node.id, rates, /*batched=*/true);
        const auto stepwise = greedy.allocate(node.id, rates, /*batched=*/false);
        ASSERT_EQ(batched.populations.size(), stepwise.populations.size());
        for (std::size_t k = 0; k < batched.populations.size(); ++k) {
            EXPECT_EQ(batched.populations[k].first, stepwise.populations[k].first);
            EXPECT_EQ(batched.populations[k].second, stepwise.populations[k].second)
                << "node " << node.name;
        }
        EXPECT_NEAR(batched.used, stepwise.used, 1e-6);
    }
}

// Property sweep over the base workload: greedy allocations are always
// within capacity and within population bounds, at any rate level.
class GreedySweep : public ::testing::TestWithParam<double> {};

TEST_P(GreedySweep, RespectsAllNodeConstraints) {
    const double rate = GetParam();
    const auto spec = workload::make_base_workload();
    GreedyConsumerAllocator greedy(spec);
    std::vector<double> rates(spec.flowCount(), rate);
    for (const model::NodeSpec& node : spec.nodes()) {
        const auto result = greedy.allocate(node.id, rates);
        double used_check = 0.0;
        for (model::FlowId i : spec.flowsAtNode(node.id))
            used_check += spec.flowNodeCost(node.id, i) * rate;
        for (const auto& [cls, n] : result.populations) {
            const auto& c = spec.consumerClass(cls);
            EXPECT_GE(n, 0);
            EXPECT_LE(n, c.max_consumers);
            used_check += c.consumer_cost * n * rate;
        }
        EXPECT_NEAR(result.used, used_check, 1e-6);
        if (used_check <= spec.node(node.id).capacity) {
            EXPECT_LE(result.used, spec.node(node.id).capacity + 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Rates, GreedySweep,
                         ::testing::Values(10.0, 25.0, 60.0, 125.0, 333.0, 500.0, 1000.0));

// Regression: a zero rate gives every class at that flow a zero unit
// cost, making BC_j = U_j(0)/0 an undefined 0/0.  Such classes must be
// omitted from the ranking (not ranked as NaN, which would poison the
// sort and BC(b,t)) and must receive no consumers (floor(remaining/0)
// would otherwise admit an unbounded block).
TEST(Greedy, ZeroRateClassesAreNotAllocatable) {
    const auto t = make_tiny_problem();
    GreedyConsumerAllocator greedy(t.spec);
    const std::vector<double> rates{0.0};

    const auto bcs = greedy.benefitCosts(t.cnode, rates);
    EXPECT_TRUE(bcs.empty());

    const auto result = greedy.allocate(t.cnode, rates);
    for (const auto& [cls, n] : result.populations) EXPECT_EQ(n, 0);
    EXPECT_EQ(result.used, 0.0);
    // No allocatable class means no defined BC(b,t) — not a NaN one.
    EXPECT_FALSE(result.best_unmet_bc.has_value());
}

TEST(Greedy, ZeroRateFlowDoesNotPoisonOtherFlows) {
    // Two flows with classes at one shared node; the dead (zero-rate)
    // flow's class sits out while the live flow's allocation proceeds
    // exactly as if it were alone.
    model::ProblemBuilder b;
    const model::NodeId source = b.addNode("P", 1e9);
    const model::NodeId shared = b.addNode("S", 1000.0);
    const model::FlowId live = b.addFlow("live", source, 1.0, 50.0);
    const model::FlowId dead = b.addFlow("dead", source, 1.0, 50.0);
    b.routeThroughNode(live, shared, 2.0);
    b.routeThroughNode(dead, shared, 2.0);
    b.addClass("live_cls", live, shared, 8, 5.0,
               std::make_shared<utility::LogUtility>(30.0));
    b.addClass("dead_cls", dead, shared, 20, 10.0,
               std::make_shared<utility::LogUtility>(4.0));
    const model::ProblemSpec spec = b.build();
    GreedyConsumerAllocator greedy(spec);

    const std::vector<double> mixed_rates{10.0, 0.0};
    const auto bcs = greedy.benefitCosts(shared, mixed_rates);
    ASSERT_EQ(bcs.size(), 1u);  // only the live flow's class ranks
    EXPECT_FALSE(std::isnan(bcs[0].ratio));
    EXPECT_GT(bcs[0].unit_cost, 0.0);

    const auto mixed = greedy.allocate(shared, mixed_rates);
    const auto reference = greedy.allocate(shared, std::vector<double>{10.0, 0.0});
    int live_admitted = 0, dead_admitted = 0;
    for (const auto& [cls, n] : mixed.populations) {
        if (spec.consumerClass(cls).flow == live) live_admitted = n;
        if (spec.consumerClass(cls).flow == dead) dead_admitted = n;
    }
    EXPECT_GT(live_admitted, 0);
    EXPECT_EQ(dead_admitted, 0);
    EXPECT_EQ(mixed.used, reference.used);
}

}  // namespace
