#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "metrics/histogram.hpp"
#include "metrics/table_writer.hpp"
#include "metrics/time_series.hpp"

namespace {

using lrgp::metrics::Cell;
using lrgp::metrics::TableWriter;
using lrgp::metrics::TimeSeries;

TEST(TimeSeries, StartsEmpty) {
    TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    EXPECT_EQ(ts.size(), 0u);
}

TEST(TimeSeries, AppendAndIndex) {
    TimeSeries ts;
    ts.append(1.0);
    ts.append(2.0);
    ts.append(3.0);
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_DOUBLE_EQ(ts[0], 1.0);
    EXPECT_DOUBLE_EQ(ts[2], 3.0);
    EXPECT_DOUBLE_EQ(ts.back(), 3.0);
}

TEST(TimeSeries, StatsOnKnownData) {
    TimeSeries ts({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(ts.min(), 2.0);
    EXPECT_DOUBLE_EQ(ts.max(), 9.0);
    EXPECT_DOUBLE_EQ(ts.mean(), 5.0);
    EXPECT_DOUBLE_EQ(ts.stddev(), 2.0);
}

TEST(TimeSeries, StatsThrowOnEmpty) {
    TimeSeries ts;
    EXPECT_THROW((void)ts.min(), std::logic_error);
    EXPECT_THROW((void)ts.max(), std::logic_error);
    EXPECT_THROW((void)ts.mean(), std::logic_error);
    EXPECT_THROW((void)ts.stddev(), std::logic_error);
}

TEST(TimeSeries, TrailingAmplitudeUsesOnlyWindow) {
    TimeSeries ts({100.0, 0.0, 5.0, 6.0, 7.0});
    // Window of 3 ignores the 100 and 0 at the front.
    EXPECT_DOUBLE_EQ(ts.trailingAmplitude(3), 2.0);
    EXPECT_DOUBLE_EQ(ts.trailingMean(3), 6.0);
    EXPECT_NEAR(ts.trailingRelativeAmplitude(3), 2.0 / 6.0, 1e-12);
}

TEST(TimeSeries, TrailingWindowValidation) {
    TimeSeries ts({1.0, 2.0});
    EXPECT_THROW((void)ts.trailingAmplitude(0), std::invalid_argument);
    EXPECT_THROW((void)ts.trailingAmplitude(3), std::invalid_argument);
}

TEST(TimeSeries, RelativeAmplitudeZeroMean) {
    TimeSeries flat({0.0, 0.0, 0.0});
    EXPECT_DOUBLE_EQ(flat.trailingRelativeAmplitude(3), 0.0);
    TimeSeries mixed({-1.0, 1.0});
    EXPECT_TRUE(std::isinf(mixed.trailingRelativeAmplitude(2)));
}

TEST(TableWriter, RejectsEmptyColumns) {
    EXPECT_THROW(TableWriter({}), std::invalid_argument);
}

TEST(TableWriter, RejectsRowSizeMismatch) {
    TableWriter t({"a", "b"});
    EXPECT_THROW(t.addRow({Cell{std::string{"x"}}}), std::invalid_argument);
}

TEST(TableWriter, RendersAlignedTable) {
    TableWriter t({"name", "value"});
    t.addRow({Cell{std::string{"alpha"}}, Cell{1.5}});
    t.addRow({Cell{std::string{"b"}}, Cell{static_cast<long long>(42)}});
    const std::string s = t.toTableString();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("+"), std::string::npos);
}

TEST(TableWriter, CsvEscapesSpecials) {
    TableWriter t({"x"});
    t.addRow({Cell{std::string{"a,b"}}});
    t.addRow({Cell{std::string{"q\"u"}}});
    const std::string s = t.toCsvString();
    EXPECT_NE(s.find("\"a,b\""), std::string::npos);
    EXPECT_NE(s.find("\"q\"\"u\""), std::string::npos);
}

TEST(TableWriter, FloatPrecisionHonored) {
    TableWriter t({"v"}, 4);
    t.addRow({Cell{3.14159265}});
    EXPECT_NE(t.toCsvString().find("3.1416"), std::string::npos);
}

TEST(TableWriter, RowCount) {
    TableWriter t({"v"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({Cell{1.0}});
    EXPECT_EQ(t.rowCount(), 1u);
}

TEST(BucketHistogram, CountsSumAndExactExtrema) {
    lrgp::metrics::BucketHistogram h({1.0, 10.0, 100.0});
    h.observe(0.5);
    h.observe(3.0);
    h.observe(42.0);
    h.observe(500.0);  // overflow bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 545.5);
    EXPECT_DOUBLE_EQ(h.minObserved(), 0.5);
    EXPECT_DOUBLE_EQ(h.maxObserved(), 500.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);  // overflow
}

TEST(BucketHistogram, QuantilesInterpolateAndClampToObservations) {
    lrgp::metrics::BucketHistogram h({1.0, 2.0, 4.0});
    for (int i = 0; i < 100; ++i) h.observe(1.5);  // all in (1, 2]
    // Every rank crosses the same bucket; clamping pins the tails to the
    // exact extrema rather than the bucket bounds.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.5);
    EXPECT_GE(h.quantile(0.5), 1.0);
    EXPECT_LE(h.quantile(0.5), 2.0);
    EXPECT_THROW((void)h.quantile(1.5), std::invalid_argument);
}

TEST(BucketHistogram, OverflowQuantileReportsObservedMax) {
    lrgp::metrics::BucketHistogram h({1.0});
    h.observe(7.0);
    h.observe(9.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 9.0);
}

TEST(BucketHistogram, ValidatesBounds) {
    using lrgp::metrics::BucketHistogram;
    EXPECT_THROW(BucketHistogram({}), std::invalid_argument);
    EXPECT_THROW(BucketHistogram({1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(BucketHistogram({-1.0, 1.0}), std::invalid_argument);
}

TEST(BucketHistogram, ExponentialBoundsCoverTheRequestedRange) {
    const std::vector<double> bounds = lrgp::metrics::exponential_bounds(1e-3, 10.0, 5);
    ASSERT_FALSE(bounds.empty());
    EXPECT_DOUBLE_EQ(bounds.front(), 1e-3);
    EXPECT_GE(bounds.back(), 10.0);
    for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
    EXPECT_THROW((void)lrgp::metrics::exponential_bounds(1.0, 0.5), std::invalid_argument);
}

}  // namespace
