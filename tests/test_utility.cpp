#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "utility/utility_function.hpp"

namespace {

using lrgp::utility::LogUtility;
using lrgp::utility::PowerUtility;
using lrgp::utility::ScaledUtility;
using lrgp::utility::UtilityFunction;

TEST(LogUtility, ValueAndDerivative) {
    LogUtility u(20.0);
    EXPECT_DOUBLE_EQ(u.value(0.0), 0.0);
    EXPECT_NEAR(u.value(9.0), 20.0 * std::log(10.0), 1e-12);
    EXPECT_NEAR(u.derivative(9.0), 2.0, 1e-12);
}

TEST(LogUtility, InverseDerivativeRoundTrip) {
    LogUtility u(50.0);
    for (double r : {0.5, 1.0, 10.0, 100.0, 999.0}) {
        const auto inverse = u.inverseDerivative(u.derivative(r));
        ASSERT_TRUE(inverse.has_value());
        EXPECT_NEAR(*inverse, r, 1e-9 * (1.0 + r));
    }
}

TEST(LogUtility, RejectsNonPositiveWeight) {
    EXPECT_THROW(LogUtility(0.0), std::invalid_argument);
    EXPECT_THROW(LogUtility(-1.0), std::invalid_argument);
}

TEST(PowerUtility, ValueAndDerivative) {
    PowerUtility u(10.0, 0.5);
    EXPECT_NEAR(u.value(4.0), 20.0, 1e-12);
    EXPECT_NEAR(u.derivative(4.0), 10.0 * 0.5 * std::pow(4.0, -0.5), 1e-12);
}

TEST(PowerUtility, InverseDerivativeRoundTrip) {
    PowerUtility u(3.0, 0.25);
    for (double r : {0.5, 1.0, 10.0, 500.0}) {
        const auto inverse = u.inverseDerivative(u.derivative(r));
        ASSERT_TRUE(inverse.has_value());
        EXPECT_NEAR(*inverse, r, 1e-9 * (1.0 + r));
    }
}

TEST(PowerUtility, RejectsBadParameters) {
    EXPECT_THROW(PowerUtility(-1.0, 0.5), std::invalid_argument);
    EXPECT_THROW(PowerUtility(1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(PowerUtility(1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(PowerUtility(1.0, 1.5), std::invalid_argument);
}

TEST(ScaledUtility, ScalesValueDerivativeAndInverse) {
    auto base = std::make_shared<LogUtility>(4.0);
    ScaledUtility u(5.0, base);
    EXPECT_NEAR(u.value(9.0), 5.0 * base->value(9.0), 1e-12);
    EXPECT_NEAR(u.derivative(9.0), 5.0 * base->derivative(9.0), 1e-12);
    const auto inverse = u.inverseDerivative(u.derivative(7.0));
    ASSERT_TRUE(inverse.has_value());
    EXPECT_NEAR(*inverse, 7.0, 1e-9);
}

TEST(ScaledUtility, RejectsBadConstruction) {
    auto base = std::make_shared<LogUtility>(1.0);
    EXPECT_THROW(ScaledUtility(0.0, base), std::invalid_argument);
    EXPECT_THROW(ScaledUtility(1.0, nullptr), std::invalid_argument);
}

TEST(UtilityClone, ClonesAreIndependentAndEqual) {
    LogUtility log_u(20.0);
    PowerUtility pow_u(5.0, 0.75);
    const auto log_clone = log_u.clone();
    const auto pow_clone = pow_u.clone();
    EXPECT_DOUBLE_EQ(log_clone->value(10.0), log_u.value(10.0));
    EXPECT_DOUBLE_EQ(pow_clone->value(10.0), pow_u.value(10.0));
}

TEST(UtilityDescribe, MentionsShape) {
    EXPECT_NE(LogUtility(2.0).describe().find("log"), std::string::npos);
    EXPECT_NE(PowerUtility(2.0, 0.5).describe().find("r^"), std::string::npos);
}

// ---- property sweeps: increasing + strictly concave on [r_min, r_max] ----

class UtilityProperties : public ::testing::TestWithParam<std::shared_ptr<UtilityFunction>> {};

TEST_P(UtilityProperties, IsIncreasing) {
    const auto& u = *GetParam();
    double prev = u.value(10.0);
    for (double r = 20.0; r <= 1000.0; r += 10.0) {
        const double v = u.value(r);
        EXPECT_GT(v, prev) << "not increasing at r=" << r;
        prev = v;
    }
}

TEST_P(UtilityProperties, DerivativeIsPositiveAndStrictlyDecreasing) {
    const auto& u = *GetParam();
    double prev = u.derivative(10.0);
    EXPECT_GT(prev, 0.0);
    for (double r = 20.0; r <= 1000.0; r += 10.0) {
        const double d = u.derivative(r);
        EXPECT_GT(d, 0.0);
        EXPECT_LT(d, prev) << "derivative not strictly decreasing at r=" << r;
        prev = d;
    }
}

TEST_P(UtilityProperties, DerivativeMatchesFiniteDifference) {
    const auto& u = *GetParam();
    for (double r : {10.0, 55.0, 200.0, 900.0}) {
        const double h = 1e-6 * r;
        const double fd = (u.value(r + h) - u.value(r - h)) / (2.0 * h);
        EXPECT_NEAR(u.derivative(r), fd, 1e-5 * std::abs(fd));
    }
}

TEST_P(UtilityProperties, MidpointConcavity) {
    const auto& u = *GetParam();
    for (double a = 10.0; a < 900.0; a += 111.0) {
        const double b = a + 100.0;
        EXPECT_GT(u.value(0.5 * (a + b)), 0.5 * (u.value(a) + u.value(b)))
            << "not strictly concave on [" << a << "," << b << "]";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UtilityProperties,
    ::testing::Values(std::make_shared<LogUtility>(1.0), std::make_shared<LogUtility>(100.0),
                      std::make_shared<PowerUtility>(1.0, 0.25),
                      std::make_shared<PowerUtility>(10.0, 0.5),
                      std::make_shared<PowerUtility>(40.0, 0.75),
                      std::static_pointer_cast<UtilityFunction>(std::make_shared<ScaledUtility>(
                          3.0, std::make_shared<LogUtility>(7.0)))));

// ---- sigmoid / step utilities (non-concave sensitivity classes) --------

TEST(SigmoidUtility, NormalizedLogistic) {
    using lrgp::utility::SigmoidUtility;
    SigmoidUtility u(12.0, 5.0, 2.0);
    // U(0) = 0 by normalization; saturates at the weight.
    EXPECT_DOUBLE_EQ(u.value(0.0), 0.0);
    // Saturates at the weight (exactly, once the exponential underflows).
    EXPECT_LE(u.value(100.0), 12.0);
    EXPECT_NEAR(u.value(100.0), 12.0, 1e-6);
    EXPECT_LT(u.value(8.0), 12.0);
    // Monotone increasing, steepest around the midpoint.
    double prev = u.value(0.0);
    for (double r = 0.5; r <= 12.0; r += 0.5) {
        EXPECT_GT(u.value(r), prev);
        prev = u.value(r);
    }
    EXPECT_GT(u.derivative(5.0), u.derivative(1.0));
    EXPECT_GT(u.derivative(5.0), u.derivative(9.0));
}

TEST(SigmoidUtility, DerivativeMatchesFiniteDifference) {
    using lrgp::utility::SigmoidUtility;
    SigmoidUtility u(7.0, 4.0, 1.5);
    for (double r : {0.5, 2.0, 4.0, 6.5, 10.0}) {
        const double h = 1e-6 * (1.0 + r);
        const double fd = (u.value(r + h) - u.value(r - h)) / (2.0 * h);
        EXPECT_NEAR(u.derivative(r), fd, 1e-5 * (std::abs(fd) + 1e-9));
    }
}

TEST(SigmoidUtility, ReportsNonConcaveAndScaledForwards) {
    using lrgp::utility::SigmoidUtility;
    const auto s = std::make_shared<SigmoidUtility>(10.0, 3.0, 2.0);
    EXPECT_FALSE(s->concave());
    EXPECT_TRUE(LogUtility(5.0).concave());
    EXPECT_TRUE(PowerUtility(5.0, 0.5).concave());
    EXPECT_FALSE(ScaledUtility(2.0, s).concave());
    EXPECT_TRUE(ScaledUtility(2.0, std::make_shared<LogUtility>(5.0)).concave());
}

TEST(SigmoidUtility, CloneAndDescribe) {
    using lrgp::utility::SigmoidUtility;
    SigmoidUtility u(9.0, 2.5, 4.0);
    const auto clone = u.clone();
    EXPECT_DOUBLE_EQ(clone->value(3.0), u.value(3.0));
    EXPECT_FALSE(clone->concave());
    EXPECT_NE(u.describe().find("sigmoid"), std::string::npos);
}

TEST(SigmoidUtility, RejectsBadParameters) {
    using lrgp::utility::SigmoidUtility;
    EXPECT_THROW(SigmoidUtility(0.0, 1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(SigmoidUtility(1.0, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(SigmoidUtility(1.0, 1.0, 0.0), std::invalid_argument);
}

}  // namespace
