#include <gtest/gtest.h>

#include <cmath>

#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using workload::UtilityShape;

TEST(BaseWorkload, MatchesTableOneShape) {
    const auto spec = workload::make_base_workload();
    EXPECT_EQ(spec.flowCount(), 6u);
    EXPECT_EQ(spec.classCount(), 20u);
    // 3 c-nodes + 1 producer node.
    EXPECT_EQ(spec.nodeCount(), 4u);
    EXPECT_EQ(spec.linkCount(), 0u);  // no link bottlenecks in the paper's workload
}

TEST(BaseWorkload, ResourceConstants) {
    const auto spec = workload::make_base_workload();
    for (const model::ClassSpec& c : spec.classes()) EXPECT_DOUBLE_EQ(c.consumer_cost, 19.0);
    for (const model::FlowSpec& f : spec.flows()) {
        EXPECT_DOUBLE_EQ(f.rate_min, 10.0);
        EXPECT_DOUBLE_EQ(f.rate_max, 1000.0);
        for (const model::FlowNodeHop& hop : f.nodes) EXPECT_DOUBLE_EQ(hop.flow_node_cost, 3.0);
    }
    const auto s0 = workload::find_node(spec, "r0_S0");
    EXPECT_DOUBLE_EQ(spec.node(s0).capacity, 9.0e5);
}

TEST(BaseWorkload, ClassPairsShareFlowMaxAndRank) {
    const auto spec = workload::make_base_workload();
    // Classes come in pairs (2k, 2k+1) differing only in node.
    for (std::size_t k = 0; k + 1 < spec.classCount(); k += 2) {
        const auto& a = spec.classes()[k];
        const auto& b = spec.classes()[k + 1];
        EXPECT_EQ(a.flow, b.flow);
        EXPECT_EQ(a.max_consumers, b.max_consumers);
        EXPECT_NE(a.node, b.node);
        EXPECT_DOUBLE_EQ(a.utility->value(10.0), b.utility->value(10.0));
    }
}

TEST(BaseWorkload, TableOnePopulationsAndRanks) {
    const auto spec = workload::make_base_workload();
    // Spot-check Table 1 rows: class 0 (flow 0, n_max 400, rank 20);
    // class 18 (flow 5, n_max 1500, rank 100).
    const auto& c0 = spec.classes()[0];
    EXPECT_EQ(c0.flow, workload::find_flow(spec, "f0_0"));
    EXPECT_EQ(c0.max_consumers, 400);
    EXPECT_NEAR(c0.utility->value(std::exp(1.0) - 1.0), 20.0, 1e-9);  // rank*log(e)=rank
    const auto& c18 = spec.classes()[18];
    EXPECT_EQ(c18.flow, workload::find_flow(spec, "f0_5"));
    EXPECT_EQ(c18.max_consumers, 1500);
    EXPECT_NEAR(c18.utility->value(std::exp(1.0) - 1.0), 100.0, 1e-9);
}

TEST(BaseWorkload, FlowsRoutedOnlyToTheirClassNodes) {
    const auto spec = workload::make_base_workload();
    for (const model::FlowSpec& f : spec.flows()) {
        // Flow 0 and 3 reach S0+S2; flow 1 and 4 reach S0+S1; 2 and 5 S1+S2.
        EXPECT_EQ(f.nodes.size(), 2u) << f.name;
        for (const model::FlowNodeHop& hop : f.nodes) {
            bool has_class = false;
            for (model::ClassId j : spec.classesOfFlow(f.id))
                if (spec.consumerClass(j).node == hop.node) has_class = true;
            EXPECT_TRUE(has_class) << f.name << " routed to a node without its classes";
        }
    }
}

TEST(BaseWorkload, ShapesProduceExpectedUtilities) {
    const auto log_spec = workload::make_base_workload(UtilityShape::kLog);
    const auto pow_spec = workload::make_base_workload(UtilityShape::kPow05);
    const auto& u_log = *log_spec.classes()[0].utility;
    const auto& u_pow = *pow_spec.classes()[0].utility;
    EXPECT_NEAR(u_log.value(9.0), 20.0 * std::log(10.0), 1e-9);
    EXPECT_NEAR(u_pow.value(9.0), 20.0 * 3.0, 1e-9);
}

TEST(ScaledWorkload, FlowReplicasScaleEverything) {
    workload::WorkloadOptions options;
    options.flow_replicas = 2;
    const auto spec = workload::make_scaled_workload(options);
    EXPECT_EQ(spec.flowCount(), 12u);
    EXPECT_EQ(spec.classCount(), 40u);
    EXPECT_EQ(spec.nodeCount(), 8u);  // 2 * (3 c-nodes + producer)
}

TEST(ScaledWorkload, CNodeReplicasScaleClassesNotFlows) {
    workload::WorkloadOptions options;
    options.cnode_replicas = 2;
    const auto spec = workload::make_scaled_workload(options);
    EXPECT_EQ(spec.flowCount(), 6u);
    EXPECT_EQ(spec.classCount(), 40u);
    EXPECT_EQ(spec.nodeCount(), 7u);  // 6 c-nodes + producer
    // Every flow now reaches twice as many nodes.
    for (const model::FlowSpec& f : spec.flows()) EXPECT_EQ(f.nodes.size(), 4u);
}

TEST(ScaledWorkload, RejectsBadReplicaCounts) {
    workload::WorkloadOptions options;
    options.flow_replicas = 0;
    EXPECT_THROW(workload::make_scaled_workload(options), std::invalid_argument);
}

TEST(ScaledWorkload, Table2Shapes) {
    // The six Table 2 rows: (flows, c-nodes) pairs.
    const std::pair<int, int> rows[] = {{1, 1}, {2, 1}, {4, 1}, {1, 2}, {1, 4}, {1, 8}};
    const std::pair<std::size_t, std::size_t> expected[] = {
        {6, 3}, {12, 6}, {24, 12}, {6, 6}, {6, 12}, {6, 24}};
    for (std::size_t k = 0; k < 6; ++k) {
        workload::WorkloadOptions options;
        options.flow_replicas = rows[k].first;
        options.cnode_replicas = rows[k].second;
        const auto spec = workload::make_scaled_workload(options);
        EXPECT_EQ(spec.flowCount(), expected[k].first);
        EXPECT_EQ(spec.nodeCount() - static_cast<std::size_t>(rows[k].first),
                  expected[k].second)
            << "c-node count mismatch at row " << k;
    }
}

TEST(WorkloadLookups, FindThrowsOnUnknownNames) {
    const auto spec = workload::make_base_workload();
    EXPECT_THROW((void)workload::find_flow(spec, "nope"), std::invalid_argument);
    EXPECT_THROW((void)workload::find_node(spec, "nope"), std::invalid_argument);
    EXPECT_NO_THROW((void)workload::find_flow(spec, "f0_5"));
    EXPECT_NO_THROW((void)workload::find_node(spec, "r0_S1"));
}

TEST(ShapeNames, AllDistinct) {
    EXPECT_EQ(workload::shape_name(UtilityShape::kLog), "log(1+r)");
    EXPECT_EQ(workload::shape_name(UtilityShape::kPow025), "r^0.25");
    EXPECT_EQ(workload::shape_name(UtilityShape::kPow05), "r^0.5");
    EXPECT_EQ(workload::shape_name(UtilityShape::kPow075), "r^0.75");
}

}  // namespace
