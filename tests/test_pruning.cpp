#include <gtest/gtest.h>

#include <memory>

#include "lrgp/optimizer.hpp"
#include "lrgp/parallel_engine.hpp"
#include "lrgp/pruning.hpp"
#include "lrgp/two_stage.hpp"
#include "model/analysis.hpp"
#include "workload/random_workload.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;

/// A workload where stage one provably wastes resources: flow "wide" is
/// routed to two nodes but its class at the second node always loses the
/// benefit-cost contest there, so the F cost it pays at that node buys
/// nothing and stage two should reclaim it.
model::ProblemSpec wastefulProblem() {
    model::ProblemBuilder b;
    const auto src = b.addNode("P", 1e9);
    const auto n1 = b.addNode("N1", 5e4);
    const auto n2 = b.addNode("N2", 5e4);
    const auto wide = b.addFlow("wide", src, 10.0, 1000.0);
    b.routeThroughNode(wide, n1, 3.0);
    b.routeThroughNode(wide, n2, 30.0);  // expensive hop
    b.addClass("w1", wide, n1, 200, 19.0, std::make_shared<utility::LogUtility>(50.0));
    // At n2 the class is worthless compared to the local flow's class.
    b.addClass("w2", wide, n2, 200, 19.0, std::make_shared<utility::LogUtility>(0.001));
    const auto local = b.addFlow("local", src, 10.0, 1000.0);
    b.routeThroughNode(local, n2, 3.0);
    b.addClass("l2", local, n2, 500, 19.0, std::make_shared<utility::LogUtility>(80.0));
    return b.build();
}

TEST(Pruning, RemovesConsumerlessRoutes) {
    const auto spec = wastefulProblem();
    core::LrgpOptimizer opt(spec);
    opt.run(200);
    // The wide flow's class at N2 must lose to the local class.
    const auto& alloc = opt.allocation();
    ASSERT_EQ(alloc.populations[1], 0) << "test premise: w2 gets nothing";
    ASSERT_GT(alloc.populations[0], 0);

    core::PruneReport report;
    const auto pruned = core::prune_problem(spec, alloc, &report);
    EXPECT_GE(report.routes_removed, 1);
    EXPECT_EQ(report.classes_deactivated, 1);  // w2
    // The pruned hop keeps the node in the route but with zero cost.
    EXPECT_DOUBLE_EQ(pruned.flowNodeCost(model::NodeId{2}, model::FlowId{0}), 0.0);
    // Surviving hops keep their coefficients.
    EXPECT_DOUBLE_EQ(pruned.flowNodeCost(model::NodeId{1}, model::FlowId{0}), 3.0);
}

TEST(Pruning, StageTwoNeverLosesUtility) {
    const auto result = core::two_stage_optimize(wastefulProblem());
    EXPECT_GE(result.stage_two_utility, result.stage_one_utility * (1.0 - 1e-6));
}

TEST(Pruning, StageTwoGainsWhenRoutesWereWasteful) {
    const auto result = core::two_stage_optimize(wastefulProblem());
    ASSERT_GE(result.prune.routes_removed, 1);
    // N2 no longer pays 30 units/msg for the wide flow; the local class
    // gets that capacity back.
    EXPECT_GT(result.stage_two_utility, result.stage_one_utility * 1.001);
}

TEST(Pruning, BaseWorkloadIsAlreadyTight) {
    // Table 1 routes flows only where their classes live and every class
    // pair wins some admission, so pruning should find nothing (or at
    // most classes with zero admissions at one of their two nodes).
    const auto spec = workload::make_base_workload();
    core::LrgpOptimizer opt(spec);
    opt.run(150);
    core::PruneReport report;
    (void)core::prune_problem(spec, opt.allocation(), &report);
    // Flows always keep at least one consuming route.
    const auto result = core::two_stage_optimize(spec);
    EXPECT_GE(result.stage_two_utility, result.stage_one_utility * 0.999);
}

TEST(Pruning, SizesValidated) {
    const auto spec = workload::make_base_workload();
    EXPECT_THROW((void)core::prune_problem(spec, model::Allocation{}), std::invalid_argument);
}

TEST(Pruning, PreservesEntityIdentity) {
    const auto spec = wastefulProblem();
    core::LrgpOptimizer opt(spec);
    opt.run(100);
    const auto pruned = core::prune_problem(spec, opt.allocation());
    ASSERT_EQ(pruned.flowCount(), spec.flowCount());
    ASSERT_EQ(pruned.classCount(), spec.classCount());
    ASSERT_EQ(pruned.nodeCount(), spec.nodeCount());
    for (std::size_t i = 0; i < spec.flowCount(); ++i)
        EXPECT_EQ(pruned.flows()[i].name, spec.flows()[i].name);
    for (std::size_t j = 0; j < spec.classCount(); ++j)
        EXPECT_EQ(pruned.classes()[j].name, spec.classes()[j].name);
}

TEST(Pruning, InactiveFlowsStayInactive) {
    auto spec = wastefulProblem();
    spec.setFlowActive(model::FlowId{1}, false);
    auto alloc = model::Allocation::minimal(spec);
    const auto pruned = core::prune_problem(spec, alloc);
    EXPECT_FALSE(pruned.flowActive(model::FlowId{1}));
}

TEST(Pruning, PrunedProblemPreservesAllocationEvaluationOnSeededInstances) {
    // Pruning only drops (flow, node) routes whose classes got zero
    // consumers, so the stage-one allocation itself must evaluate
    // identically on the pruned problem: the Eq. 1 utility is bitwise
    // equal (same class terms in the same order) and resource usage can
    // only shrink (dropped hops stop paying F_{b,i} r_i).
    for (std::uint32_t seed = 1; seed <= 30; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        workload::RandomWorkloadOptions opt;
        opt.seed = seed;
        opt.link_bottleneck_probability = (seed % 3 == 0) ? 1.0 : 0.0;
        const model::ProblemSpec spec = workload::make_random_workload(opt);
        core::LrgpOptimizer optimizer(spec);
        optimizer.run(60);
        const model::Allocation& alloc = optimizer.allocation();

        const model::ProblemSpec pruned = core::prune_problem(spec, alloc);
        EXPECT_EQ(model::total_utility(spec, alloc), model::total_utility(pruned, alloc));
        for (const model::NodeSpec& b : spec.nodes())
            EXPECT_LE(model::node_usage(pruned, alloc, b.id),
                      model::node_usage(spec, alloc, b.id) * (1.0 + 1e-12))
                << "node " << b.name;
        for (const model::LinkSpec& l : spec.links())
            EXPECT_LE(model::link_usage(pruned, alloc, l.id),
                      model::link_usage(spec, alloc, l.id) * (1.0 + 1e-12))
                << "link " << l.name;
    }
}

TEST(Pruning, NoOpPruneReproducesUnprunedTrajectoryBitwise) {
    // When pruning removes nothing, the pruned spec must be the same
    // problem: fresh LRGP runs on it — serial and the incremental
    // engine — reproduce the unpruned serial trajectory bitwise.  On
    // instances where pruning did remove routes, the stage-two re-solve
    // must not lose utility.  Both branches must occur across the seeds.
    int noop_instances = 0;
    int pruned_instances = 0;
    for (std::uint32_t seed = 1; seed <= 30; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        workload::RandomWorkloadOptions opt;
        opt.seed = seed;
        const model::ProblemSpec spec = workload::make_random_workload(opt);
        core::LrgpOptimizer stage_one(spec);
        stage_one.run(60);

        core::PruneReport report;
        const model::ProblemSpec pruned =
            core::prune_problem(spec, stage_one.allocation(), &report);
        const bool noop = report.routes_removed == 0 && report.links_removed == 0 &&
                          report.classes_deactivated == 0;
        if (noop) {
            ++noop_instances;
            core::LrgpOptimizer on_spec(spec);
            core::LrgpOptimizer on_pruned(pruned);
            core::ParallelLrgpEngine inc_on_pruned(
                pruned, {}, {.threads = 2, .incremental = true});
            for (int i = 0; i < 40; ++i) {
                const core::IterationRecord& a = on_spec.step();
                const core::IterationRecord& b = on_pruned.step();
                const core::IterationRecord& c = inc_on_pruned.step();
                ASSERT_EQ(a.utility, b.utility) << "iter " << i;
                ASSERT_EQ(a.allocation.rates, b.allocation.rates);
                ASSERT_EQ(a.allocation.populations, b.allocation.populations);
                ASSERT_EQ(b.utility, c.utility) << "iter " << i;
                ASSERT_EQ(b.allocation.rates, c.allocation.rates);
                ASSERT_EQ(b.allocation.populations, c.allocation.populations);
                ASSERT_EQ(b.prices.node, c.prices.node);
                ASSERT_EQ(b.prices.link, c.prices.link);
            }
        } else {
            ++pruned_instances;
            // LRGP is a heuristic: on contended random instances the
            // stage-two re-solve can settle at a marginally lower fixed
            // point (sub-percent in practice), so the bound is loose —
            // it guards against pruning breaking the problem, not
            // against the solver's own wobble.
            const auto result = core::two_stage_optimize(spec);
            EXPECT_GE(result.stage_two_utility, result.stage_one_utility * 0.99);
        }
    }
    // The seeds must exercise both the identity path and the prune path;
    // if either count drops to zero the generator changed under us.
    EXPECT_GT(noop_instances, 0);
    EXPECT_GT(pruned_instances, 0);
}

TEST(Pruning, DeadFlowLosesItsLinks) {
    // A flow whose classes all got zero consumers stops consuming links.
    model::ProblemBuilder b;
    const auto src = b.addNode("P", 1e9);
    const auto n1 = b.addNode("N1", 1e5);
    const auto link = b.addLink("uplink", src, n1, 1e4);
    const auto f = b.addFlow("f", src, 10.0, 100.0);
    b.routeOverLink(f, link, 1.0);
    b.routeThroughNode(f, n1, 1.0);
    b.addClass("c", f, n1, 10, 5.0, std::make_shared<utility::LogUtility>(1.0));
    const auto spec = b.build();

    auto alloc = model::Allocation::minimal(spec);  // zero consumers
    core::PruneReport report;
    const auto pruned = core::prune_problem(spec, alloc, &report);
    EXPECT_EQ(report.links_removed, 1);
    EXPECT_TRUE(pruned.flowsOnLink(link).empty());
}

}  // namespace
