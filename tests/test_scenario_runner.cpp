// Cross-engine differential matrix over pinned scenario catalog cells:
// serial / compiled / incremental / sharded(K=1) must agree bitwise on
// replayed scenarios; sharded K=4 within 1% of best-known; the async
// runtime reconverges on churn; plus the PR 4 overdrive-vs-headroom
// dataplane regression and recovery bounds on every dynamic cell.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace {

using lrgp::scenario::build_scenario;
using lrgp::scenario::find_scenario;
using lrgp::scenario::run_scenario;
using lrgp::scenario::RunnerOptions;
using lrgp::scenario::ScenarioRunReport;
using lrgp::scenario::ScenarioSpec;

// The static differential cell (no dynamic ops) and the churn cell the
// replay differential runs on.  Pinned: these are also the bench and
// golden cells, so a drift shows up in three harnesses at once.
constexpr const char* kStaticCell = "fat_tree_heavy_tail_shifted_log";
constexpr const char* kChurnCell = "small_world_churn_sigmoid";
constexpr const char* kAsyncCell = "fat_tree_churn_step";

ScenarioRunReport run_engine(const ScenarioSpec& spec, const std::string& engine, int shards = 1) {
    RunnerOptions options;
    options.engine = engine;
    options.shards = shards;
    return run_scenario(spec, options);
}

void expect_bitwise_equal(const lrgp::model::Allocation& a, const lrgp::model::Allocation& b,
                          const std::string& label) {
    ASSERT_EQ(a.rates.size(), b.rates.size()) << label;
    ASSERT_EQ(a.populations.size(), b.populations.size()) << label;
    for (std::size_t i = 0; i < a.rates.size(); ++i)
        EXPECT_EQ(a.rates[i], b.rates[i]) << label << ": rate " << i;
    for (std::size_t j = 0; j < a.populations.size(); ++j)
        EXPECT_EQ(a.populations[j], b.populations[j]) << label << ": population " << j;
}

// ------------------------------------------------------ differential matrix

TEST(ScenarioDifferential, StaticCellBitwiseAcrossEngineZoo) {
    const ScenarioSpec spec = build_scenario(find_scenario(kStaticCell));
    const auto serial = run_engine(spec, "serial");
    const auto compiled = run_engine(spec, "compiled");
    const auto incremental = run_engine(spec, "incremental");
    const auto sharded1 = run_engine(spec, "sharded", 1);
    EXPECT_TRUE(serial.converged);
    EXPECT_EQ(serial.final_utility, compiled.final_utility);
    EXPECT_EQ(serial.final_utility, incremental.final_utility);
    EXPECT_EQ(serial.final_utility, sharded1.final_utility);
    expect_bitwise_equal(serial.final_allocation, compiled.final_allocation, "compiled");
    expect_bitwise_equal(serial.final_allocation, incremental.final_allocation, "incremental");
    expect_bitwise_equal(serial.final_allocation, sharded1.final_allocation, "sharded K=1");
}

TEST(ScenarioDifferential, ChurnReplayBitwiseSerialVsIncremental) {
    // Dynamic ops flow through removeFlow/restoreFlow/setClassMaxConsumers
    // on both engines; the replayed trajectories must match exactly.
    const ScenarioSpec spec = build_scenario(find_scenario(kChurnCell));
    ASSERT_FALSE(spec.schedule.empty());
    const auto serial = run_engine(spec, "serial");
    const auto incremental = run_engine(spec, "incremental");
    EXPECT_EQ(serial.ops_applied, spec.schedule.size());
    EXPECT_EQ(serial.ops_applied, incremental.ops_applied);
    EXPECT_EQ(serial.final_utility, incremental.final_utility);
    expect_bitwise_equal(serial.final_allocation, incremental.final_allocation,
                         "churn incremental");
    ASSERT_EQ(serial.utility_trace.samples().size(), incremental.utility_trace.samples().size());
    for (std::size_t i = 0; i < serial.utility_trace.samples().size(); ++i)
        EXPECT_EQ(serial.utility_trace.samples()[i], incremental.utility_trace.samples()[i])
            << "trace sample " << i;
}

TEST(ScenarioDifferential, ShardedFourWithinOnePercentOfBest) {
    const ScenarioSpec spec = build_scenario(find_scenario(kStaticCell));
    const auto sharded4 = run_engine(spec, "sharded", 4);
    // Budget reconciliation decays its step, so K=4 lands near — not on —
    // the monolithic optimum; the runner's warm-started convergence solve
    // keeps the gap under 1% (measured ~0.65%).
    EXPECT_GT(sharded4.best_known_utility, 0.0);
    EXPECT_GE(sharded4.utility_vs_best, 0.99);
    EXPECT_LE(sharded4.utility_vs_best, 1.0 + 1e-9);
}

TEST(ScenarioDifferential, AsyncRuntimeReconvergesOnChurn) {
    const ScenarioSpec spec = build_scenario(find_scenario(kAsyncCell));
    RunnerOptions options;
    options.engine = "async";
    options.shards = 4;
    const auto report = run_scenario(spec, options);
    EXPECT_EQ(report.ops_applied, spec.schedule.size());
    // The async agents never publish a merged allocation; the utility
    // trace plus final utility are the observable surface.
    EXPECT_TRUE(report.final_allocation.rates.empty());
    EXPECT_GE(report.utility_vs_best, 0.90) << "async drifted from best-known";
    EXPECT_GT(report.utility_trace.samples().size(), 0u);
}

TEST(ScenarioDifferential, RejectsUnknownEngine) {
    const ScenarioSpec spec = build_scenario(find_scenario(kStaticCell));
    RunnerOptions options;
    options.engine = "quantum";
    EXPECT_THROW((void)run_scenario(spec, options), std::invalid_argument);
}

// --------------------------------------------------- tracking + recovery

TEST(ScenarioTracking, EveryCatalogCellTracksBestKnown) {
    for (const auto& cell : lrgp::scenario::scenario_catalog()) {
        const ScenarioSpec spec = build_scenario(cell);
        const auto report = run_engine(spec, "incremental");
        EXPECT_TRUE(report.converged) << cell.name;
        EXPECT_GE(report.utility_vs_best, 0.95) << cell.name;
        EXPECT_LE(report.utility_vs_best, 1.0 + 1e-9) << cell.name;
        EXPECT_EQ(report.ops_applied, spec.schedule.size()) << cell.name;
        if (spec.principal_disturbance >= 0.0) {
            EXPECT_TRUE(report.has_recovery) << cell.name;
            EXPECT_TRUE(report.recovery.reconverged) << cell.name;
            EXPECT_GE(report.recovery.time_to_reconverge, 0.0) << cell.name;
        } else {
            EXPECT_FALSE(report.has_recovery) << cell.name;
        }
    }
}

// -------------------------------------- PR 4 overdrive regression (pinned)

TEST(ScenarioOverdrive, OverdrivenPlantDropsWhileHeadroomTwinDelivers) {
    // The planner's problem is identical for the twins (same seed 103);
    // only the physical capacity the dataplane simulates differs.  The
    // overdriven plant must shed >= 20% of its traffic while the headroom
    // twin delivers the planned utility within 2%.
    RunnerOptions options;
    options.engine = "incremental";
    options.with_dataplane = true;

    const ScenarioSpec overdrive =
        build_scenario(find_scenario("fat_tree_heavy_tail_shifted_log_overdrive"));
    const auto over = run_scenario(overdrive, options);
    ASSERT_TRUE(over.has_dataplane);
    EXPECT_GE(over.drop_rate, 0.20) << "overdriven plant no longer sheds load";

    const ScenarioSpec headroom = build_scenario(find_scenario("fat_tree_heavy_tail_shifted_log"));
    const auto head = run_scenario(headroom, options);
    ASSERT_TRUE(head.has_dataplane);
    EXPECT_LE(head.drop_rate, 0.02) << "headroom twin started dropping";
    EXPECT_GE(head.achieved_vs_planned, 0.98) << "headroom twin missed its planned utility";

    // Same plan, different plant: the planner's view of both runs agrees.
    EXPECT_EQ(over.final_utility, head.final_utility);
    EXPECT_GT(over.drop_rate, head.drop_rate + 0.15);
}

TEST(ScenarioOverdrive, DataplaneRunIsDeterministic) {
    RunnerOptions options;
    options.engine = "incremental";
    options.with_dataplane = true;
    const ScenarioSpec spec =
        build_scenario(find_scenario("fat_tree_heavy_tail_shifted_log_overdrive"));
    const auto a = run_scenario(spec, options);
    const auto b = run_scenario(spec, options);
    EXPECT_EQ(a.drop_rate, b.drop_rate);
    EXPECT_EQ(a.achieved_mean, b.achieved_mean);
    EXPECT_EQ(a.final_utility, b.final_utility);
}

}  // namespace
