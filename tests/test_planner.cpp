#include <gtest/gtest.h>

#include "planner/capacity_planner.hpp"
#include "test_helpers.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;
using planner::evaluate_at_scale;
using planner::min_capacity_for_admission;
using planner::PlannerOptions;
using planner::provisioning_curve;

TEST(Planner, AdmissionMonotoneInScale) {
    const auto spec = workload::make_base_workload();
    double prev_ratio = -1.0;
    for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        const auto point = evaluate_at_scale(spec, scale);
        EXPECT_GE(point.admission_ratio, prev_ratio - 0.02)
            << "admission dropped at scale " << scale;
        prev_ratio = point.admission_ratio;
    }
}

TEST(Planner, BaseWorkloadIsUnderProvisionedForFullAdmission) {
    // At scale 1 the base workload denies plenty of consumers (that is
    // the point of the paper's admission control).
    const auto point = evaluate_at_scale(workload::make_base_workload(), 1.0);
    EXPECT_LT(point.admission_ratio, 0.9);
    EXPECT_GT(point.admission_ratio, 0.1);
    EXPECT_GT(point.hottest_node_utilization, 0.95);
}

TEST(Planner, FindsMinimalScaleForTarget) {
    const auto spec = workload::make_base_workload();
    PlannerOptions options;
    options.target_admission_ratio = 0.9;
    options.lrgp_iterations = 100;
    const auto point = min_capacity_for_admission(spec, options);
    EXPECT_GE(point.admission_ratio, 0.9);
    EXPECT_GT(point.capacity_scale, 1.0);  // needs more than the paper's 9e5
    // Minimality: a noticeably smaller scale must miss the target.
    const auto below = evaluate_at_scale(spec, point.capacity_scale * 0.8, options);
    EXPECT_LT(below.admission_ratio, 0.9);
}

TEST(Planner, TrivialTargetNeedsNoExtraCapacity) {
    const auto spec = workload::make_base_workload();
    PlannerOptions options;
    options.target_admission_ratio = 0.05;
    options.lrgp_iterations = 80;
    const auto point = min_capacity_for_admission(spec, options);
    EXPECT_LE(point.capacity_scale, 1.0);
}

TEST(Planner, UnreachableTargetThrows) {
    // Tiny problem with a huge population and a low search ceiling.
    const auto t = lrgp::test::make_tiny_problem();
    PlannerOptions options;
    options.target_admission_ratio = 1.0;
    options.max_scale = 1.5;
    options.lrgp_iterations = 60;
    EXPECT_THROW((void)min_capacity_for_admission(t.spec, options), std::runtime_error);
}

TEST(Planner, CurveIsOrderedAndConsistent) {
    const auto spec = workload::make_base_workload();
    const auto curve = provisioning_curve(spec, {0.5, 1.0, 2.0});
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_DOUBLE_EQ(curve[0].capacity_scale, 0.5);
    EXPECT_DOUBLE_EQ(curve[2].capacity_scale, 2.0);
    EXPECT_LE(curve[0].utility, curve[2].utility);
    EXPECT_LE(curve[0].admission_ratio, curve[2].admission_ratio + 0.02);
}

TEST(Planner, Validation) {
    const auto spec = workload::make_base_workload();
    EXPECT_THROW((void)evaluate_at_scale(spec, 0.0), std::invalid_argument);
    PlannerOptions bad;
    bad.target_admission_ratio = 0.0;
    EXPECT_THROW((void)min_capacity_for_admission(spec, bad), std::invalid_argument);
}

}  // namespace
