#include <gtest/gtest.h>

#include <cmath>

#include "solver/root_finding.hpp"

namespace {

using lrgp::solver::bisect_decreasing;
using lrgp::solver::golden_section_maximize;
using lrgp::solver::newton_bisect_decreasing;
using lrgp::solver::RootOptions;

TEST(Bisect, FindsLinearRoot) {
    const auto r = bisect_decreasing([](double x) { return 5.0 - x; }, 0.0, 10.0);
    EXPECT_NEAR(r.root, 5.0, 1e-8);
}

TEST(Bisect, FindsNonlinearRoot) {
    // 100/(1+x) - 2 = 0  =>  x = 49
    const auto r = bisect_decreasing([](double x) { return 100.0 / (1.0 + x) - 2.0; }, 0.0, 1000.0);
    EXPECT_NEAR(r.root, 49.0, 1e-6);
}

TEST(Bisect, ExactRootAtBound) {
    const auto lo = bisect_decreasing([](double x) { return -x; }, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(lo.root, 0.0);
    const auto hi = bisect_decreasing([](double x) { return 1.0 - x; }, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(hi.root, 1.0);
}

TEST(Bisect, RejectsEmptyBracket) {
    EXPECT_THROW(bisect_decreasing([](double) { return 0.0; }, 1.0, 1.0), std::invalid_argument);
}

TEST(Bisect, RejectsNonBracketingFunction) {
    // f > 0 on the whole interval: no root inside.
    EXPECT_THROW(bisect_decreasing([](double) { return 1.0; }, 0.0, 1.0), std::invalid_argument);
}

TEST(NewtonBisect, MatchesBisectionOnSmoothFunction) {
    auto f = [](double x) { return 50.0 / (1.0 + x) - 0.7; };
    auto df = [](double x) { return -50.0 / ((1.0 + x) * (1.0 + x)); };
    const auto nb = newton_bisect_decreasing(f, df, 0.0, 1000.0);
    const auto bi = bisect_decreasing(f, 0.0, 1000.0);
    EXPECT_NEAR(nb.root, bi.root, 1e-6);
    // Newton should not need more iterations than plain bisection.
    EXPECT_LE(nb.iterations, bi.iterations + 1);
}

TEST(NewtonBisect, SurvivesZeroDerivativeRegions) {
    // Piecewise: flat then dropping; derivative zero in the flat part.
    auto f = [](double x) { return x < 5.0 ? 1.0 : 6.0 - x; };
    auto df = [](double x) { return x < 5.0 ? 0.0 : -1.0; };
    const auto r = newton_bisect_decreasing(f, df, 0.0, 10.0);
    EXPECT_NEAR(r.root, 6.0, 1e-6);
}

TEST(GoldenSection, MaximizesConcaveFunction) {
    // max of -(x-3)^2 at x = 3
    const auto r = golden_section_maximize([](double x) { return -(x - 3.0) * (x - 3.0); },
                                           -10.0, 10.0);
    EXPECT_NEAR(r.root, 3.0, 1e-6);
}

TEST(GoldenSection, MaximizesLogObjective) {
    // max 100*log(1+x) - 2x at x = 49
    const auto r = golden_section_maximize(
        [](double x) { return 100.0 * std::log1p(x) - 2.0 * x; }, 0.0, 1000.0,
        RootOptions{1e-9, 400});
    EXPECT_NEAR(r.root, 49.0, 1e-4);
}

TEST(GoldenSection, BoundaryMaximum) {
    // Increasing function: max at the right bound.
    const auto r = golden_section_maximize([](double x) { return x; }, 0.0, 7.0);
    EXPECT_NEAR(r.root, 7.0, 1e-6);
}

TEST(GoldenSection, RejectsInvertedInterval) {
    EXPECT_THROW(golden_section_maximize([](double x) { return x; }, 1.0, 0.0),
                 std::invalid_argument);
}

// Property sweep: for a family of decreasing functions w/(1+x) - p, the
// solvers must agree with the closed form x = w/p - 1.
struct RootCase {
    double w;
    double p;
};

class RootSweep : public ::testing::TestWithParam<RootCase> {};

TEST_P(RootSweep, SolversAgreeWithClosedForm) {
    const auto [w, p] = GetParam();
    auto f = [w2 = w, p2 = p](double x) { return w2 / (1.0 + x) - p2; };
    auto df = [w2 = w](double x) { return -w2 / ((1.0 + x) * (1.0 + x)); };
    const double expected = w / p - 1.0;
    ASSERT_GT(expected, 0.0);
    const double hi = expected * 10.0 + 10.0;
    EXPECT_NEAR(bisect_decreasing(f, 0.0, hi).root, expected, 1e-6 * (1.0 + expected));
    EXPECT_NEAR(newton_bisect_decreasing(f, df, 0.0, hi).root, expected,
                1e-6 * (1.0 + expected));
}

INSTANTIATE_TEST_SUITE_P(Family, RootSweep,
                         ::testing::Values(RootCase{10.0, 1.0}, RootCase{100.0, 2.0},
                                           RootCase{1000.0, 0.5}, RootCase{42.0, 0.042},
                                           RootCase{7.0, 3.0}, RootCase{1e6, 10.0}));

}  // namespace
