// Bitwise-equivalence suite for ParallelLrgpEngine vs LrgpOptimizer.
//
// The engine's contract is not "close": it must reproduce the serial
// optimizer's utility, rate, population and price trajectories *exactly*
// (operator== on doubles), for any thread count, across random
// workloads, every utility family, and mid-run dynamic changes.

#include <gtest/gtest.h>

#include <initializer_list>
#include <memory>
#include <random>
#include <vector>

#include "lrgp/optimizer.hpp"
#include "lrgp/parallel_engine.hpp"
#include "lrgp/task_pool.hpp"
#include "model/problem.hpp"
#include "utility/utility_function.hpp"
#include "workload/random_workload.hpp"
#include "workload/workloads.hpp"

namespace lrgp {
namespace {

void expect_identical(const core::IterationRecord& serial, const core::IterationRecord& engine) {
    ASSERT_EQ(serial.iteration, engine.iteration);
    EXPECT_EQ(serial.utility, engine.utility);
    EXPECT_EQ(serial.allocation.rates, engine.allocation.rates);
    EXPECT_EQ(serial.allocation.populations, engine.allocation.populations);
    EXPECT_EQ(serial.prices.node, engine.prices.node);
    EXPECT_EQ(serial.prices.link, engine.prices.link);
}

/// Steps the serial optimizer and every engine `iterations` times,
/// comparing every engine record against the serial one.
template <class Mutator>
void run_lockstep(core::LrgpOptimizer& serial,
                  std::initializer_list<core::ParallelLrgpEngine*> engines, int iterations,
                  Mutator&& mutate_all) {
    for (int it = 1; it <= iterations; ++it) {
        SCOPED_TRACE(testing::Message() << "iteration " << it);
        mutate_all(it);
        const auto& s = serial.step();
        for (core::ParallelLrgpEngine* engine : engines) {
            SCOPED_TRACE(testing::Message()
                         << (engine->incremental() ? "incremental" : "full") << " engine, "
                         << engine->threadCount() << " threads");
            expect_identical(s, engine->step());
            if (testing::Test::HasFatalFailure()) return;
        }
    }
}

template <class Mutator>
void run_lockstep(core::LrgpOptimizer& serial, core::ParallelLrgpEngine& engine, int iterations,
                  Mutator&& mutate_both) {
    run_lockstep(serial, {&engine}, iterations, std::forward<Mutator>(mutate_both));
}

void run_lockstep(core::LrgpOptimizer& serial, core::ParallelLrgpEngine& engine, int iterations) {
    run_lockstep(serial, {&engine}, iterations, [](int) {});
}

TEST(ParallelEngine, RandomWorkloadsBitwiseIdenticalWithPerturbations) {
    constexpr int kSeeds = 50;
    constexpr int kIterations = 200;
    constexpr int kThreadCycle[] = {1, 2, 4};
    constexpr workload::UtilityShape kShapes[] = {
        workload::UtilityShape::kLog, workload::UtilityShape::kPow025,
        workload::UtilityShape::kPow05, workload::UtilityShape::kPow075};

    for (int seed = 1; seed <= kSeeds; ++seed) {
        SCOPED_TRACE(testing::Message() << "seed " << seed);
        workload::RandomWorkloadOptions options;
        options.seed = static_cast<std::uint32_t>(seed);
        options.shape = kShapes[seed % 4];
        options.link_bottleneck_probability = (seed % 3 == 0) ? 1.0 : 0.0;
        const model::ProblemSpec spec = workload::make_random_workload(options);

        core::LrgpOptimizer serial(spec);
        core::ParallelLrgpEngine engine(spec, {}, {.threads = kThreadCycle[seed % 3]});
        core::ParallelLrgpEngine incremental(
            spec, {}, {.threads = kThreadCycle[(seed + 1) % 3], .incremental = true});

        const model::FlowId victim{0};
        const model::NodeId squeezed{static_cast<std::uint32_t>(spec.nodeCount() - 1)};
        const model::ClassId shrunk{static_cast<std::uint32_t>(spec.classCount() - 1)};
        const double new_capacity = spec.node(squeezed).capacity * 0.8;
        const int new_max = spec.consumerClass(shrunk).max_consumers / 2;

        run_lockstep(serial, {&engine, &incremental}, kIterations, [&](int it) {
            switch (it) {
                case 60:
                    serial.removeFlow(victim);
                    engine.removeFlow(victim);
                    incremental.removeFlow(victim);
                    break;
                case 90:
                    serial.restoreFlow(victim);
                    engine.restoreFlow(victim);
                    incremental.restoreFlow(victim);
                    break;
                case 120:
                    serial.setNodeCapacity(squeezed, new_capacity);
                    engine.setNodeCapacity(squeezed, new_capacity);
                    incremental.setNodeCapacity(squeezed, new_capacity);
                    break;
                case 140:
                    serial.setClassMaxConsumers(shrunk, new_max);
                    engine.setClassMaxConsumers(shrunk, new_max);
                    incremental.setClassMaxConsumers(shrunk, new_max);
                    break;
                case 160: {
                    // Same synthetic warm start applied to all sides.
                    core::PriceVector warm = serial.prices();
                    for (double& p : warm.node) p *= 0.5;
                    for (double& p : warm.link) p *= 0.5;
                    std::vector<int> pops(spec.classCount(), 1);
                    serial.warmStart(warm, &pops);
                    engine.warmStart(warm, &pops);
                    incremental.warmStart(warm, &pops);
                    break;
                }
                default: break;
            }
        });
        if (testing::Test::HasFatalFailure()) return;
    }
}

TEST(ParallelEngine, BaseWorkloadAllShapesMatchSerialTrace) {
    for (workload::UtilityShape shape :
         {workload::UtilityShape::kLog, workload::UtilityShape::kPow025,
          workload::UtilityShape::kPow05, workload::UtilityShape::kPow075}) {
        SCOPED_TRACE(workload::shape_name(shape));
        const model::ProblemSpec spec = workload::make_base_workload(shape);
        core::LrgpOptimizer serial(spec);
        core::ParallelLrgpEngine engine(spec, {}, {.threads = 4});
        run_lockstep(serial, engine, 300);
        EXPECT_EQ(serial.utilityTrace().samples(), engine.utilityTrace().samples());
    }
}

TEST(ParallelEngine, RunUntilConvergedParity) {
    const model::ProblemSpec spec = workload::make_base_workload();
    core::LrgpOptimizer serial(spec);
    core::ParallelLrgpEngine engine(spec, {}, {.threads = 2});
    core::ParallelLrgpEngine incremental(spec, {}, {.threads = 2, .incremental = true});
    const auto s = serial.runUntilConverged(2000);
    const auto e = engine.runUntilConverged(2000);
    const auto i = incremental.runUntilConverged(2000);
    EXPECT_EQ(s, e);
    EXPECT_EQ(s, i);
    EXPECT_EQ(serial.iterationsRun(), engine.iterationsRun());
    EXPECT_EQ(serial.iterationsRun(), incremental.iterationsRun());
    EXPECT_EQ(serial.currentUtility(), engine.currentUtility());
    EXPECT_EQ(serial.currentUtility(), incremental.currentUtility());
}

TEST(ParallelEngine, IncrementalChaosReplayMatchesSerial) {
    // Fault-replay style schedule: a seeded RNG drives random dynamic ops
    // (flow churn, capacity changes, class ceiling changes, warm starts)
    // at random iterations.  The same schedule is applied to the serial
    // optimizer and the incremental engine; the dirty sets must widen
    // conservatively enough to keep every trajectory bitwise identical.
    constexpr int kSeeds = 12;
    constexpr int kIterations = 150;
    for (int seed = 1; seed <= kSeeds; ++seed) {
        SCOPED_TRACE(testing::Message() << "chaos seed " << seed);
        workload::RandomWorkloadOptions options;
        options.seed = static_cast<std::uint32_t>(1000 + seed);
        options.link_bottleneck_probability = (seed % 2 == 0) ? 1.0 : 0.0;
        const model::ProblemSpec spec = workload::make_random_workload(options);

        core::LrgpOptimizer serial(spec);
        core::ParallelLrgpEngine incremental(
            spec, {}, {.threads = 1 + seed % 4, .incremental = true});

        std::mt19937 rng(static_cast<std::uint32_t>(seed) * 7919u);
        std::vector<bool> active(spec.flowCount(), true);
        run_lockstep(serial, incremental, kIterations, [&](int) {
            if (rng() % 10 != 0) return;  // ~15 ops over the run
            switch (rng() % 5) {
                case 0: {  // crash a random active flow
                    const std::size_t f = rng() % spec.flowCount();
                    if (!active[f]) break;
                    serial.removeFlow(model::FlowId{static_cast<std::uint32_t>(f)});
                    incremental.removeFlow(model::FlowId{static_cast<std::uint32_t>(f)});
                    active[f] = false;
                    break;
                }
                case 1: {  // recover a random crashed flow
                    const std::size_t f = rng() % spec.flowCount();
                    if (active[f]) break;
                    serial.restoreFlow(model::FlowId{static_cast<std::uint32_t>(f)});
                    incremental.restoreFlow(model::FlowId{static_cast<std::uint32_t>(f)});
                    active[f] = true;
                    break;
                }
                case 2: {  // squeeze or relax a random node
                    const std::size_t b = rng() % spec.nodeCount();
                    const double scale = 0.7 + 0.6 * static_cast<double>(rng() % 100) / 100.0;
                    const model::NodeId node{static_cast<std::uint32_t>(b)};
                    const double capacity = serial.problem().node(node).capacity * scale;
                    serial.setNodeCapacity(node, capacity);
                    incremental.setNodeCapacity(node, capacity);
                    break;
                }
                case 3: {  // shrink or restore a random class ceiling
                    const std::size_t j = rng() % spec.classCount();
                    const model::ClassId cls{static_cast<std::uint32_t>(j)};
                    const int original = spec.consumerClass(cls).max_consumers;
                    const int ceiling = static_cast<int>(rng() % (original + 1));
                    serial.setClassMaxConsumers(cls, ceiling);
                    incremental.setClassMaxConsumers(cls, ceiling);
                    break;
                }
                default: {  // warm start both from perturbed prices
                    core::PriceVector warm = serial.prices();
                    for (double& p : warm.node) p *= 0.75;
                    for (double& p : warm.link) p *= 0.75;
                    serial.warmStart(warm);
                    incremental.warmStart(warm);
                    break;
                }
            }
        });
        if (testing::Test::HasFatalFailure()) return;
    }
}

TEST(ParallelEngine, IncrementalSteadyWorkloadEngagesCaches) {
    // A headroom workload (large node capacity, low rate cap) reaches a
    // floating-point fixpoint quickly; once there, the incremental engine
    // must actually skip — rate solves, node admissions and the utility
    // reduction — while staying bitwise identical to the serial optimizer.
    workload::WorkloadOptions options;
    options.flow_replicas = 2;
    options.cnode_replicas = 2;
    options.node_capacity = 3.0e7;
    options.rate_max = 60.0;
    const model::ProblemSpec spec = workload::make_scaled_workload(options);

    core::LrgpOptimizer serial(spec);
    core::ParallelLrgpEngine incremental(spec, {}, {.threads = 2, .incremental = true});
    EXPECT_TRUE(incremental.incremental());
    run_lockstep(serial, incremental, 300);

    const core::IncrementalStats stats = incremental.incrementalStats();
    EXPECT_GT(stats.skipped_solves, 0u) << "no rate solve was ever skipped";
    EXPECT_GT(stats.node_cache_hits, 0u) << "no node admission was ever skipped";
    EXPECT_GT(stats.utility_cache_hits, 0u) << "the Eq. 1 sum was never reused";
    EXPECT_GT(stats.dirty_flows, 0u) << "the transient must do real work";
    EXPECT_GT(stats.dirty_nodes, 0u);
    // In the converged tail skips dominate: far more cache hits than work.
    EXPECT_GT(stats.node_cache_hits, stats.dirty_nodes);
    EXPECT_GT(stats.skipped_solves, stats.dirty_flows);
}

TEST(ParallelEngine, IncrementalRankCacheReusedOnCapacityOnlyChange) {
    // setNodeCapacity dirties only the admission result, not the ranking:
    // the re-admission must reuse the cached benefit-cost ordering (a
    // rank cache hit) and still match the serial optimizer bitwise.  The
    // headroom workload quiesces, so no rate move re-dirties the rank.
    workload::WorkloadOptions options;
    options.node_capacity = 3.0e7;
    options.rate_max = 60.0;
    const model::ProblemSpec spec = workload::make_scaled_workload(options);
    core::LrgpOptimizer serial(spec);
    core::ParallelLrgpEngine incremental(spec, {}, {.threads = 2, .incremental = true});
    run_lockstep(serial, incremental, 120);
    const std::uint64_t rank_hits_before = incremental.incrementalStats().rank_cache_hits;

    const model::NodeId squeezed = workload::find_node(spec, "r0_S1");
    const double capacity = spec.node(squeezed).capacity * 0.9;
    serial.setNodeCapacity(squeezed, capacity);
    incremental.setNodeCapacity(squeezed, capacity);
    run_lockstep(serial, incremental, 40);
    EXPECT_GT(incremental.incrementalStats().rank_cache_hits, rank_hits_before);
}

TEST(ParallelEngine, IncrementalStatsStayZeroWhenDisabled) {
    const model::ProblemSpec spec = workload::make_base_workload();
    core::ParallelLrgpEngine engine(spec, {}, {.threads = 2});
    EXPECT_FALSE(engine.incremental());
    engine.run(25);
    const core::IncrementalStats stats = engine.incrementalStats();
    EXPECT_EQ(stats.dirty_flows, 0u);
    EXPECT_EQ(stats.skipped_solves, 0u);
    EXPECT_EQ(stats.dirty_nodes, 0u);
    EXPECT_EQ(stats.node_cache_hits, 0u);
    EXPECT_EQ(stats.rank_cache_hits, 0u);
    EXPECT_EQ(stats.dirty_links, 0u);
    EXPECT_EQ(stats.utility_cache_hits, 0u);
}

TEST(ParallelEngine, ShiftedLogUsesFastPathAndMatches) {
    model::ProblemBuilder b;
    const model::NodeId source = b.addNode("P", 1e9);
    const model::NodeId s0 = b.addNode("S0", 5e4);
    const model::NodeId s1 = b.addNode("S1", 8e4);
    const model::FlowId f0 = b.addFlow("f0", source, 5.0, 600.0);
    const model::FlowId f1 = b.addFlow("f1", source, 5.0, 600.0);
    b.routeThroughNode(f0, s0, 3.0);
    b.routeThroughNode(f0, s1, 3.0);
    b.routeThroughNode(f1, s1, 2.0);
    b.addClass("a", f0, s0, 300, 12.0, std::make_shared<utility::ShiftedLogUtility>(25.0, 4.0));
    b.addClass("b", f0, s1, 900, 12.0, std::make_shared<utility::ShiftedLogUtility>(6.0, 4.0));
    b.addClass("c", f1, s1, 500, 15.0, std::make_shared<utility::ShiftedLogUtility>(40.0, 9.0));
    const model::ProblemSpec spec = b.build();

    core::ParallelLrgpEngine engine(spec, {}, {.threads = 2});
    EXPECT_EQ(engine.compiled().flow_family[0], core::SolveFamily::kShiftedLog);
    EXPECT_EQ(engine.compiled().flow_family_param[0], 4.0);
    EXPECT_EQ(engine.compiled().flow_family[1], core::SolveFamily::kShiftedLog);

    core::LrgpOptimizer serial(spec);
    run_lockstep(serial, engine, 250);
}

TEST(ParallelEngine, MixedAndScaledFamiliesFallBackToReferenceSolver) {
    model::ProblemBuilder b;
    const model::NodeId source = b.addNode("P", 1e9);
    const model::NodeId s0 = b.addNode("S0", 6e4);
    const model::FlowId mixed = b.addFlow("mixed", source, 10.0, 800.0);
    const model::FlowId scaled = b.addFlow("scaled", source, 10.0, 800.0);
    b.routeThroughNode(mixed, s0, 3.0);
    b.routeThroughNode(scaled, s0, 3.0);
    // Mixed families within one flow; ScaledUtility chain on the other.
    b.addClass("m_log", mixed, s0, 400, 19.0, std::make_shared<utility::LogUtility>(10.0));
    b.addClass("m_pow", mixed, s0, 400, 19.0, std::make_shared<utility::PowerUtility>(2.0, 0.5));
    b.addClass("s_scaled", scaled, s0, 600, 19.0,
               std::make_shared<utility::ScaledUtility>(
                   3.0, std::make_shared<utility::LogUtility>(7.0)));
    const model::ProblemSpec spec = b.build();

    core::ParallelLrgpEngine engine(spec, {}, {.threads = 2});
    EXPECT_EQ(engine.compiled().flow_family[mixed.index()], core::SolveFamily::kGeneric);
    EXPECT_EQ(engine.compiled().flow_family[scaled.index()], core::SolveFamily::kGeneric);

    core::LrgpOptimizer serial(spec);
    run_lockstep(serial, engine, 250);
}

TEST(ParallelEngine, PhaseTimesAccumulateWhenEnabled) {
    const model::ProblemSpec spec = workload::make_base_workload();
    core::ParallelLrgpEngine engine(spec, {},
                                    {.threads = 1, .collect_phase_times = true});
    engine.run(10);
    const core::PhaseTimes& t = engine.phaseTimes();
    EXPECT_EQ(t.iterations, 10u);
    EXPECT_GT(t.rate_ns + t.node_ns + t.link_ns + t.reduce_ns, 0u);
}

TEST(ParallelEngine, DynamicOpContractsMatchSerial) {
    const model::ProblemSpec spec = workload::make_base_workload();
    core::ParallelLrgpEngine engine(spec, {}, {.threads = 2});
    engine.removeFlow(model::FlowId{0});
    EXPECT_THROW(engine.removeFlow(model::FlowId{0}), std::logic_error);
    engine.restoreFlow(model::FlowId{0});
    EXPECT_THROW(engine.restoreFlow(model::FlowId{0}), std::logic_error);
    core::PriceVector wrong = core::PriceVector::zeros(1, 0);
    EXPECT_THROW(engine.warmStart(wrong), std::invalid_argument);
    EXPECT_THROW(engine.run(0), std::invalid_argument);
    EXPECT_THROW(engine.runUntilConverged(0), std::invalid_argument);
}

TEST(TaskPool, CoversRangeExactlyOncePerIndex) {
    core::TaskPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
    std::vector<int> hits(1000, 0);
    for (int round = 0; round < 50; ++round)
        pool.parallelFor(hits.size(), [&](std::size_t b, std::size_t e, int) {
            for (std::size_t i = b; i < e; ++i) ++hits[i];
        });
    for (int h : hits) EXPECT_EQ(h, 50);
}

TEST(TaskPool, PropagatesWorkerExceptions) {
    core::TaskPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t b, std::size_t, int) {
                                      if (b >= 25) throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool must survive a failed job and run subsequent ones.
    std::vector<int> hits(10, 0);
    pool.parallelFor(hits.size(), [&](std::size_t b, std::size_t e, int) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
    });
    for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(TaskPool, HandlesEmptyAndSingleThread) {
    core::TaskPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t, std::size_t, int) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(7, [&](std::size_t b, std::size_t e, int w) {
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 7u);
        EXPECT_EQ(w, 0);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace lrgp
