// Vectorized SoA engine suite (ctest label `vector`).
//
// The contracts under test, in order of strictness:
//   * vector_exact (VectorMode::kExact) is BITWISE-identical to the
//     serial LrgpOptimizer: utilities, rates, populations and prices,
//     on every iteration, across a 100-seed random sweep, the pinned
//     scenario catalog, dynamic ops and warm starts.
//   * vector (VectorMode::kTolerance, tree reductions) stays within the
//     documented relative bound of the serial trajectory
//     (docs/algorithm.md, "Vectorized solver core").
//   * BatchedVectorEngine advances up to kWidth independent instances
//     in lockstep, and each lane lands bitwise on its solo serial run.
//   * The kernel variants (scalar reference vs compiled vector TUs)
//     agree bitwise, so runtime dispatch can never change results.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "lrgp/optimizer.hpp"
#include "lrgp/parallel_engine.hpp"
#include "obs/metrics.hpp"
#include "scenario/scenario.hpp"
#include "shard/sharded_engine.hpp"
#include "simd/batch_engine.hpp"
#include "simd/simd.hpp"
#include "simd/vector_engine.hpp"
#include "test_helpers.hpp"
#include "workload/random_workload.hpp"
#include "workload/workloads.hpp"

namespace lrgp {
namespace {

constexpr int kSweepSeeds = 100;  ///< random problems per trajectory sweep
constexpr int kIterations = 40;   ///< LRGP iterations per problem
/// Documented tolerance-mode bound (docs/algorithm.md): observed error
/// is ~1e-16 relative; the bound leaves four orders of headroom.
constexpr double kRelBound = 1e-12;

/// Same knob coverage as the invariants harness: shapes, sizes, and a
/// shared bottleneck link every fourth seed.
workload::RandomWorkloadOptions options_for_seed(std::uint32_t seed) {
    workload::RandomWorkloadOptions opt;
    opt.seed = seed;
    switch (seed % 4) {
        case 0: opt.shape = workload::UtilityShape::kLog; break;
        case 1: opt.shape = workload::UtilityShape::kPow025; break;
        case 2: opt.shape = workload::UtilityShape::kPow05; break;
        default: opt.shape = workload::UtilityShape::kPow075; break;
    }
    opt.max_flows = 3 + static_cast<int>(seed % 6);
    opt.max_cnodes = 2 + static_cast<int>(seed % 5);
    opt.link_bottleneck_probability = (seed % 4 == 0) ? 1.0 : 0.0;
    return opt;
}

/// Bitwise comparison of the full visible state of two engines.
void expect_bitwise_state(const core::Engine& oracle, const core::Engine& vec,
                          const std::string& where) {
    SCOPED_TRACE(where);
    ASSERT_EQ(oracle.currentUtility(), vec.currentUtility());
    ASSERT_EQ(oracle.allocation().rates, vec.allocation().rates);
    ASSERT_EQ(oracle.allocation().populations, vec.allocation().populations);
    ASSERT_EQ(oracle.prices().node, vec.prices().node);
    ASSERT_EQ(oracle.prices().link, vec.prices().link);
}

double rel_err(double a, double b) {
    const double scale = std::max({std::abs(a), std::abs(b), 1.0});
    return std::abs(a - b) / scale;
}

// ---------------------------------------------------------------------------
// vector_exact: bitwise parity with the serial optimizer.

TEST(VectorExact, BitwiseTrajectorySweep) {
    for (std::uint32_t seed = 1; seed <= kSweepSeeds; ++seed) {
        const model::ProblemSpec spec =
            workload::make_random_workload(options_for_seed(seed));
        core::LrgpOptimizer serial(spec);
        simd::VectorLrgpEngine vec(spec, {}, {.mode = simd::VectorMode::kExact});
        for (int i = 0; i < kIterations; ++i) {
            const core::IterationRecord& rs = serial.step();
            const core::IterationRecord& rv = vec.step();
            ASSERT_EQ(rs.utility, rv.utility)
                << "seed " << seed << " iteration " << i;
        }
        expect_bitwise_state(serial, vec, "seed " + std::to_string(seed));
    }
}

TEST(VectorExact, MatchesCompiledEngineToo) {
    // The compiled engine shares the serial trajectory bitwise; the
    // vector engine must slot into the same equivalence class.
    const model::ProblemSpec spec = workload::make_random_workload(options_for_seed(7));
    core::ParallelLrgpEngine compiled(spec, {}, {.threads = 1});
    simd::VectorLrgpEngine vec(spec, {}, {.mode = simd::VectorMode::kExact});
    compiled.run(kIterations);
    vec.run(kIterations);
    expect_bitwise_state(compiled, vec, "compiled vs vector_exact");
}

TEST(VectorExact, DynamicOpsAndWarmStartStayBitwise) {
    const model::ProblemSpec spec = workload::make_random_workload(options_for_seed(3));
    core::LrgpOptimizer serial(spec);
    simd::VectorLrgpEngine vec(spec, {}, {.mode = simd::VectorMode::kExact});

    const auto both = [&](auto&& op) {
        op(static_cast<core::Engine&>(serial));
        op(static_cast<core::Engine&>(vec));
    };

    both([](core::Engine& e) { e.run(10); });
    const model::FlowId victim = spec.flows().front().id;
    both([&](core::Engine& e) { e.removeFlow(victim); });
    both([](core::Engine& e) { e.run(6); });
    expect_bitwise_state(serial, vec, "after removeFlow");

    both([&](core::Engine& e) { e.restoreFlow(victim); });
    const model::NodeSpec& node = spec.nodes().back();
    both([&](core::Engine& e) { e.setNodeCapacity(node.id, node.capacity * 0.5); });
    const model::ClassSpec& cls = spec.classes().front();
    both([&](core::Engine& e) { e.setClassMaxConsumers(cls.id, cls.max_consumers / 2); });
    both([](core::Engine& e) { e.run(8); });
    expect_bitwise_state(serial, vec, "after capacity/class ops");

    // Warm-starting both engines from the serial engine's state must
    // keep them locked together.
    const core::PriceVector warm_prices = serial.prices();
    const std::vector<int> warm_pops = serial.allocation().populations;
    both([&](core::Engine& e) { e.warmStart(warm_prices, &warm_pops); });
    both([](core::Engine& e) { e.run(5); });
    expect_bitwise_state(serial, vec, "after warmStart");
}

TEST(VectorExact, ScenarioCatalogCells) {
    // Every pinned catalog cell (fat-tree/scale-free/small-world x
    // traffic x shifted-log/sigmoid/step).  Sigmoid and step classes are
    // non-concave, so this also covers the batched grid-scan path.
    for (const scenario::ScenarioOptions& cell : scenario::scenario_catalog()) {
        const scenario::ScenarioSpec sc = scenario::build_scenario(cell);
        core::LrgpOptimizer serial(sc.problem);
        simd::VectorLrgpEngine vec(sc.problem, {}, {.mode = simd::VectorMode::kExact});
        serial.run(30);
        vec.run(30);
        expect_bitwise_state(serial, vec, "cell " + cell.name);
    }
}

// ---------------------------------------------------------------------------
// vector (tolerance mode): documented relative bound.

TEST(VectorTolerance, TrajectorySweepWithinDocumentedBound) {
    double worst = 0.0;
    for (std::uint32_t seed = 1; seed <= kSweepSeeds; ++seed) {
        const model::ProblemSpec spec =
            workload::make_random_workload(options_for_seed(seed));
        core::LrgpOptimizer serial(spec);
        simd::VectorLrgpEngine vec(spec, {}, {.mode = simd::VectorMode::kTolerance});
        for (int i = 0; i < kIterations; ++i) {
            const core::IterationRecord& rs = serial.step();
            const core::IterationRecord& rv = vec.step();
            const double err = rel_err(rs.utility, rv.utility);
            ASSERT_LE(err, kRelBound) << "seed " << seed << " iteration " << i;
            worst = std::max(worst, err);
        }
        for (std::size_t f = 0; f < spec.flowCount(); ++f) {
            ASSERT_LE(rel_err(serial.allocation().rates[f], vec.allocation().rates[f]),
                      kRelBound)
                << "seed " << seed << " flow " << f;
        }
        ASSERT_EQ(serial.allocation().populations, vec.allocation().populations)
            << "seed " << seed;
    }
    RecordProperty("worst_rel_err", testing::PrintToString(worst));
}

TEST(VectorTolerance, ScenarioCatalogCellsWithinBound) {
    for (const scenario::ScenarioOptions& cell : scenario::scenario_catalog()) {
        const scenario::ScenarioSpec sc = scenario::build_scenario(cell);
        core::LrgpOptimizer serial(sc.problem);
        simd::VectorLrgpEngine vec(sc.problem, {}, {.mode = simd::VectorMode::kTolerance});
        for (int i = 0; i < 30; ++i) {
            const core::IterationRecord& rs = serial.step();
            const core::IterationRecord& rv = vec.step();
            ASSERT_LE(rel_err(rs.utility, rv.utility), kRelBound)
                << "cell " << cell.name << " iteration " << i;
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel-variant cross-parity: dispatch must never change results.

TEST(VectorVariants, ScalarReferenceMatchesVectorKernelsBitwise) {
    const model::ProblemSpec spec = workload::make_random_workload(options_for_seed(11));

    simd::force_scalar(true);
    simd::VectorLrgpEngine scalar_exact(spec, {}, {.mode = simd::VectorMode::kExact});
    simd::VectorLrgpEngine scalar_tol(spec, {}, {.mode = simd::VectorMode::kTolerance});
    scalar_exact.run(kIterations);
    scalar_tol.run(kIterations);
    const double u_scalar_exact = scalar_exact.currentUtility();
    const double u_scalar_tol = scalar_tol.currentUtility();
    EXPECT_STREQ(scalar_exact.variant(), "scalar");
    simd::force_scalar(false);

    simd::VectorLrgpEngine vec_exact(spec, {}, {.mode = simd::VectorMode::kExact});
    simd::VectorLrgpEngine vec_tol(spec, {}, {.mode = simd::VectorMode::kTolerance});
    vec_exact.run(kIterations);
    vec_tol.run(kIterations);

    // Exact mode: identical accumulation order everywhere — bitwise
    // across variants.  Tolerance mode: the tree reduction's shape is
    // fixed (8 accumulators, pairwise hsum) independent of the variant,
    // so it is bitwise across variants too.
    EXPECT_EQ(u_scalar_exact, vec_exact.currentUtility());
    EXPECT_EQ(u_scalar_tol, vec_tol.currentUtility());
}

// ---------------------------------------------------------------------------
// Batched lockstep mode.

std::vector<model::ProblemSpec> capacity_scaled_copies(const model::ProblemSpec& spec,
                                                       std::size_t n) {
    std::vector<model::ProblemSpec> specs;
    for (std::size_t k = 0; k < n; ++k) {
        const double scale =
            0.7 + 0.6 * static_cast<double>(k) / static_cast<double>(n > 1 ? n - 1 : 1);
        model::ProblemSpec copy = spec;
        for (const model::NodeSpec& node : spec.nodes())
            copy.setNodeCapacity(node.id, node.capacity * scale);
        specs.push_back(std::move(copy));
    }
    return specs;
}

TEST(VectorBatch, FullWidthLanesMatchSoloSerialBitwise) {
    const model::ProblemSpec spec = workload::make_random_workload(options_for_seed(5));
    std::vector<model::ProblemSpec> specs = capacity_scaled_copies(spec, simd::kWidth);

    std::vector<std::unique_ptr<core::LrgpOptimizer>> solos;
    for (const auto& s : specs) solos.push_back(std::make_unique<core::LrgpOptimizer>(s));

    simd::BatchedVectorEngine batch(specs);
    ASSERT_EQ(batch.instanceCount(), simd::kWidth);

    // Checkpoint parity mid-run and at the end, not just at the end.
    for (const int upto : {10, 25, kIterations}) {
        while (batch.iterationsRun() < upto) {
            batch.step();
            for (auto& solo : solos) solo->step();
        }
        for (std::size_t k = 0; k < simd::kWidth; ++k) {
            SCOPED_TRACE("iteration " + std::to_string(upto) + " lane " +
                         std::to_string(k));
            ASSERT_EQ(solos[k]->currentUtility(), batch.utility(k));
            ASSERT_EQ(solos[k]->allocation().rates, batch.allocation(k).rates);
            ASSERT_EQ(solos[k]->allocation().populations,
                      batch.allocation(k).populations);
            ASSERT_EQ(solos[k]->prices().node, batch.prices(k).node);
            ASSERT_EQ(solos[k]->prices().link, batch.prices(k).link);
        }
    }
}

TEST(VectorBatch, PartialWidthMasksSpareLanes) {
    const model::ProblemSpec spec = workload::make_random_workload(options_for_seed(9));
    std::vector<model::ProblemSpec> specs = capacity_scaled_copies(spec, 3);

    std::vector<std::unique_ptr<core::LrgpOptimizer>> solos;
    for (const auto& s : specs) solos.push_back(std::make_unique<core::LrgpOptimizer>(s));

    simd::BatchedVectorEngine batch(specs);
    ASSERT_EQ(batch.instanceCount(), 3u);
    batch.run(kIterations);
    for (auto& solo : solos) solo->run(kIterations);
    for (std::size_t k = 0; k < 3; ++k) {
        SCOPED_TRACE("lane " + std::to_string(k));
        ASSERT_EQ(solos[k]->currentUtility(), batch.utility(k));
        ASSERT_EQ(solos[k]->allocation().populations, batch.allocation(k).populations);
    }
    EXPECT_THROW(static_cast<void>(batch.utility(3)), std::out_of_range);
}

TEST(VectorBatch, ValidationRejectsBadBatches) {
    const auto t = test::make_tiny_problem();
    // Empty and over-wide batches.
    EXPECT_THROW(simd::BatchedVectorEngine({}), std::invalid_argument);
    EXPECT_THROW(
        simd::BatchedVectorEngine(
            std::vector<model::ProblemSpec>(simd::kWidth + 1, t.spec)),
        std::invalid_argument);
    // Mismatched topology across lanes.
    const model::ProblemSpec other =
        workload::make_random_workload(options_for_seed(2));
    EXPECT_THROW(simd::BatchedVectorEngine({t.spec, other}), std::invalid_argument);
    // Same topology with per-lane capacity variation is fine.
    EXPECT_NO_THROW(simd::BatchedVectorEngine(capacity_scaled_copies(t.spec, 2)));
}

TEST(VectorBatch, RunUntilAllConverged) {
    // A headroom workload (huge node capacity, low rate cap) quiesces
    // within ~50 iterations; the contended workloads never reach an
    // exact fixpoint (adaptive-gamma limit cycles), so they are not
    // usable here.
    workload::WorkloadOptions headroom;
    headroom.node_capacity = 3.0e7;
    headroom.rate_max = 60.0;
    const model::ProblemSpec spec = workload::make_scaled_workload(headroom);
    std::vector<model::ProblemSpec> specs = capacity_scaled_copies(spec, 4);
    simd::BatchedVectorEngine batch(specs);
    const std::optional<int> at = batch.runUntilAllConverged(4000);
    ASSERT_TRUE(at.has_value());
    for (std::size_t k = 0; k < 4; ++k) EXPECT_TRUE(batch.converged(k));

    core::LrgpOptimizer solo(specs[1]);
    solo.run(batch.iterationsRun());
    EXPECT_EQ(solo.currentUtility(), batch.utility(1));
}

// ---------------------------------------------------------------------------
// Composition: vector members under the sharded control plane.

TEST(VectorShard, ShardedEngineWithVectorMembers) {
    const model::ProblemSpec spec = workload::make_random_workload(options_for_seed(13));

    shard::ShardedConfig config;
    config.shards = 2;
    config.threads = 1;
    config.member_factory = simd::vector_member_factory(simd::VectorMode::kExact);
    shard::ShardedLrgpEngine engine(spec, {}, config);
    engine.run(kIterations);
    EXPECT_GT(engine.currentUtility(), 0.0);
    for (int s = 0; s < engine.shardCount(); ++s)
        EXPECT_STREQ(engine.shardEngine(s).name(), "vector_exact");

    // K=1 with exact members reproduces the monolithic serial trajectory
    // bitwise, like the default member engine does.
    shard::ShardedConfig solo_config;
    solo_config.shards = 1;
    solo_config.threads = 1;
    solo_config.member_factory = simd::vector_member_factory(simd::VectorMode::kExact);
    shard::ShardedLrgpEngine one(spec, {}, solo_config);
    core::LrgpOptimizer serial(spec);
    one.run(kIterations);
    serial.run(kIterations);
    EXPECT_EQ(serial.currentUtility(), one.currentUtility());
}

// ---------------------------------------------------------------------------
// Observability: lrgp_vec_* instruments.

TEST(VectorObs, InstrumentsCountKernelWork) {
    if constexpr (!obs::kEnabled) GTEST_SKIP() << "built without LRGP_OBS";
    const auto t = test::make_tiny_problem();
    obs::Registry registry;
    simd::VectorLrgpEngine vec(t.spec, {}, {.mode = simd::VectorMode::kExact});
    vec.attachObservability(&registry, nullptr);
    vec.run(12);

    EXPECT_GT(registry.counterValue("lrgp_vec_lanes_occupied_total"), 0u);
    EXPECT_GT(registry.counterValue("lrgp_vec_kernel_ns_total", {{"phase", "rate"}}), 0u);
    // Every flow solve on the tiny problem is closed-form or at a bound.
    const std::uint64_t solves =
        registry.counterValue("lrgp_vec_closed_solves_total") +
        registry.counterValue("lrgp_vec_bound_solves_total");
    EXPECT_EQ(solves, 12u * t.spec.flowCount());
    // The instrumented run must not perturb the trajectory.
    core::LrgpOptimizer serial(t.spec);
    serial.run(12);
    EXPECT_EQ(serial.currentUtility(), vec.currentUtility());
}

}  // namespace
}  // namespace lrgp
