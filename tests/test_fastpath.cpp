// Batched fastpath dataplane: gate-graph lowering, the weighted
// traffic scheduler, steady-state fidelity against the paper's cost
// model, worker-count determinism, and the differential oracle — the
// event-driven dataplane and the fastpath running the same workloads
// must agree on achieved utility and drop rates.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "dataplane/dataplane.hpp"
#include "fastpath/batch.hpp"
#include "fastpath/fastpath.hpp"
#include "fastpath/plan.hpp"
#include "fastpath/scheduler.hpp"
#include "model/allocation.hpp"
#include "model/problem.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "utility/utility_function.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;

/// Same small overlay as test_dataplane.cpp: two consumer-hosting
/// nodes, one link, two flows (one chainless), three classes.
model::ProblemSpec makeSmallSpec() {
    model::ProblemBuilder b;
    const model::NodeId s0 = b.addNode("S0", 100.0);
    const model::NodeId s1 = b.addNode("S1", 80.0);
    const model::LinkId l0 = b.addLink("l0", s0, s1, 50.0);
    const model::FlowId f0 = b.addFlow("f0", s0, 1.0, 10.0);
    b.routeThroughNode(f0, s0, 1.0);
    b.routeThroughNode(f0, s1, 1.0);
    b.routeOverLink(f0, l0, 1.0);
    const model::FlowId f1 = b.addFlow("f1", s1, 1.0, 8.0);
    b.routeThroughNode(f1, s1, 2.0);
    b.addClass("c0", f0, s0, 3, 0.5, std::make_shared<utility::LogUtility>(20.0));
    b.addClass("c1", f0, s1, 2, 1.0, std::make_shared<utility::LogUtility>(10.0));
    b.addClass("c2", f1, s1, 4, 0.5, std::make_shared<utility::LogUtility>(15.0));
    return b.build();
}

model::Allocation smallAllocation() {
    model::Allocation alloc;
    alloc.rates = {4.0, 2.0};
    alloc.populations = {2, 1, 3};
    return alloc;
}

// ------------------------------------------------------- gate lowering

TEST(CompiledPlan, LowersRoutesIntoPerEntityGateGraph) {
    const model::ProblemSpec spec = makeSmallSpec();
    const auto plan = fastpath::CompiledPlan::lower(spec);

    ASSERT_EQ(plan.flow_count, 2u);
    EXPECT_EQ(plan.chainLength(0), 1u);  // f0 crosses l0
    EXPECT_EQ(plan.chainLength(1), 0u);  // f1 is chainless
    EXPECT_EQ(plan.linkSlotCount(), 1u);
    EXPECT_EQ(plan.nodeSlotCount(), 3u);  // f0 -> {S0, S1}, f1 -> {S1}

    // One gate per entity: l0, then S0, then S1 (S1 serves f0 and f1
    // through one budget).
    ASSERT_EQ(plan.groups.size(), 3u);
    EXPECT_FALSE(plan.groups[0].is_node);
    EXPECT_EQ(plan.groups[0].entity, 0u);
    EXPECT_TRUE(plan.groups[1].is_node);
    EXPECT_EQ(plan.groups[1].entity, 0u);
    EXPECT_TRUE(plan.groups[2].is_node);
    EXPECT_EQ(plan.groups[2].entity, 1u);
    EXPECT_EQ(plan.groups[2].slots_end - plan.groups[2].slots_begin, 2u);

    // Class mapping: f0@S0 -> c0, f0@S1 -> c1, f1@S1 -> c2.
    EXPECT_EQ(plan.node_slot_classes.size(), 3u);
    const std::uint32_t f0_s1_slot = plan.flow_node_begin[0] + 1;
    ASSERT_EQ(plan.node_slot_class_begin[f0_s1_slot + 1] -
                  plan.node_slot_class_begin[f0_s1_slot],
              1u);
    EXPECT_EQ(plan.node_slot_classes[plan.node_slot_class_begin[f0_s1_slot]], 1u);
}

TEST(CompiledPlan, EverySlotBelongsToExactlyOneGate) {
    const model::ProblemSpec spec =
        workload::make_scaled_workload({workload::UtilityShape::kLog, 2, 2});
    const auto plan = fastpath::CompiledPlan::lower(spec);
    std::vector<int> link_owner(plan.linkSlotCount(), 0);
    std::vector<int> node_owner(plan.nodeSlotCount(), 0);
    for (const fastpath::GateGroup& group : plan.groups) {
        for (std::uint32_t k = group.slots_begin; k < group.slots_end; ++k) {
            const std::uint32_t slot = plan.group_slots[k];
            if (group.is_node) {
                EXPECT_EQ(plan.node_slot_node[slot], group.entity);
                ++node_owner[slot];
            } else {
                EXPECT_EQ(plan.link_slot_link[slot], group.entity);
                ++link_owner[slot];
            }
            // Slots ascend within a group: fixed serve order.
            if (k > group.slots_begin) {
                EXPECT_LT(plan.group_slots[k - 1], slot);
            }
        }
    }
    for (const int owners : link_owner) EXPECT_EQ(owners, 1);
    for (const int owners : node_owner) EXPECT_EQ(owners, 1);
}

// --------------------------------------------------- traffic scheduler

TEST(TrafficScheduler, CreditsRefillAtEnactedRateAndCapCarryAtDepth) {
    fastpath::TrafficScheduler sched(1, 8.0);
    sched.setRate(0, 10.0);
    sched.refill(0, 0.5);  // 5 credits
    int admitted = 0;
    while (sched.tryAdmit(0)) ++admitted;
    EXPECT_EQ(admitted, 5);
    // The quantum's own accrual is fully spendable even past the
    // depth: a continuous policer passes rate*dt messages during dt,
    // so quantum batching must not clamp sustained throughput.
    sched.refill(0, 10.0);  // 100 credits, all admissible
    admitted = 0;
    while (sched.tryAdmit(0)) ++admitted;
    EXPECT_EQ(admitted, 100);
    // But unspent credits carry over capped at the depth: an idle flow
    // may burst at most depth + rate*dt in one quantum.
    sched.refill(0, 10.0);  // 100 credits, left unspent
    sched.refill(0, 0.1);   // carry capped at 8, plus 1 accrued
    admitted = 0;
    while (sched.tryAdmit(0)) ++admitted;
    EXPECT_EQ(admitted, 9);
}

TEST(TrafficScheduler, DeterministicArrivalsAtRefillRateNeverShaped) {
    fastpath::TrafficScheduler sched(1, 8.0);
    sched.setRate(0, 20.0);
    // 1 credit per quantum, 1 arrival per quantum: rounding noise must
    // never shape (the TokenBucket 1 - 1e-9 slack, batched).
    for (int q = 0; q < 1000; ++q) {
        sched.refill(0, 0.05);
        EXPECT_TRUE(sched.tryAdmit(0)) << "quantum " << q;
    }
}

TEST(TrafficScheduler, WeightedBudgetSplitsByRateWithLargestRemainder) {
    fastpath::TrafficScheduler sched(3, 100.0, 10.0);
    sched.setRate(0, 30.0);
    sched.setRate(1, 60.0);
    sched.setRate(2, 10.0);
    sched.beginQuantum();
    EXPECT_EQ(sched.quota(0), 3u);
    EXPECT_EQ(sched.quota(1), 6u);
    EXPECT_EQ(sched.quota(2), 1u);
    // Credits are plentiful; the quota is the binding limit.
    for (int i = 0; i < 3; ++i) sched.refill(i, 10.0);
    int admitted = 0;
    for (int k = 0; k < 50; ++k) {
        if (sched.tryAdmit(1)) ++admitted;
    }
    EXPECT_EQ(admitted, 6);
}

// ------------------------------------------------- steady-state plant

TEST(Fastpath, SteadyStateMatchesPlannedUtilityWithinTwoPercent) {
    const model::ProblemSpec spec = makeSmallSpec();
    fastpath::Fastpath fp(spec);
    const model::Allocation alloc = smallAllocation();
    ASSERT_TRUE(model::check_feasibility(spec, alloc).feasible());
    fp.notePlanned(alloc);
    fp.enact(alloc);
    fp.runUntil(60.0);

    const dataplane::DataplaneStats stats = fp.collectStats();
    EXPECT_EQ(stats.dropped_link, 0u);
    EXPECT_EQ(stats.dropped_node, 0u);
    EXPECT_EQ(stats.drop_rate, 0.0);
    EXPECT_EQ(stats.total_shaped, 0u);
    ASSERT_GT(stats.utility.planned, 0.0);
    const double gap = std::abs(stats.utility.achieved_cumulative - stats.utility.planned) /
                       stats.utility.planned;
    EXPECT_LE(gap, 0.02) << "achieved " << stats.utility.achieved_cumulative << " vs planned "
                         << stats.utility.planned;
    EXPECT_GT(stats.latency.count, 0u);
    EXPECT_LT(stats.latency.p99, 1.0);
    EXPECT_EQ(stats.events_scheduled, fp.quantaProcessed());
    EXPECT_GT(fp.batchesProcessed(), 0u);
}

TEST(Fastpath, SchedulerShapesOverdrivenProducer) {
    const model::ProblemSpec spec = makeSmallSpec();
    fastpath::Fastpath fp(spec);
    fp.enact(smallAllocation());
    fp.setOfferedRate(model::FlowId{0}, 8.0);  // enacted is 4.0
    fp.runUntil(50.0);

    const dataplane::DataplaneStats stats = fp.collectStats();
    const dataplane::FlowStats& f0 = stats.flows[0];
    EXPECT_GT(f0.shaped, 0u);
    EXPECT_NEAR(static_cast<double>(f0.emitted) / 50.0, 4.0, 0.4);
    EXPECT_EQ(stats.dropped_link, 0u);
    EXPECT_EQ(stats.dropped_node, 0u);
}

TEST(Fastpath, OverloadedNodeDropsLikeTheEventDataplane) {
    // Shrink S1 so the enacted plan overdrives it; both plants must
    // shed a comparable fraction of traffic.
    const model::ProblemSpec spec = makeSmallSpec();
    const model::Allocation alloc = smallAllocation();
    const double scaled_capacity = 10.0;  // S1 wants ~ 26 units/s

    dataplane::Dataplane dp(spec);
    dp.setNodeCapacity(model::NodeId{1}, scaled_capacity);
    dp.enact(alloc);
    dp.runUntil(60.0);
    const auto sim = dp.collectStats();

    fastpath::Fastpath fp(spec);
    fp.setNodeCapacity(model::NodeId{1}, scaled_capacity);
    fp.enact(alloc);
    fp.runUntil(60.0);
    const auto fast = fp.collectStats();

    EXPECT_GT(sim.dropped_node, 0u);
    EXPECT_GT(fast.dropped_node, 0u);
    EXPECT_NEAR(fast.drop_rate, sim.drop_rate, 0.05)
        << "fastpath " << fast.drop_rate << " vs sim " << sim.drop_rate;
}

TEST(Fastpath, ValidatesOptionsAndAllocations) {
    const model::ProblemSpec spec = makeSmallSpec();
    fastpath::FastpathOptions bad;
    bad.sample_period = 0.07;  // not a multiple of quantum 0.05
    EXPECT_THROW(fastpath::Fastpath(spec, bad), std::invalid_argument);
    bad = {};
    bad.batch_size = 0;
    EXPECT_THROW(fastpath::Fastpath(spec, bad), std::invalid_argument);

    fastpath::Fastpath fp(spec);
    model::Allocation wrong;
    wrong.rates = {1.0};
    wrong.populations = {0, 0, 0};
    EXPECT_THROW(fp.enact(wrong), std::invalid_argument);
    EXPECT_THROW(fp.notePlanned(wrong), std::invalid_argument);
}

TEST(Fastpath, BatchAccountingMatchesEmittedMessages) {
    const model::ProblemSpec spec = makeSmallSpec();
    fastpath::FastpathOptions options;
    options.batch_size = 4;
    fastpath::Fastpath fp(spec, options);
    fp.enact(smallAllocation());
    fp.runUntil(20.0);
    const auto stats = fp.collectStats();
    // Every emitted message rides in exactly one batch of <= batch_size;
    // per-quantum tails mean at least ceil(total/batch) batches overall.
    EXPECT_GE(fp.batchesProcessed(),
              fastpath::batch_count(stats.total_emitted, options.batch_size));
    EXPECT_LE(fp.batchesProcessed(), stats.total_emitted);
}

// ---------------------------------------------------- worker determinism

TEST(Fastpath, StatsJsonByteIdenticalAcrossWorkerCounts) {
    const model::ProblemSpec spec =
        workload::make_scaled_workload({workload::UtilityShape::kLog, 2, 1});
    model::Allocation alloc = model::Allocation::minimal(spec);
    for (double& r : alloc.rates) r = 40.0;
    for (std::size_t j = 0; j < alloc.populations.size(); ++j) {
        alloc.populations[j] = spec.classes()[j].max_consumers > 0 ? 1 : 0;
    }

    std::string reference;
    for (const int workers : {1, 2, 4}) {
        fastpath::FastpathOptions options;
        options.workers = workers;
        options.arrivals = dataplane::ArrivalProcess::kPoisson;
        fastpath::Fastpath fp(spec, options);
        fp.notePlanned(alloc);
        fp.enact(alloc);
        fp.setOfferedRate(model::FlowId{0}, 90.0);  // shaped traffic too
        fp.runUntil(30.0);
        const std::string json = fp.statsJson();
        if (reference.empty()) {
            reference = json;
        } else {
            EXPECT_EQ(json, reference) << "workers=" << workers << " diverged";
        }
        // The per-worker split covers all emission + gate work.
        EXPECT_EQ(static_cast<std::size_t>(fp.workerCount()), fp.workerMessages().size());
    }
    ASSERT_FALSE(reference.empty());
}

TEST(Fastpath, RerunIsByteIdentical) {
    const model::ProblemSpec spec = makeSmallSpec();
    const auto run = [&spec] {
        fastpath::FastpathOptions options;
        options.workers = 2;
        fastpath::Fastpath fp(spec, options);
        fp.enact(smallAllocation());
        fp.runUntil(25.0);
        return fp.statsJson();
    };
    EXPECT_EQ(run(), run());
}

// ------------------------------------------- differential oracle (PR 8)

struct PlantResult {
    double achieved = 0.0;
    double planned = 0.0;
    double drop_rate = 0.0;
};

/// Enacts `alloc` into one plant over `spec`'s physically-scaled
/// overlay and reports the long-run achieved utility + drop rate.
/// Achieved is the *cumulative* measure (utility of the mean delivered
/// rates): the window-sampled trace differs between the plants by the
/// Jensen gap — the event engine's bursty FIFO makes window rates
/// noisier, and concave utilities penalize that variance — while the
/// rates actually delivered must agree.
template <class Plant, class Options>
PlantResult runPlant(const scenario::ScenarioSpec& spec, const model::Allocation& alloc,
                     Options options, double horizon) {
    Plant plant(spec.problem, options);
    if (spec.physical_capacity_scale < 1.0) {
        for (std::size_t b = 0; b < spec.problem.nodeCount(); ++b) {
            const model::NodeId node{static_cast<std::uint32_t>(b)};
            plant.setNodeCapacity(node,
                                  spec.problem.node(node).capacity *
                                      spec.physical_capacity_scale);
        }
    }
    plant.notePlanned(alloc);
    plant.enact(alloc);
    plant.runUntil(horizon);
    const auto stats = plant.collectStats();
    PlantResult result;
    result.achieved = stats.utility.achieved_cumulative;
    result.planned = stats.utility.planned;
    result.drop_rate = stats.drop_rate;
    return result;
}

TEST(FastpathDifferential, HeadroomCellAgreesWithSimOracle) {
    const scenario::ScenarioSpec spec =
        scenario::build_scenario(scenario::find_scenario("fat_tree_heavy_tail_shifted_log"));
    scenario::RunnerOptions ropts;
    ropts.engine = "incremental";
    const auto report = scenario::run_scenario(spec, ropts);
    ASSERT_FALSE(report.final_allocation.rates.empty());

    const double horizon = 40.0;
    const auto sim = runPlant<dataplane::Dataplane>(spec, report.final_allocation,
                                                    dataplane::DataplaneOptions{}, horizon);
    fastpath::FastpathOptions fopts;
    fopts.workers = 4;
    const auto fast =
        runPlant<fastpath::Fastpath>(spec, report.final_allocation, fopts, horizon);

    // Headroom: both plants deliver the plan, and they agree.
    ASSERT_GT(sim.planned, 0.0);
    EXPECT_LE(sim.drop_rate, 0.02);
    EXPECT_LE(fast.drop_rate, 0.02);
    EXPECT_GE(sim.achieved / sim.planned, 0.98);
    EXPECT_GE(fast.achieved / fast.planned, 0.98);
    EXPECT_NEAR(fast.achieved / sim.achieved, 1.0, 0.02)
        << "fastpath " << fast.achieved << " vs sim " << sim.achieved;
}

TEST(FastpathDifferential, OverdriveCellAgreesWithSimOracle) {
    const scenario::ScenarioSpec spec = scenario::build_scenario(
        scenario::find_scenario("fat_tree_heavy_tail_shifted_log_overdrive"));
    ASSERT_LT(spec.physical_capacity_scale, 1.0);
    scenario::RunnerOptions ropts;
    ropts.engine = "incremental";
    const auto report = scenario::run_scenario(spec, ropts);
    ASSERT_FALSE(report.final_allocation.rates.empty());

    const double horizon = 40.0;
    const auto sim = runPlant<dataplane::Dataplane>(spec, report.final_allocation,
                                                    dataplane::DataplaneOptions{}, horizon);
    fastpath::FastpathOptions fopts;
    fopts.workers = 4;
    const auto fast =
        runPlant<fastpath::Fastpath>(spec, report.final_allocation, fopts, horizon);

    // Overdrive: both plants shed >= 20% and agree on how much.
    EXPECT_GE(sim.drop_rate, 0.20);
    EXPECT_GE(fast.drop_rate, 0.20);
    EXPECT_NEAR(fast.drop_rate, sim.drop_rate, 0.05);
    ASSERT_GT(sim.achieved, 0.0);
    EXPECT_NEAR(fast.achieved / sim.achieved, 1.0, 0.02)
        << "fastpath " << fast.achieved << " vs sim " << sim.achieved;
}

}  // namespace
