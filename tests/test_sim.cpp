#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace {

using lrgp::sim::LatencyModel;
using lrgp::sim::Simulator;

TEST(Simulator, StartsIdleAtTimeZero) {
    Simulator sim;
    EXPECT_TRUE(sim.idle());
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
    EXPECT_FALSE(sim.runOne());
}

TEST(Simulator, EventsFireInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule(3.0, [&] { order.push_back(3); });
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(2.0, [&] { order.push_back(2); });
    sim.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakInSchedulingOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule(1.0, [&] { order.push_back(1); });
    sim.schedule(1.0, [&] { order.push_back(2); });
    sim.schedule(1.0, [&] { order.push_back(3); });
    sim.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, HandlersMayScheduleMoreEvents) {
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5) sim.schedule(1.0, chain);
    };
    sim.schedule(1.0, chain);
    sim.runAll();
    EXPECT_EQ(fired, 5);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
    Simulator sim;
    int fired = 0;
    sim.schedule(1.0, [&] { ++fired; });
    sim.schedule(2.0, [&] { ++fired; });
    sim.schedule(5.0, [&] { ++fired; });
    const std::size_t processed = sim.runUntil(3.0);
    EXPECT_EQ(processed, 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // clock advances even with no event at 3.0
    EXPECT_EQ(sim.pendingEvents(), 1u);
}

TEST(Simulator, RunAllRespectsEventCap) {
    Simulator sim;
    std::function<void()> forever = [&] { sim.schedule(1.0, forever); };
    sim.schedule(1.0, forever);
    const std::size_t processed = sim.runAll(100);
    EXPECT_EQ(processed, 100u);
}

TEST(Simulator, Validation) {
    Simulator sim;
    EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
    EXPECT_THROW(sim.scheduleAt(-0.5, [] {}), std::invalid_argument);
    EXPECT_THROW(sim.schedule(1.0, nullptr), std::invalid_argument);
}

TEST(Simulator, RunAllCapOverflowIsDetectable) {
    // A capped runAll used to stop silently; the overflow must now be
    // observable (pending events remain) or turned into an exception.
    Simulator sim;
    std::function<void()> forever = [&] { sim.schedule(1.0, forever); };
    sim.schedule(1.0, forever);
    EXPECT_EQ(sim.runAll(100), 100u);
    EXPECT_GT(sim.pendingEvents(), 0u);  // cap was hit with work remaining
    EXPECT_THROW(sim.runAll(100, /*throw_on_cap=*/true), std::runtime_error);
}

TEST(Simulator, RunAllWithThrowOnCapPassesWhenDraining) {
    Simulator sim;
    int fired = 0;
    sim.schedule(1.0, [&] { ++fired; });
    sim.schedule(2.0, [&] { ++fired; });
    EXPECT_EQ(sim.runAll(100, /*throw_on_cap=*/true), 2u);
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, NextEventTimePeeksTheCalendar) {
    Simulator sim;
    EXPECT_FALSE(sim.nextEventTime().has_value());
    sim.schedule(2.0, [] {});
    sim.schedule(1.0, [] {});
    ASSERT_TRUE(sim.nextEventTime().has_value());
    EXPECT_DOUBLE_EQ(*sim.nextEventTime(), 1.0);
    sim.runAll();
    EXPECT_FALSE(sim.nextEventTime().has_value());
}

TEST(Simulator, CappedRunUntilStopsEarlyWithoutSkippingTime) {
    Simulator sim;
    int fired = 0;
    for (int i = 1; i <= 10; ++i) sim.schedule(0.1 * i, [&] { ++fired; });
    // Cap inside the window: clock must stay at the last processed event
    // so the caller can see how far the run got.
    EXPECT_EQ(sim.runUntil(2.0, 4), 4u);
    EXPECT_EQ(fired, 4);
    EXPECT_DOUBLE_EQ(sim.now(), 0.4);
    EXPECT_EQ(sim.pendingEvents(), 6u);
    // Uncapped continuation drains the window and advances to the boundary.
    EXPECT_EQ(sim.runUntil(2.0, 100), 6u);
    EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(LatencyModel, SamplesWithinBounds) {
    LatencyModel latency(0.005, 0.015, 1);
    for (int i = 0; i < 1000; ++i) {
        const double s = latency.sample();
        EXPECT_GE(s, 0.005);
        EXPECT_LE(s, 0.015);
    }
}

TEST(LatencyModel, DeterministicForSeed) {
    LatencyModel a(0.0, 1.0, 99);
    LatencyModel b(0.0, 1.0, 99);
    for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.sample(), b.sample());
}

TEST(LatencyModel, DifferentSeedsDiffer) {
    LatencyModel a(0.0, 1.0, 1);
    LatencyModel b(0.0, 1.0, 2);
    bool any_different = false;
    for (int i = 0; i < 10; ++i)
        if (a.sample() != b.sample()) any_different = true;
    EXPECT_TRUE(any_different);
}

TEST(LatencyModel, FixedLatencyWhenBoundsEqual) {
    LatencyModel fixed(0.01, 0.01, 5);
    for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(fixed.sample(), 0.01);
}

TEST(LatencyModel, Validation) {
    EXPECT_THROW(LatencyModel(-0.1, 0.1, 1), std::invalid_argument);
    EXPECT_THROW(LatencyModel(0.2, 0.1, 1), std::invalid_argument);
}

TEST(Simulator, ScheduledEventsCountsProcessedAndPending) {
    Simulator sim;
    EXPECT_EQ(sim.scheduledEvents(), 0u);
    sim.schedule(1.0, [] {});
    sim.schedule(2.0, [] {});
    EXPECT_EQ(sim.scheduledEvents(), 2u);
    sim.runOne();
    EXPECT_EQ(sim.scheduledEvents(), 2u);  // lifetime count, not queue depth
    sim.schedule(3.0, [] {});
    sim.runAll();
    EXPECT_EQ(sim.scheduledEvents(), 3u);
}

}  // namespace
