// Unit tests for the fault-injection vocabulary: plan validation, the
// deterministic injector, and the shipped scenario catalog.
#include <gtest/gtest.h>

#include "faults/fault_plan.hpp"
#include "faults/scenarios.hpp"

namespace {

using namespace lrgp;
using namespace lrgp::faults;

TEST(FaultPlan, EmptyPlanIsValidAndEmpty) {
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, RejectsInvertedWindow) {
    FaultPlan plan;
    plan.losses.push_back(LossBurst{{5.0, 2.0}, 0.5, std::nullopt, std::nullopt});
    EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, RejectsProbabilityOutsideUnitInterval) {
    FaultPlan plan;
    plan.losses.push_back(LossBurst{{0.0, 1.0}, 1.5, std::nullopt, std::nullopt});
    EXPECT_THROW(plan.validate(), std::invalid_argument);
    plan.losses.clear();
    plan.corruptions.push_back(PriceCorruption{{0.0, 1.0}, -0.1, 2.0, std::nullopt});
    EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, RejectsInvertedDelayBounds) {
    FaultPlan plan;
    plan.delay_spikes.push_back(DelaySpike{{0.0, 1.0}, 0.5, 0.2, std::nullopt, std::nullopt});
    EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, RejectsRestartBeforeCrash) {
    FaultPlan plan;
    plan.crashes.push_back(CrashEvent{{AgentKind::kNode, 0}, 5.0, 4.0});
    EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, CrashWithoutRestartIsValid) {
    FaultPlan plan;
    plan.crashes.push_back(CrashEvent{{AgentKind::kNode, 0}, 5.0});  // never restarts
    EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, RejectsEmptyPartitionIsland) {
    FaultPlan plan;
    plan.partitions.push_back(PartitionWindow{{0.0, 1.0}, {}});
    EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, RejectsNonFiniteCorruptionFactor) {
    FaultPlan plan;
    plan.corruptions.push_back(PriceCorruption{
        {0.0, 1.0}, 0.5, std::numeric_limits<double>::infinity(), std::nullopt});
    EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultInjector, SameSeedSameDecisions) {
    FaultPlan plan;
    plan.losses.push_back(LossBurst{{0.0, 10.0}, 0.5, std::nullopt, std::nullopt});
    plan.delay_spikes.push_back(DelaySpike{{0.0, 10.0}, 0.1, 0.3, std::nullopt, std::nullopt});
    plan.reorders.push_back(ReorderWindow{{0.0, 10.0}, 0.5, 0.2});

    FaultInjector a(plan, 42);
    FaultInjector b(plan, 42);
    const MessageContext ctx{{AgentKind::kSource, 0}, {AgentKind::kNode, 1}, MessageKind::kRate};
    for (int i = 0; i < 500; ++i) {
        const FaultDecision da = a.onMessage(ctx, 0.01 * i);
        const FaultDecision db = b.onMessage(ctx, 0.01 * i);
        ASSERT_EQ(da.drop, db.drop) << "message " << i;
        ASSERT_DOUBLE_EQ(da.extra_delay, db.extra_delay) << "message " << i;
    }
    EXPECT_EQ(a.stats().messages_dropped, b.stats().messages_dropped);
    EXPECT_EQ(a.stats().messages_delayed, b.stats().messages_delayed);
    EXPECT_EQ(a.stats().messages_reordered, b.stats().messages_reordered);
    // The burst actually bit: roughly half of 500 messages dropped.
    EXPECT_GT(a.stats().messages_dropped, 150u);
    EXPECT_LT(a.stats().messages_dropped, 350u);
}

TEST(FaultInjector, DifferentSeedDifferentDecisions) {
    FaultPlan plan;
    plan.losses.push_back(LossBurst{{0.0, 10.0}, 0.5, std::nullopt, std::nullopt});
    FaultInjector a(plan, 1);
    FaultInjector b(plan, 2);
    const MessageContext ctx{{AgentKind::kSource, 0}, {AgentKind::kNode, 1}, MessageKind::kRate};
    int differing = 0;
    for (int i = 0; i < 500; ++i)
        if (a.onMessage(ctx, 0.01 * i).drop != b.onMessage(ctx, 0.01 * i).drop) ++differing;
    EXPECT_GT(differing, 0);
}

TEST(FaultInjector, WindowGatesInjection) {
    FaultPlan plan;
    plan.losses.push_back(LossBurst{{5.0, 6.0}, 1.0, std::nullopt, std::nullopt});
    FaultInjector injector(plan, 1);
    const MessageContext ctx{{AgentKind::kSource, 0}, {AgentKind::kNode, 0}, MessageKind::kRate};
    EXPECT_FALSE(injector.onMessage(ctx, 4.99).drop);
    EXPECT_TRUE(injector.onMessage(ctx, 5.0).drop);   // closed interval
    EXPECT_TRUE(injector.onMessage(ctx, 6.0).drop);
    EXPECT_FALSE(injector.onMessage(ctx, 6.01).drop);
}

TEST(FaultInjector, EndpointSelectorsTargetOnePair) {
    FaultPlan plan;
    const AgentRef src{AgentKind::kSource, 2};
    const AgentRef dst{AgentKind::kNode, 1};
    plan.losses.push_back(LossBurst{{0.0, 10.0}, 1.0, src, dst});
    FaultInjector injector(plan, 1);
    EXPECT_TRUE(injector.onMessage({src, dst, MessageKind::kRate}, 1.0).drop);
    EXPECT_FALSE(injector.onMessage({src, {AgentKind::kNode, 0}, MessageKind::kRate}, 1.0).drop);
    EXPECT_FALSE(
        injector.onMessage({{AgentKind::kSource, 0}, dst, MessageKind::kRate}, 1.0).drop);
}

TEST(FaultInjector, PartitionDropsOnlyBoundaryCrossings) {
    FaultPlan plan;
    const AgentRef islander{AgentKind::kNode, 0};
    plan.partitions.push_back(PartitionWindow{{0.0, 10.0}, {islander}});
    FaultInjector injector(plan, 1);
    const AgentRef outsider{AgentKind::kSource, 0};
    const AgentRef other_outsider{AgentKind::kNode, 1};
    // Crossing the boundary in either direction: dropped.
    EXPECT_TRUE(injector.onMessage({outsider, islander, MessageKind::kRate}, 1.0).drop);
    EXPECT_TRUE(injector.onMessage({islander, outsider, MessageKind::kNodeReport}, 1.0).drop);
    // Outsider to outsider: flows.
    EXPECT_FALSE(injector.onMessage({outsider, other_outsider, MessageKind::kRate}, 1.0).drop);
    // Window closed: everything flows again.
    EXPECT_FALSE(injector.onMessage({outsider, islander, MessageKind::kRate}, 11.0).drop);
    EXPECT_EQ(injector.stats().messages_dropped, 2u);
}

TEST(FaultInjector, PriceCorruptionSkipsRateMessages) {
    FaultPlan plan;
    plan.corruptions.push_back(PriceCorruption{{0.0, 10.0}, 1.0, 25.0, std::nullopt});
    FaultInjector injector(plan, 1);
    const MessageContext rate{{AgentKind::kSource, 0}, {AgentKind::kNode, 0}, MessageKind::kRate};
    const MessageContext report{
        {AgentKind::kNode, 0}, {AgentKind::kSource, 0}, MessageKind::kNodeReport};
    EXPECT_DOUBLE_EQ(injector.onMessage(rate, 1.0).price_factor, 1.0);
    EXPECT_DOUBLE_EQ(injector.onMessage(report, 1.0).price_factor, 25.0);
    EXPECT_EQ(injector.stats().prices_corrupted, 1u);
}

TEST(Scenarios, CatalogCoversTheFaultVocabulary) {
    const auto scenarios = standard_scenarios(6, 4, 0);
    ASSERT_GE(scenarios.size(), 7u);
    bool has_loss = false, has_delay = false, has_reorder = false, has_partition = false,
         has_crash = false, has_corruption = false;
    for (const ChaosScenario& s : scenarios) {
        EXPECT_FALSE(s.plan.empty()) << s.name;
        EXPECT_NO_THROW(s.plan.validate()) << s.name;
        EXPECT_LT(s.fault_start, s.fault_end) << s.name;
        has_loss = has_loss || !s.plan.losses.empty();
        has_delay = has_delay || !s.plan.delay_spikes.empty();
        has_reorder = has_reorder || !s.plan.reorders.empty();
        has_partition = has_partition || !s.plan.partitions.empty();
        has_crash = has_crash || !s.plan.crashes.empty();
        has_corruption = has_corruption || !s.plan.corruptions.empty();
    }
    EXPECT_TRUE(has_loss && has_delay && has_reorder && has_partition && has_crash &&
                has_corruption);
    // No links in the base workload: no link scenarios.
    for (const ChaosScenario& s : scenarios)
        for (const PartitionWindow& p : s.plan.partitions)
            for (const AgentRef& a : p.island) EXPECT_NE(a.kind, AgentKind::kLink);
}

TEST(Scenarios, LinkScenarioGatedOnLinkCount) {
    const auto without = standard_scenarios(6, 4, 0);
    const auto with = standard_scenarios(6, 4, 2);
    EXPECT_EQ(with.size(), without.size() + 1);
}

TEST(FaultPlan, RejectsEmptyAsymmetricIsland) {
    FaultPlan plan;
    plan.asymmetric_partitions.push_back(AsymmetricPartitionWindow{{0.0, 1.0}, {}});
    EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultInjector, AsymmetricPartitionDropsOnlyIslandToOutside) {
    FaultPlan plan;
    const AgentRef islander{AgentKind::kNode, 0};
    plan.asymmetric_partitions.push_back(AsymmetricPartitionWindow{{0.0, 10.0}, {islander}});
    FaultInjector injector(plan, 1);
    const AgentRef outsider{AgentKind::kSource, 0};
    const AgentRef other_outsider{AgentKind::kNode, 1};
    // Island -> outside: dropped (the overlay cannot hear the island).
    EXPECT_TRUE(injector.onMessage({islander, outsider, MessageKind::kNodeReport}, 1.0).drop);
    // Outside -> island: flows (the island still hears the overlay).
    EXPECT_FALSE(injector.onMessage({outsider, islander, MessageKind::kRate}, 1.0).drop);
    // Outsider to outsider: unaffected.
    EXPECT_FALSE(injector.onMessage({outsider, other_outsider, MessageKind::kRate}, 1.0).drop);
    // Window closed: the island's reports flow again.
    EXPECT_FALSE(injector.onMessage({islander, outsider, MessageKind::kNodeReport}, 11.0).drop);
    EXPECT_EQ(injector.stats().messages_dropped, 1u);
}

TEST(Scenarios, CatalogIncludesFlappingAndAsymmetricScenarios) {
    const auto scenarios = standard_scenarios(6, 4, 0);
    bool has_flapping = false, has_asymmetric = false;
    for (const ChaosScenario& s : scenarios) {
        if (s.name == "flapping_link") {
            has_flapping = true;
            // Multiple short pulses, all inside [fault_start, fault_end].
            EXPECT_GE(s.plan.partitions.size(), 2u);
            for (const PartitionWindow& p : s.plan.partitions) {
                EXPECT_GE(p.window.start, s.fault_start);
                EXPECT_LE(p.window.end, s.fault_end);
            }
        }
        if (s.name == "asymmetric_partition") {
            has_asymmetric = true;
            EXPECT_EQ(s.plan.asymmetric_partitions.size(), 1u);
        }
    }
    EXPECT_TRUE(has_flapping);
    EXPECT_TRUE(has_asymmetric);
}

}  // namespace
