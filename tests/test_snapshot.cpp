// Warm-state snapshot property tests (lrgp/snapshot.hpp): an engine
// restored from a serialized snapshot must continue the interrupted
// trajectory bitwise-identically to an uninterrupted run — across many
// random workloads, with dynamic workload changes both before the
// snapshot and after the restore.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "lrgp/parallel_engine.hpp"
#include "lrgp/snapshot.hpp"
#include "workload/random_workload.hpp"

namespace {

using namespace lrgp;
using workload::make_random_workload;
using workload::RandomWorkloadOptions;

core::EngineConfig incremental_config() {
    core::EngineConfig config;
    config.threads = 1;
    config.incremental = true;
    return config;
}

/// The same mid-flight dynamic ops, applied to reference and donor alike.
void apply_midflight_ops(core::ParallelLrgpEngine& engine, const model::ProblemSpec& spec) {
    const model::NodeId node{0};
    engine.setNodeCapacity(node, spec.nodes()[0].capacity * 0.8);
    if (spec.flowCount() > 1)
        engine.removeFlow(model::FlowId{static_cast<std::uint32_t>(spec.flowCount() - 1)});
}

void apply_postrestore_ops(core::ParallelLrgpEngine& engine, const model::ProblemSpec& spec) {
    if (spec.flowCount() > 1)
        engine.restoreFlow(model::FlowId{static_cast<std::uint32_t>(spec.flowCount() - 1)});
    if (spec.nodeCount() > 1)
        engine.setNodeCapacity(model::NodeId{1}, spec.nodes()[1].capacity * 1.1);
}

TEST(SnapshotRoundTrip, BitwiseIdenticalResumeAcrossTwentySeeds) {
    for (std::uint32_t seed = 1; seed <= 20; ++seed) {
        RandomWorkloadOptions options;
        options.seed = seed;
        const model::ProblemSpec spec = make_random_workload(options);

        // Reference: one uninterrupted run with dynamic ops mid-flight.
        core::ParallelLrgpEngine reference(spec, {}, incremental_config());
        // Donor: identical run, interrupted by a snapshot at iteration 40.
        core::ParallelLrgpEngine donor(spec, {}, incremental_config());

        for (int i = 0; i < 15; ++i) {
            reference.step();
            donor.step();
        }
        apply_midflight_ops(reference, spec);
        apply_midflight_ops(donor, spec);
        for (int i = 0; i < 25; ++i) {
            reference.step();
            donor.step();
        }

        // Serialize -> bytes -> deserialize -> restore into a FRESH
        // engine built from the pristine spec (the crash-recovery path:
        // the dynamic ops must come back from the snapshot, not the spec).
        const std::string bytes = donor.snapshot().serialize();
        core::ParallelLrgpEngine restored(spec, {}, incremental_config());
        restored.restore(core::EngineSnapshot::deserialize(bytes));
        ASSERT_EQ(restored.iterationsRun(), reference.iterationsRun()) << "seed " << seed;

        // The continuation must be bitwise-identical, step by step.
        for (int i = 0; i < 20; ++i) {
            const double expected = reference.step().utility;
            const double actual = restored.step().utility;
            ASSERT_EQ(expected, actual) << "seed " << seed << " step " << i;
        }
        // Dynamic ops after the restore stay in lockstep too.
        apply_postrestore_ops(reference, spec);
        apply_postrestore_ops(restored, spec);
        for (int i = 0; i < 10; ++i)
            ASSERT_EQ(reference.step().utility, restored.step().utility)
                << "seed " << seed << " post-op step " << i;

        const auto& expected_prices = reference.prices();
        const auto& actual_prices = restored.prices();
        for (std::size_t b = 0; b < expected_prices.node.size(); ++b)
            ASSERT_EQ(expected_prices.node[b], actual_prices.node[b]) << "seed " << seed;
        for (std::size_t l = 0; l < expected_prices.link.size(); ++l)
            ASSERT_EQ(expected_prices.link[l], actual_prices.link[l]) << "seed " << seed;

        // runUntilConverged parity: same convergence iteration, same
        // final utility, bit for bit.
        const auto expected_conv = reference.runUntilConverged(400);
        const auto actual_conv = restored.runUntilConverged(400);
        EXPECT_EQ(expected_conv, actual_conv) << "seed " << seed;
        EXPECT_EQ(reference.currentUtility(), restored.currentUtility()) << "seed " << seed;
    }
}

TEST(SnapshotRoundTrip, RejectsShapeMismatch) {
    RandomWorkloadOptions a_options, b_options;
    a_options.seed = 3;
    a_options.min_flows = 2;
    a_options.max_flows = 2;
    b_options.seed = 4;
    b_options.min_flows = 5;
    b_options.max_flows = 5;
    const auto a_spec = make_random_workload(a_options);
    const auto b_spec = make_random_workload(b_options);
    core::ParallelLrgpEngine a(a_spec, {}, incremental_config());
    core::ParallelLrgpEngine b(b_spec, {}, incremental_config());
    a.run(5);
    EXPECT_THROW(b.restore(a.snapshot()), std::invalid_argument);
}

TEST(SnapshotRoundTrip, DeserializeRejectsCorruptedBytes) {
    RandomWorkloadOptions options;
    options.seed = 9;
    const auto spec = make_random_workload(options);
    core::ParallelLrgpEngine engine(spec, {}, incremental_config());
    engine.run(5);
    std::string bytes = engine.snapshot().serialize();
    EXPECT_THROW(core::EngineSnapshot::deserialize(bytes.substr(0, bytes.size() / 2)),
                 std::invalid_argument);
    bytes[0] ^= 0x5A;  // break the magic
    EXPECT_THROW(core::EngineSnapshot::deserialize(bytes), std::invalid_argument);
}

}  // namespace
