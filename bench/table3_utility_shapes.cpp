// Table 3 — "Convergence and quality of results as the utility function
// of a class varies".
//
// Runs the base workload under the four class-utility shapes the paper
// evaluates — rank*log(1+r), rank*r^0.25, rank*r^0.5, rank*r^0.75 — and
// reports LRGP's iterations-until-convergence and utility next to the
// best simulated-annealing result.
//
// Expected shape: iterations until convergence increase with the power
// exponent (paper: 21 / 23 / 28 / 39) because a steeper utility turns
// small price variations into larger rate variations; LRGP's utility
// matches or beats SA on every row (paper: +6.47% / +5.72% / +0.69% /
// +1.23%).
#include <cstdio>
#include <iostream>

#include "baseline/annealing.hpp"
#include "bench_util.hpp"
#include "lrgp/optimizer.hpp"
#include "metrics/table_writer.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace lrgp;
    const std::uint64_t sa_steps = bench::env_u64("LRGP_SA_STEPS", 100'000);

    struct Row {
        workload::UtilityShape shape;
        double paper_lrgp_utility;
        int paper_lrgp_iterations;
    };
    const Row rows[] = {
        {workload::UtilityShape::kLog, 1328821.0, 21},
        {workload::UtilityShape::kPow025, 926185.0, 23},
        {workload::UtilityShape::kPow05, 2003225.0, 28},
        {workload::UtilityShape::kPow075, 4735044.0, 39},
    };

    std::printf("Table 3: convergence and quality across utility shapes\n");
    std::printf("(SA budget: %llu steps per start temperature; LRGP_SA_STEPS overrides)\n\n",
                static_cast<unsigned long long>(sa_steps));

    metrics::TableWriter table({"utility function", "SA utility", "LRGP iters", "LRGP utility",
                                "utility increase", "paper LRGP utility", "paper iters"});

    for (const Row& row : rows) {
        const auto spec = workload::make_base_workload(row.shape);

        core::LrgpOptimizer opt(spec);
        opt.run(300);
        const std::size_t iters = opt.convergence().convergedAt();
        const double lrgp_utility = opt.currentUtility();

        const auto sa =
            baseline::best_of_annealing(spec, {5.0, 10.0, 50.0, 100.0}, sa_steps, 1);

        const double increase = 100.0 * (lrgp_utility - sa.best_utility) / sa.best_utility;
        char pct[32];
        std::snprintf(pct, sizeof pct, "%.2f%%", increase);
        table.addRow({"rank*" + workload::shape_name(row.shape), sa.best_utility,
                      static_cast<long long>(iters), lrgp_utility, std::string(pct),
                      row.paper_lrgp_utility, static_cast<long long>(row.paper_lrgp_iterations)});
    }

    table.printTable(std::cout);
    std::printf("\nExpected shape (paper): iterations grow with the exponent\n"
                "(21/23/28/39); LRGP utility >= SA utility on every row.\n");
    return 0;
}
