// Ablation: the convergence-detector window.
//
// The paper declares convergence when the amplitude of the utility
// oscillation drops below 0.1% of the utility, but does not say over how
// many iterations the amplitude is measured.  Our detector uses a
// trailing window (default 10).  This harness sweeps the window and the
// threshold on the base workload to show how the reported
// "iterations until convergence" — the number Tables 2 and 3 quote —
// depends on that choice.  A window of ~5 reproduces the paper's 21;
// wider windows report later convergence for the same trajectory.
#include <cstdio>
#include <iostream>

#include "lrgp/optimizer.hpp"
#include "metrics/table_writer.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace lrgp;

    std::printf("Ablation: convergence detector window/threshold (base workload)\n");
    std::printf("(paper reports 21 iterations for this workload)\n\n");

    metrics::TableWriter table({"window", "threshold", "converged at", "utility at that point"});
    for (std::size_t window : {3u, 5u, 10u, 20u, 40u}) {
        for (double threshold : {1e-2, 1e-3, 1e-4}) {
            core::LrgpOptions options;
            options.convergence.window = window;
            options.convergence.relative_amplitude = threshold;
            core::LrgpOptimizer opt(workload::make_base_workload(), options);
            opt.run(400);
            const std::size_t conv = opt.convergence().convergedAt();
            char thr[16];
            std::snprintf(thr, sizeof thr, "%.2f%%", 100.0 * threshold);
            table.addRow({static_cast<long long>(window), std::string(thr),
                          conv ? std::to_string(conv) : std::string("never"),
                          conv ? opt.utilityTrace()[conv - 1] : 0.0});
        }
    }
    table.printTable(std::cout);
    std::printf("\nThe trajectory is identical in every row; only the detector\n"
                "changes.  Iteration counts in our tables use window=10.\n");
    return 0;
}
