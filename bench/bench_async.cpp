// Async shard-agent runtime benchmark: live-fault recovery on real
// threads.
//
// Where bench_chaos measures the discrete-event simulation of the
// hardened protocol, this harness runs the multi-threaded
// AsyncShardRuntime (one agent thread per shard, virtual-time lockstep)
// through the same fault catalog with the FaultInjector embedded in the
// transport, and verifies three properties the runtime contract
// promises:
//
//   1. every shipped scenario reconverges to within 1% of the pre-fault
//      steady state, with a bounded time-to-reconverge;
//   2. the deterministic mode is byte-identical across reruns (digest
//      logs and utility traces compared across two full runs);
//   3. nothing deadlocks — every runFor() returns (a hung barrier or a
//      stuck shrink handshake would hang the harness, so completion is
//      itself the check; `deadlocks` is reported for the guard script).
//
// A fault-free run vs the lockstep sharded engine rides along to bound
// the price of asynchrony.  Writes BENCH_async.json.
// LRGP_ASYNC_SECONDS overrides the horizon.
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "faults/scenarios.hpp"
#include "io/json.hpp"
#include "metrics/recovery.hpp"
#include "runtime/runtime.hpp"
#include "shard/sharded_engine.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;

constexpr int kAgents = 4;
constexpr double kFaultStart = 10.0;
constexpr double kFaultDuration = 2.0;
constexpr double kSamplePeriod = 0.05;

runtime::RuntimeOptions async_options(const faults::FaultPlan& plan) {
    runtime::RuntimeOptions options;
    options.agents = kAgents;
    options.sample_period = kSamplePeriod;
    options.fault_plan = plan;
    return options;
}

struct ScenarioResult {
    metrics::RecoveryReport report;
    runtime::RuntimeStats stats;
};

ScenarioResult run_scenario(const model::ProblemSpec& spec, const faults::FaultPlan& plan,
                            double horizon) {
    runtime::AsyncShardRuntime rt(spec, {}, async_options(plan));
    rt.runFor(horizon);
    // Samples land at k*kSamplePeriod (k = 1, 2, ...); index the last
    // one strictly before the fault opens.
    const std::size_t fault_index =
        static_cast<std::size_t>(kFaultStart / kSamplePeriod) - 1;
    ScenarioResult r;
    r.report = metrics::analyze_recovery(rt.utilityTrace(), fault_index, kSamplePeriod, {});
    r.stats = rt.stats();
    return r;
}

io::JsonObject scenario_json(const ScenarioResult& r) {
    io::JsonObject o;
    o["baseline_utility"] = r.report.baseline_utility;
    o["min_utility"] = r.report.min_utility;
    o["max_dip"] = r.report.max_dip;
    o["dip_integral_utility_seconds"] = r.report.dip_integral;
    o["reconverged"] = r.report.reconverged;
    // -1 marks "never" (JSON has no infinity).  Virtual seconds.
    o["time_to_reconverge_seconds"] = r.report.reconverged ? r.report.time_to_reconverge : -1.0;
    o["messages_sent"] = static_cast<double>(r.stats.messages_sent);
    o["dropped_fault"] = static_cast<double>(r.stats.dropped_fault);
    o["dropped_backpressure"] = static_cast<double>(r.stats.dropped_backpressure);
    o["suspicions"] = static_cast<double>(r.stats.totals.suspicions);
    o["recoveries"] = static_cast<double>(r.stats.totals.recoveries);
    o["degradations"] = static_cast<double>(r.stats.totals.degradations);
    o["crashes"] = static_cast<double>(r.stats.totals.crashes);
    o["restarts"] = static_cast<double>(r.stats.totals.restarts);
    o["snapshot_restores"] = static_cast<double>(r.stats.totals.snapshot_restores);
    o["retries"] = static_cast<double>(r.stats.totals.retries);
    o["stale_rejections"] = static_cast<double>(r.stats.totals.digests_rejected_stale);
    return o;
}

/// Two full runs of the same chaotic configuration on live threads:
/// utility traces and every agent's digest log must match byte for byte.
bool determinism_check(const model::ProblemSpec& spec, const faults::FaultPlan& plan,
                       double horizon) {
    runtime::RuntimeOptions options = async_options(plan);
    options.keep_digest_log = true;
    runtime::AsyncShardRuntime a(spec, {}, options);
    a.runFor(horizon);
    runtime::AsyncShardRuntime b(spec, {}, options);
    b.runFor(horizon);
    if (a.utilityTrace().samples() != b.utilityTrace().samples()) return false;
    for (int i = 0; i < kAgents; ++i)
        if (a.digestLog(i) != b.digestLog(i)) return false;
    return true;
}

}  // namespace

int main() {
    const auto horizon = static_cast<double>(bench::env_u64("LRGP_ASYNC_SECONDS", 24));
    const model::ProblemSpec spec = workload::make_base_workload();
    const auto scenarios =
        faults::standard_scenarios(kAgents, kAgents, 0, kFaultStart, kFaultDuration);

    std::printf("Async runtime benchmark: %d agent threads, %zu flows, %zu nodes\n",
                kAgents, spec.flowCount(), spec.nodeCount());
    std::printf("faults open at t=%.1fs for %.1fs, horizon %.0f virtual s, sampled "
                "every %.2fs\n\n",
                kFaultStart, kFaultDuration, horizon, kSamplePeriod);
    std::printf("%-22s %10s %14s %10s %10s\n", "scenario", "ttr[s]", "dip[U*s]",
                "suspicions", "drops");

    io::JsonArray rows;
    bool all_reconverged = true;
    for (const faults::ChaosScenario& scenario : scenarios) {
        const ScenarioResult r = run_scenario(spec, scenario.plan, horizon);
        all_reconverged = all_reconverged && r.report.reconverged;
        std::printf("%-22s %10.2f %14.1f %10llu %10llu\n", scenario.name.c_str(),
                    r.report.reconverged ? r.report.time_to_reconverge : -1.0,
                    r.report.dip_integral,
                    static_cast<unsigned long long>(r.stats.totals.suspicions),
                    static_cast<unsigned long long>(r.stats.dropped_fault));

        io::JsonObject row;
        row["name"] = scenario.name;
        row["description"] = scenario.description;
        row["fault_start"] = scenario.fault_start;
        row["fault_end"] = scenario.fault_end;
        row["result"] = scenario_json(r);
        rows.emplace_back(std::move(row));
    }

    // Price of asynchrony: fault-free async utility vs the lockstep
    // sharded engine over the same K-way partition.
    runtime::AsyncShardRuntime fault_free(spec, {}, async_options({}));
    fault_free.runFor(12.0);
    shard::ShardedConfig sharded_config;
    sharded_config.shards = kAgents;
    sharded_config.threads = 1;
    shard::ShardedLrgpEngine sharded(spec, {}, sharded_config);
    sharded.runUntilConverged(3000);
    const double async_utility = fault_free.currentUtility();
    const double sync_utility = sharded.currentUtility();
    const double asynchrony_gap =
        sync_utility > 0.0 ? (sync_utility - async_utility) / sync_utility : 0.0;
    std::printf("\nfault-free: async %.1f vs lockstep %.1f (gap %.3f%%)\n", async_utility,
                sync_utility, 100.0 * asynchrony_gap);

    // Byte-identical determinism across reruns, under the nastiest
    // repeated-transient scenario in the catalog.
    bool deterministic = true;
    for (const faults::ChaosScenario& scenario : scenarios) {
        if (scenario.name != "flapping_link") continue;
        deterministic = determinism_check(spec, scenario.plan, horizon);
    }
    std::printf("deterministic reruns: %s\n", deterministic ? "byte-identical" : "DIVERGED");
    std::printf("%s\n", all_reconverged
                            ? "All scenarios reconverged to within 1% of the pre-fault "
                              "steady state."
                            : "WARNING: some scenario failed to reconverge!");

    io::JsonObject root;
    root["bench"] = std::string("bench_async");
    root["machine"] = bench::machine_json();
    root["agents"] = static_cast<double>(kAgents);
    {
        io::JsonObject workload_info;
        workload_info["flows"] = static_cast<double>(spec.flowCount());
        workload_info["nodes"] = static_cast<double>(spec.nodeCount());
        workload_info["classes"] = static_cast<double>(spec.classCount());
        root["workload"] = std::move(workload_info);
    }
    root["sample_period"] = kSamplePeriod;
    root["horizon_seconds"] = horizon;
    root["fault_start"] = kFaultStart;
    root["fault_duration"] = kFaultDuration;
    root["scenarios"] = std::move(rows);
    root["fault_free_async_utility"] = async_utility;
    root["fault_free_sync_utility"] = sync_utility;
    root["asynchrony_gap_fraction"] = asynchrony_gap;
    root["all_reconverged"] = all_reconverged;
    root["deterministic"] = deterministic;
    // Completion of every runFor above IS the liveness proof; a stuck
    // handshake would have hung the harness instead of writing this.
    root["deadlocks"] = 0.0;

    std::ofstream out("BENCH_async.json");
    out << io::JsonValue(std::move(root)).dump(true) << "\n";
    std::printf("wrote BENCH_async.json\n");
    return all_reconverged && deterministic ? 0 : 1;
}
