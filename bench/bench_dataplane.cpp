// Dataplane benchmark: the planned-vs-achieved utility gap, drop rate
// and delivery latency of enacted LRGP allocations under three
// conditions — steady state, flow churn (a source departs mid-run) and
// a network partition that cuts all consumer-hosting nodes off from the
// sources.  Each condition runs with three seeds; the distributed
// protocol's allocation-level recovery numbers are reported next to the
// dataplane's *measured* recovery so the two layers can be compared
// (same dip sign, same reconvergence ordering).
//
// Writes BENCH_dataplane.json.  Every quantity in the JSON derives from
// the simulation alone, so a same-seed rerun is byte-identical — CI
// diffs two runs to enforce it.  LRGP_DATAPLANE_SECONDS overrides the
// horizon; LRGP_DATAPLANE_OUT overrides the output path.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dataplane/closed_loop.hpp"
#include "dataplane/dataplane.hpp"
#include "dist/dist_lrgp.hpp"
#include "faults/fault_plan.hpp"
#include "io/json.hpp"
#include "metrics/recovery.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;

constexpr sim::SimTime kFaultStart = 10.0;
constexpr sim::SimTime kFaultDuration = 2.0;
constexpr sim::SimTime kDistSamplePeriod = 0.05;
constexpr double kDataplaneSamplePeriod = 0.5;

struct ScenarioResult {
    dataplane::DataplaneStats stats;
    metrics::RecoveryReport allocation_recovery;
    metrics::RecoveryReport measured_recovery;
    double achieved_steady = 0.0;  ///< trailing-window mean of achieved utility
    double planned_steady = 0.0;
    std::size_t enactments = 0;
    std::size_t suppressions = 0;
};

model::ProblemSpec bench_workload() {
    // The Table 1 shape, scaled so the enacted optimum leaves queueing
    // headroom: the benchmark measures enactment fidelity and fault
    // dips, not overload collapse (test_dataplane covers that).
    workload::WorkloadOptions options;
    options.rate_max = 60.0;
    options.node_capacity = 3.0e7;
    return workload::make_scaled_workload(options);
}

faults::FaultPlan partition_plan(const model::ProblemSpec& spec) {
    faults::FaultPlan plan;
    faults::PartitionWindow partition;
    partition.window = {kFaultStart, kFaultStart + kFaultDuration};
    for (std::uint32_t n = 0; n < spec.nodeCount(); ++n) {
        partition.island.push_back({faults::AgentKind::kNode, n});
    }
    plan.partitions.push_back(partition);
    return plan;
}

ScenarioResult run_scenario(const model::ProblemSpec& spec, const std::string& scenario,
                            std::uint32_t seed, sim::SimTime horizon) {
    dist::DistOptions dopts;
    dopts.synchronous = false;
    dopts.sample_period = kDistSamplePeriod;
    dopts.seed = seed;
    dopts.robustness = dist::RobustnessOptions::standard();
    if (scenario == "partition") dopts.fault_plan = partition_plan(spec);

    dist::DistLrgp engine{model::ProblemSpec(spec), dopts};

    dataplane::DataplaneOptions popts;
    popts.arrivals = dataplane::ArrivalProcess::kPoisson;
    popts.seed = 1000 + seed;
    popts.token_bucket_depth = 64.0;  // police the mean, tolerate Poisson bursts
    popts.sample_period = kDataplaneSamplePeriod;
    dataplane::Dataplane dp(spec, popts);

    core::EnactmentOptions eopts;
    eopts.rate_deadband = 0.02;
    eopts.population_deadband = 0;
    eopts.min_interval = 1.0;
    dataplane::DistCoupling coupling(engine, dp, eopts);

    if (scenario == "flow_churn") {
        engine.removeFlowAt(model::FlowId{static_cast<std::uint32_t>(spec.flowCount() - 1)},
                            kFaultStart);
    }
    engine.runFor(horizon);
    dp.runUntil(horizon);

    ScenarioResult r;
    r.stats = dp.collectStats();
    r.enactments = coupling.enactments();
    r.suppressions = coupling.suppressions();
    const std::size_t window = 10;  // last 5 seconds of dataplane samples
    r.achieved_steady = dp.achievedUtilityTrace().trailingMean(window);
    r.planned_steady = dp.plannedUtilityTrace().trailingMean(window);

    metrics::RecoveryOptions alloc_opts;
    alloc_opts.epsilon = 0.02;
    if (scenario == "flow_churn") alloc_opts.target = metrics::RecoveryTarget::kFinalSteadyState;
    r.allocation_recovery = metrics::analyze_recovery(
        engine.utilityTrace(), static_cast<std::size_t>(kFaultStart / kDistSamplePeriod) - 1,
        kDistSamplePeriod, alloc_opts);

    metrics::RecoveryOptions measured_opts;
    measured_opts.epsilon = 0.05;
    measured_opts.baseline_window = 10;
    measured_opts.settle_window = 5;
    if (scenario == "flow_churn")
        measured_opts.target = metrics::RecoveryTarget::kFinalSteadyState;
    r.measured_recovery = metrics::analyze_recovery(
        dp.achievedUtilityTrace(),
        static_cast<std::size_t>(kFaultStart / kDataplaneSamplePeriod) - 1,
        kDataplaneSamplePeriod, measured_opts);
    return r;
}

io::JsonObject recovery_json(const metrics::RecoveryReport& r) {
    io::JsonObject o;
    o["baseline_utility"] = r.baseline_utility;
    o["target_utility"] = r.target_utility;
    o["min_utility"] = r.min_utility;
    o["max_dip"] = r.max_dip;
    o["dip_integral_utility_seconds"] = r.dip_integral;
    o["reconverged"] = r.reconverged;
    o["time_to_reconverge_seconds"] = r.reconverged ? r.time_to_reconverge : -1.0;
    return o;
}

io::JsonObject result_json(std::uint32_t seed, const ScenarioResult& r) {
    io::JsonObject o;
    o["seed"] = static_cast<double>(seed);
    o["planned_utility"] = r.planned_steady;
    o["achieved_utility"] = r.achieved_steady;
    o["utility_gap_fraction"] =
        r.planned_steady > 0.0 ? (r.planned_steady - r.achieved_steady) / r.planned_steady : 0.0;
    o["drop_rate"] = r.stats.drop_rate;
    o["emitted"] = static_cast<double>(r.stats.total_emitted);
    o["shaped"] = static_cast<double>(r.stats.total_shaped);
    o["delivered"] = static_cast<double>(r.stats.total_delivered);
    o["dropped_link"] = static_cast<double>(r.stats.dropped_link);
    o["dropped_node"] = static_cast<double>(r.stats.dropped_node);
    o["latency_p50_seconds"] = r.stats.latency.p50;
    o["latency_p99_seconds"] = r.stats.latency.p99;
    o["enactments"] = static_cast<double>(r.enactments);
    o["suppressions"] = static_cast<double>(r.suppressions);
    o["allocation_recovery"] = recovery_json(r.allocation_recovery);
    o["measured_recovery"] = recovery_json(r.measured_recovery);
    // Cross-layer consistency: the measured trace must tell the same
    // story as the allocation trace.  The measured threshold is higher
    // because Poisson arrivals put ~5-10% of sampling noise on each
    // 0.5s window even at steady state; a real fault dip is far deeper.
    const bool alloc_dipped = r.allocation_recovery.max_dip >
                              0.05 * r.allocation_recovery.baseline_utility;
    const bool measured_dipped = r.measured_recovery.max_dip >
                                 0.15 * r.measured_recovery.baseline_utility;
    o["consistent_dip_sign"] = alloc_dipped == measured_dipped;
    o["consistent_recovery"] =
        r.allocation_recovery.reconverged == r.measured_recovery.reconverged;
    return o;
}

}  // namespace

int main() {
    const auto horizon =
        static_cast<sim::SimTime>(bench::env_u64("LRGP_DATAPLANE_SECONDS", 24));
    const char* out_env = std::getenv("LRGP_DATAPLANE_OUT");
    const std::string out_path = out_env != nullptr ? out_env : "BENCH_dataplane.json";

    const model::ProblemSpec spec = bench_workload();
    const std::vector<std::string> scenarios{"steady_state", "flow_churn", "partition"};
    const std::vector<std::uint32_t> seeds{1, 2, 3};

    std::printf("Dataplane benchmark: %zu flows, %zu nodes, %zu classes, horizon %.0fs\n",
                spec.flowCount(), spec.nodeCount(), spec.classCount(), horizon);
    std::printf("%-14s %6s %14s %14s %8s %10s %10s %8s\n", "scenario", "seed", "planned",
                "achieved", "gap[%]", "drop_rate", "ttr[s]", "enacts");

    bool all_consistent = true;
    io::JsonArray scenario_rows;
    for (const std::string& scenario : scenarios) {
        io::JsonArray seed_rows;
        for (const std::uint32_t seed : seeds) {
            const ScenarioResult r = run_scenario(spec, scenario, seed, horizon);
            io::JsonObject row = result_json(seed, r);
            const double gap = row.at("utility_gap_fraction").asNumber();
            const double ttr = row.at("measured_recovery").at("time_to_reconverge_seconds")
                                   .asNumber();
            all_consistent = all_consistent && row.at("consistent_dip_sign").asBool() &&
                             row.at("consistent_recovery").asBool();
            std::printf("%-14s %6u %14.1f %14.1f %8.2f %10.5f %10.2f %8zu\n", scenario.c_str(),
                        seed, r.planned_steady, r.achieved_steady, 100.0 * gap,
                        r.stats.drop_rate, ttr, r.enactments);
            seed_rows.emplace_back(std::move(row));
        }
        io::JsonObject block;
        block["name"] = scenario;
        block["seeds"] = io::JsonValue(std::move(seed_rows));
        scenario_rows.emplace_back(std::move(block));
    }

    std::printf("\n%s\n", all_consistent
                              ? "Measured recovery agrees with allocation-level recovery in "
                                "every run."
                              : "WARNING: measured and allocation-level recovery disagree!");

    io::JsonObject root;
    root["bench"] = std::string("bench_dataplane");
    root["machine"] = bench::machine_json();
    {
        io::JsonObject workload_info;
        workload_info["flows"] = static_cast<double>(spec.flowCount());
        workload_info["nodes"] = static_cast<double>(spec.nodeCount());
        workload_info["classes"] = static_cast<double>(spec.classCount());
        workload_info["rate_max"] = 60.0;
        workload_info["node_capacity"] = 3.0e7;
        root["workload"] = io::JsonValue(std::move(workload_info));
    }
    {
        io::JsonObject options;
        options["horizon_seconds"] = horizon;
        options["fault_start"] = kFaultStart;
        options["fault_duration"] = kFaultDuration;
        options["dist_sample_period"] = kDistSamplePeriod;
        options["dataplane_sample_period"] = kDataplaneSamplePeriod;
        options["arrivals"] = "poisson";
        root["options"] = io::JsonValue(std::move(options));
    }
    root["scenarios"] = io::JsonValue(std::move(scenario_rows));
    root["all_consistent"] = all_consistent;

    std::ofstream out(out_path);
    out << io::JsonValue(std::move(root)).dump(true) << "\n";
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
