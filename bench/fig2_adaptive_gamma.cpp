// Figure 2 — "The effect of adaptive gamma".
//
// Compares the adaptive-gamma heuristic (grow by 0.001 per quiet
// iteration, halve on fluctuation, clamp to [0.001, 0.1]) against fixed
// gamma on the base workload.  The paper's claims: adaptive converges
// faster than fixed, and leaves only small residual fluctuations.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "lrgp/optimizer.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace lrgp;
    constexpr int kIterations = 250;

    struct Run {
        std::string name;
        core::GammaPolicy policy;
    };
    const Run configs[] = {
        {"adaptive", core::AdaptiveGamma{}},
        {"fixed=0.1", core::FixedGamma{0.1, 0.1}},
        {"fixed=0.01", core::FixedGamma{0.01, 0.01}},
    };

    std::vector<std::unique_ptr<core::LrgpOptimizer>> runs;
    std::vector<std::string> names;
    for (const Run& cfg : configs) {
        core::LrgpOptions options;
        options.gamma = cfg.policy;
        runs.push_back(std::make_unique<core::LrgpOptimizer>(
            workload::make_base_workload(workload::UtilityShape::kLog), options));
        runs.back()->run(kIterations);
        names.push_back(cfg.name);
    }

    std::printf("Figure 2: adaptive vs fixed gamma (base workload)\n");
    std::printf("%-12s %18s %22s %24s\n", "policy", "final utility", "converged at (0.1%)",
                "rel. amp. iters 200-220");
    for (std::size_t k = 0; k < runs.size(); ++k) {
        const auto& trace = runs[k]->utilityTrace();
        // Relative amplitude over the paper's inset window [200, 220].
        double lo = trace[199], hi = lo, sum = 0.0;
        for (std::size_t i = 199; i < 220; ++i) {
            lo = std::min(lo, trace[i]);
            hi = std::max(hi, trace[i]);
            sum += trace[i];
        }
        const double inset_amp = (hi - lo) / (sum / 21.0);
        const std::size_t conv = runs[k]->convergence().convergedAt();
        std::printf("%-12s %18.0f %22zu %23.4f%%\n", names[k].c_str(), trace.back(), conv,
                    100.0 * inset_amp);
    }
    std::printf("\nExpected shape (paper): adaptive converges fastest and keeps only\n"
                "small fluctuations in the 200-220 inset window.\n");

    std::vector<const metrics::TimeSeries*> series;
    for (const auto& r : runs) series.push_back(&r->utilityTrace());
    bench::print_series("utility vs iteration (every 5th)", names, series, 5);
    return 0;
}
