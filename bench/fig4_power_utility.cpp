// Figure 4 — "Global utility when the class utility is rank * r^0.75".
//
// Runs LRGP on the base workload with the steepest evaluated power
// utility and prints the utility trajectory.  Section 4.5's observation:
// the larger the exponent, the slower the convergence (a small price
// variation translates into a progressively larger rate variation).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "lrgp/optimizer.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace lrgp;
    constexpr int kIterations = 250;

    core::LrgpOptimizer opt(workload::make_base_workload(workload::UtilityShape::kPow075));
    opt.run(kIterations);

    const auto& trace = opt.utilityTrace();
    std::printf("Figure 4: global utility, class utility rank * r^0.75\n");
    std::printf("final utility:        %14.0f   (paper's LRGP value: 4,735,044)\n",
                trace.back());
    std::printf("converged at (0.1%%):  %14zu   (paper: 39 iterations)\n",
                opt.convergence().convergedAt());

    // Convergence comparison across exponents (Section 4.5's trend).
    std::printf("\nconvergence trend across shapes (paper: 21 / 23 / 28 / 39):\n");
    const workload::UtilityShape shapes[] = {
        workload::UtilityShape::kLog, workload::UtilityShape::kPow025,
        workload::UtilityShape::kPow05, workload::UtilityShape::kPow075};
    for (auto shape : shapes) {
        core::LrgpOptimizer o(workload::make_base_workload(shape));
        o.run(kIterations);
        std::printf("  %-10s converged at %zu\n", workload::shape_name(shape).c_str(),
                    o.convergence().convergedAt());
    }

    std::vector<const metrics::TimeSeries*> series{&trace};
    bench::print_series("utility vs iteration (every 5th)", {"rank*r^0.75"}, series, 5);
    return 0;
}
