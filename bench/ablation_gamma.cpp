// Ablation: the adaptive-gamma heuristic's parameters (Section 4.2).
//
// The paper constrains gamma to [0.001, 0.1], grows it by 0.001 per
// quiet iteration, and halves it on fluctuation.  This harness sweeps
// each knob on the base workload and reports convergence iteration and
// residual oscillation, justifying the paper's choices:
//  * a wider clamp (up to 1.0) converges no faster and wobbles more;
//  * a tighter clamp (up to 0.01) converges late;
//  * the increment mostly trades recovery speed for late-run wobble;
//  * gentler shrink (0.75) keeps gamma too hot after oscillation starts.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "lrgp/optimizer.hpp"
#include "metrics/table_writer.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace lrgp;

    struct Config {
        const char* name;
        core::AdaptiveGamma gamma;
    };
    auto adaptive = [](double lo, double hi, double increment, double shrink) {
        core::AdaptiveGamma g;
        g.min = lo;
        g.max = hi;
        g.initial = hi;
        g.increment = increment;
        g.shrink = shrink;
        return g;
    };
    const Config configs[] = {
        {"paper: [0.001,0.1] +0.001 x0.5", adaptive(0.001, 0.1, 0.001, 0.5)},
        {"wide clamp [0.001,1.0]", adaptive(0.001, 1.0, 0.001, 0.5)},
        {"tight clamp [0.001,0.01]", adaptive(0.001, 0.01, 0.001, 0.5)},
        {"fast increment +0.01", adaptive(0.001, 0.1, 0.01, 0.5)},
        {"no increment +0", adaptive(0.001, 0.1, 0.0, 0.5)},
        {"gentle shrink x0.75", adaptive(0.001, 0.1, 0.001, 0.75)},
        {"harsh shrink x0.1", adaptive(0.001, 0.1, 0.001, 0.1)},
    };

    std::printf("Ablation: adaptive-gamma parameters (base workload, 250 iterations)\n\n");
    metrics::TableWriter table(
        {"configuration", "converged at (0.1%)", "final utility", "residual amp (last 50)"});

    for (const Config& cfg : configs) {
        core::LrgpOptions options;
        options.gamma = cfg.gamma;
        core::LrgpOptimizer opt(workload::make_base_workload(), options);
        opt.run(250);
        const auto& trace = opt.utilityTrace();
        char amp[32];
        std::snprintf(amp, sizeof amp, "%.4f%%",
                      100.0 * trace.trailingRelativeAmplitude(50));
        const std::size_t conv = opt.convergence().convergedAt();
        table.addRow({std::string(cfg.name),
                      conv ? std::to_string(conv) : std::string("never"),
                      trace.trailingMean(10), std::string(amp)});
    }
    table.printTable(std::cout);
    std::printf("\nThe paper's clamp/increment/shrink choices sit at the knee:\n"
                "faster settings wobble more, slower settings converge later.\n");
    return 0;
}
