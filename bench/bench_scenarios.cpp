// Production scenario matrix: every pinned (topology x traffic x
// utility) catalog cell replayed end to end, with the measurements the
// perf guard pins:
//
//   1. utility-vs-best-known per cell — the incremental engine tracking
//      the dynamic-op schedule must land within a few percent of a
//      fresh serial solve of the end-state problem;
//   2. recovery metrics around each cell's principal disturbance
//      (metrics::analyze_recovery — dip integral, time to reconverge);
//   3. dataplane drop rates per cell — headroom cells deliver the plan,
//      the overdrive twin binds capacity and drops >= 20% (the PR 4
//      finding, here pinned as `overdrive_contract`);
//   4. determinism — a full rebuild+rerun of two pinned cells must
//      reproduce the problem JSON, the manifest and the utility trace
//      byte for byte;
//   5. a cross-engine differential spot check — serial, compiled,
//      incremental and sharded K=1 agree bitwise on a static cell,
//      sharded K=4 within 1%, the async runtime within tolerance on a
//      churn cell.  (The exhaustive matrix lives in `ctest -L
//      scenario`; the bench carries one row so the guard sees it.)
//
// Writes BENCH_scenarios.json.  LRGP_SCENARIO_DATAPLANE=0 skips the
// packet-level runs for a quick smoke.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "io/json.hpp"
#include "io/problem_json.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace lrgp;

// Cells whose rebuilt+rerun bytes are compared; one static, one churn.
const char* kDeterminismCells[] = {"fat_tree_heavy_tail_shifted_log",
                                   "small_world_churn_sigmoid"};
constexpr const char* kDifferentialCell = "fat_tree_heavy_tail_shifted_log";
constexpr const char* kAsyncCell = "fat_tree_churn_step";
constexpr const char* kOverdriveCell = "fat_tree_heavy_tail_shifted_log_overdrive";
constexpr const char* kHeadroomTwin = "fat_tree_heavy_tail_shifted_log";

std::string trace_bytes(const metrics::TimeSeries& trace) {
    std::string bytes;
    bytes.reserve(trace.size() * sizeof(double));
    for (const double sample : trace.samples())
        bytes.append(reinterpret_cast<const char*>(&sample), sizeof(double));
    return bytes;
}

bool allocations_bitwise_equal(const model::Allocation& a, const model::Allocation& b) {
    if (a.rates.size() != b.rates.size() || a.populations.size() != b.populations.size())
        return false;
    for (std::size_t i = 0; i < a.rates.size(); ++i)
        if (a.rates[i] != b.rates[i]) return false;
    for (std::size_t i = 0; i < a.populations.size(); ++i)
        if (a.populations[i] != b.populations[i]) return false;
    return true;
}

io::JsonObject cell_json(const scenario::ScenarioSpec& spec,
                         const scenario::ScenarioRunReport& report) {
    io::JsonObject o;
    o["name"] = spec.options.name;
    o["topology"] = spec.options.topology;
    o["traffic"] = spec.options.traffic;
    o["utility_mix"] = spec.options.utility;
    o["overdrive"] = spec.options.overdrive;
    o["seed"] = static_cast<double>(spec.options.seed);
    o["nodes"] = static_cast<double>(spec.problem.nodeCount());
    o["links"] = static_cast<double>(spec.problem.linkCount());
    o["flows"] = static_cast<double>(spec.problem.flowCount());
    o["classes"] = static_cast<double>(spec.problem.classCount());
    o["ops"] = static_cast<double>(spec.schedule.size());
    o["engine"] = report.engine;
    o["final_utility"] = report.final_utility;
    o["best_known_utility"] = report.best_known_utility;
    o["utility_vs_best"] = report.utility_vs_best;
    o["converged"] = report.converged;
    o["iterations"] = static_cast<double>(report.iterations);
    o["ops_applied"] = static_cast<double>(report.ops_applied);
    if (report.has_recovery) {
        io::JsonObject r;
        r["reconverged"] = report.recovery.reconverged;
        // -1 marks "never" (JSON has no infinity).
        r["time_to_reconverge_seconds"] =
            report.recovery.reconverged ? report.recovery.time_to_reconverge : -1.0;
        r["dip_integral_utility_seconds"] = report.recovery.dip_integral;
        r["max_dip"] = report.recovery.max_dip;
        o["recovery"] = std::move(r);
    }
    if (report.has_dataplane) {
        io::JsonObject d;
        d["drop_rate"] = report.drop_rate;
        d["planned_mean"] = report.planned_mean;
        d["achieved_mean"] = report.achieved_mean;
        d["achieved_vs_planned"] = report.achieved_vs_planned;
        o["dataplane"] = std::move(d);
    }
    return o;
}

/// Rebuild the cell from scratch and rerun it: options in, bytes out.
struct CellRun {
    std::string problem_json;
    std::string manifest;
    std::string trace;
    double final_utility = 0.0;
};

CellRun run_cell_bytes(const std::string& name, bool with_dataplane) {
    const scenario::ScenarioSpec spec = scenario::build_scenario(scenario::find_scenario(name));
    scenario::RunnerOptions options;
    options.with_dataplane = with_dataplane;
    const scenario::ScenarioRunReport report = scenario::run_scenario(spec, options);
    CellRun run;
    run.problem_json = io::problem_to_json_string(spec.problem, true);
    run.manifest = spec.manifestString();
    run.trace = trace_bytes(report.utility_trace);
    run.final_utility = report.final_utility;
    return run;
}

}  // namespace

int main() {
    const bool with_dataplane = bench::env_u64("LRGP_SCENARIO_DATAPLANE", 1) != 0;
    const auto& catalog = scenario::scenario_catalog();

    std::printf("Scenario matrix: %zu pinned cells%s\n\n", catalog.size(),
                with_dataplane ? "" : " (dataplane skipped)");
    std::printf("%-42s %9s %8s %7s %7s\n", "cell", "util/best", "ttr[s]", "drops",
                "ach/plan");

    io::JsonArray rows;
    bool all_tracked = true;
    double overdrive_drop_rate = -1.0;
    double headroom_drop_rate = -1.0;
    double headroom_achieved_vs_planned = -1.0;
    for (const scenario::ScenarioOptions& cell : catalog) {
        const scenario::ScenarioSpec spec = scenario::build_scenario(cell);
        scenario::RunnerOptions options;
        options.with_dataplane = with_dataplane;
        const scenario::ScenarioRunReport report = scenario::run_scenario(spec, options);
        all_tracked = all_tracked && report.utility_vs_best >= 0.95;
        if (cell.name == kOverdriveCell) overdrive_drop_rate = report.drop_rate;
        if (cell.name == kHeadroomTwin) {
            headroom_drop_rate = report.drop_rate;
            headroom_achieved_vs_planned = report.achieved_vs_planned;
        }
        std::printf("%-42s %9.4f %8.2f %7.3f %7.3f\n", cell.name.c_str(),
                    report.utility_vs_best,
                    report.has_recovery && report.recovery.reconverged
                        ? report.recovery.time_to_reconverge
                        : -1.0,
                    report.has_dataplane ? report.drop_rate : -1.0,
                    report.has_dataplane ? report.achieved_vs_planned : -1.0);
        rows.emplace_back(cell_json(spec, report));
    }

    // Determinism: rebuild + rerun two pinned cells, compare bytes.
    bool deterministic = true;
    for (const char* name : kDeterminismCells) {
        const CellRun a = run_cell_bytes(name, with_dataplane);
        const CellRun b = run_cell_bytes(name, with_dataplane);
        const bool same = a.problem_json == b.problem_json && a.manifest == b.manifest &&
                          a.trace == b.trace;
        deterministic = deterministic && same;
        std::printf("\ndeterministic rerun %-38s %s", name,
                    same ? "byte-identical" : "DIVERGED");
    }

    // Cross-engine differential spot check on a static cell.
    const scenario::ScenarioSpec diff_spec =
        scenario::build_scenario(scenario::find_scenario(kDifferentialCell));
    auto run_engine = [&](const std::string& engine, int shards) {
        scenario::RunnerOptions options;
        options.engine = engine;
        options.shards = shards;
        return scenario::run_scenario(diff_spec, options);
    };
    const auto serial = run_engine("serial", 1);
    const auto compiled = run_engine("compiled", 1);
    const auto incremental = run_engine("incremental", 1);
    const auto sharded1 = run_engine("sharded", 1);
    const auto sharded4 = run_engine("sharded", 4);
    const bool bitwise =
        allocations_bitwise_equal(serial.final_allocation, compiled.final_allocation) &&
        allocations_bitwise_equal(serial.final_allocation, incremental.final_allocation) &&
        allocations_bitwise_equal(incremental.final_allocation, sharded1.final_allocation);
    const double sharded_gap =
        serial.final_utility > 0.0
            ? std::fabs(serial.final_utility - sharded4.final_utility) / serial.final_utility
            : 0.0;
    std::printf("\n\ndifferential %s: serial/compiled/incremental/sharded-K1 %s, "
                "sharded-K4 gap %.4f%%\n",
                kDifferentialCell, bitwise ? "bitwise-identical" : "DIVERGED",
                100.0 * sharded_gap);

    // Async runtime on a churn cell: reconverges near best-known.
    scenario::RunnerOptions async_options;
    async_options.engine = "async";
    const auto async_report = scenario::run_scenario(
        scenario::build_scenario(scenario::find_scenario(kAsyncCell)), async_options);
    std::printf("async %s: utility/best %.4f\n", kAsyncCell, async_report.utility_vs_best);

    const bool overdrive_holds =
        !with_dataplane ||
        (overdrive_drop_rate >= 0.20 && headroom_drop_rate <= 0.02 &&
         headroom_achieved_vs_planned >= 0.98);
    if (with_dataplane)
        std::printf("overdrive contract: overdrive drops %.3f vs headroom %.3f "
                    "(achieved/planned %.3f) -> %s\n",
                    overdrive_drop_rate, headroom_drop_rate, headroom_achieved_vs_planned,
                    overdrive_holds ? "holds" : "VIOLATED");

    io::JsonObject root;
    root["bench"] = std::string("bench_scenarios");
    root["machine"] = bench::machine_json();
    root["cells"] = static_cast<double>(catalog.size());
    root["with_dataplane"] = with_dataplane;
    root["scenarios"] = std::move(rows);
    root["all_cells_within_5pct_of_best"] = all_tracked;
    root["deterministic"] = deterministic;
    {
        io::JsonObject diff;
        diff["cell"] = std::string(kDifferentialCell);
        diff["bitwise_serial_compiled_incremental_sharded1"] = bitwise;
        diff["sharded4_gap_fraction"] = sharded_gap;
        diff["async_cell"] = std::string(kAsyncCell);
        diff["async_utility_vs_best"] = async_report.utility_vs_best;
        root["differential"] = std::move(diff);
    }
    if (with_dataplane) {
        io::JsonObject contract;
        contract["overdrive_cell"] = std::string(kOverdriveCell);
        contract["headroom_twin"] = std::string(kHeadroomTwin);
        contract["overdrive_drop_rate"] = overdrive_drop_rate;
        contract["headroom_drop_rate"] = headroom_drop_rate;
        contract["headroom_achieved_vs_planned"] = headroom_achieved_vs_planned;
        contract["holds"] = overdrive_holds;
        root["overdrive_contract"] = std::move(contract);
    }

    std::ofstream out("BENCH_scenarios.json");
    out << io::JsonValue(std::move(root)).dump(true) << "\n";
    std::printf("wrote BENCH_scenarios.json\n");
    return all_tracked && deterministic && bitwise && sharded_gap <= 0.01 && overdrive_holds
               ? 0
               : 1;
}
