// Extension benchmark: multirate LRGP (LRGP-MR) vs the paper's
// single-rate LRGP.  Multirate allocation is the future work the paper
// defers in Section 5; this harness quantifies what it buys when classes
// of the same flow want different operating points.
#include <cstdio>
#include <iostream>
#include <memory>

#include "lrgp/optimizer.hpp"
#include "metrics/table_writer.hpp"
#include "multirate/multirate.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;

model::ProblemSpec premiumMassesWorkload() {
    model::ProblemBuilder b;
    const auto src = b.addNode("P", 1e9);
    const auto node = b.addNode("S", 1e5);
    const auto flow = b.addFlow("feed", src, 10.0, 1000.0);
    b.routeThroughNode(flow, node, 1.0);
    b.addClass("premium", flow, node, 5, 10.0, std::make_shared<utility::LogUtility>(100.0));
    b.addClass("masses", flow, node, 2000, 19.0, std::make_shared<utility::LogUtility>(1.0));
    return b.build();
}

}  // namespace

int main() {
    struct Case {
        const char* name;
        model::ProblemSpec spec;
    };
    Case cases[] = {
        {"base workload (Table 1)", workload::make_base_workload()},
        {"base workload, r^0.5", workload::make_base_workload(workload::UtilityShape::kPow05)},
        {"premium + thinned masses", premiumMassesWorkload()},
    };

    std::printf("Extension: multirate LRGP vs single-rate LRGP (250 iterations each)\n\n");
    metrics::TableWriter table({"workload", "single-rate utility", "multirate utility", "gain"});
    for (Case& c : cases) {
        core::LrgpOptimizer single(c.spec);
        single.run(250);
        multirate::MultirateOptimizer multi(c.spec);
        multi.run(250);
        char gain[32];
        std::snprintf(gain, sizeof gain, "%+.2f%%",
                      100.0 * (multi.currentUtility() - single.currentUtility()) /
                          single.currentUtility());
        table.addRow({std::string(c.name), single.currentUtility(), multi.currentUtility(),
                      std::string(gain)});
    }
    table.printTable(std::cout);

    // Show the per-class rates multirate chooses for flow 0 of the base
    // workload (rank 20 / 5 / 1 classes share one flow).
    const auto spec = workload::make_base_workload();
    multirate::MultirateOptimizer multi(spec);
    multi.run(250);
    std::printf("\nper-class delivery rates, flow f0_0 (base workload):\n");
    for (model::ClassId j : spec.classesOfFlow(model::FlowId{0})) {
        const auto& c = spec.consumerClass(j);
        std::printf("  %-8s rank-utility %-18s n=%4d  rate %7.1f msg/s\n", c.name.c_str(),
                    c.utility->describe().c_str(), multi.allocation().populations[j.index()],
                    multi.allocation().class_rates[j.index()]);
    }
    std::printf("flow source streams at %.1f msg/s (max admitted class rate)\n",
                multi.allocation().flow_rates[0]);
    std::printf("\nExpected shape: multirate never loses, and wins big when one flow\n"
                "serves classes with very different value-per-rate profiles.\n");
    return 0;
}
