// Figure 1 — "The effect of damping".
//
// Runs synchronous LRGP on the base workload (Table 1, utility
// rank * log(1+r)) for 250 iterations at three fixed node-price
// stepsizes, gamma in {1, 0.1, 0.01}, and prints the utility-vs-iteration
// series plus the oscillation amplitudes the paper discusses:
//   * gamma = 1    : utility oscillates with large amplitude;
//   * gamma = 0.1  : large fluctuations stop after <10 iterations;
//   * gamma = 0.01 : equilibrium takes ~100 iterations.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "lrgp/optimizer.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace lrgp;
    constexpr int kIterations = 250;
    const double gammas[] = {1.0, 0.1, 0.01};

    std::vector<std::unique_ptr<core::LrgpOptimizer>> runs;
    std::vector<std::string> names;
    for (double gamma : gammas) {
        core::LrgpOptions options;
        options.gamma = core::FixedGamma{gamma, gamma};
        runs.push_back(std::make_unique<core::LrgpOptimizer>(
            workload::make_base_workload(workload::UtilityShape::kLog), options));
        runs.back()->run(kIterations);
        char label[32];
        std::snprintf(label, sizeof label, "gamma=%g", gamma);
        names.emplace_back(label);
    }

    std::printf("Figure 1: effect of damping (base workload, rank*log(1+r))\n");
    std::printf("%-12s %18s %22s %22s\n", "gamma", "final utility", "rel. amplitude",
                "settle iteration");
    std::printf("%-12s %18s %22s %22s\n", "", "", "(last 50 iters)", "(<2%% window swing)");
    for (std::size_t k = 0; k < runs.size(); ++k) {
        const auto& trace = runs[k]->utilityTrace();
        const std::size_t settle = bench::settle_iteration(trace, 0.02);
        std::printf("%-12s %18.0f %21.4f%% %22zu\n", names[k].c_str(),
                    trace.trailingMean(50), 100.0 * trace.trailingRelativeAmplitude(50),
                    settle);
    }
    std::printf("\nExpected shape (paper): gamma=1 oscillates with large amplitude;\n"
                "gamma=0.1 settles in <10 iterations; gamma=0.01 needs ~100.\n");

    std::vector<const metrics::TimeSeries*> series;
    for (const auto& r : runs) series.push_back(&r->utilityTrace());
    bench::print_series("utility vs iteration (every 5th)", names, series, 5);
    return 0;
}
