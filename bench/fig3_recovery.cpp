// Figure 3 — "The effect of adaptive gamma on recovery from system
// changes".
//
// Runs LRGP on the base workload, removes flow 5 (which serves the
// rank-100 classes, the largest utility contributors) at iteration 150,
// and shows iterations 100-200 for adaptive and fixed gamma.  The paper's
// claim: with adaptive gamma the utility recovers much quicker and
// stabilizes to low fluctuations after the departure.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "lrgp/optimizer.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace lrgp;
    constexpr int kRemoveAt = 150;
    constexpr int kTotal = 250;

    struct Run {
        std::string name;
        core::GammaPolicy policy;
    };
    const Run configs[] = {
        {"adaptive", core::AdaptiveGamma{}},
        {"fixed=0.01", core::FixedGamma{0.01, 0.01}},
    };

    std::vector<std::unique_ptr<core::LrgpOptimizer>> runs;
    std::vector<std::string> names;
    for (const Run& cfg : configs) {
        core::LrgpOptions options;
        options.gamma = cfg.policy;
        auto opt = std::make_unique<core::LrgpOptimizer>(
            workload::make_base_workload(workload::UtilityShape::kLog), options);
        opt->run(kRemoveAt);
        opt->removeFlow(workload::find_flow(opt->problem(), "f0_5"));
        opt->run(kTotal - kRemoveAt);
        runs.push_back(std::move(opt));
        names.push_back(cfg.name);
    }

    std::printf("Figure 3: recovery after flow 5 leaves at iteration %d\n", kRemoveAt);
    std::printf("%-12s %16s %16s %22s\n", "policy", "utility@149", "utility@250",
                "settle after removal");
    for (std::size_t k = 0; k < runs.size(); ++k) {
        const auto& trace = runs[k]->utilityTrace();
        // First post-removal iteration where a trailing 10-window swings <0.5%.
        std::size_t settle = 0;
        for (std::size_t end = kRemoveAt + 10; end <= trace.size(); ++end) {
            double lo = trace[end - 10], hi = lo, sum = 0.0;
            for (std::size_t i = end - 10; i < end; ++i) {
                lo = std::min(lo, trace[i]);
                hi = std::max(hi, trace[i]);
                sum += trace[i];
            }
            if ((hi - lo) / (sum / 10.0) < 0.005) {
                settle = end;
                break;
            }
        }
        std::printf("%-12s %16.0f %16.0f %22zu\n", names[k].c_str(), trace[kRemoveAt - 2],
                    trace.back(), settle);
    }
    std::printf("\nExpected shape (paper): both policies drop when the flow leaves;\n"
                "adaptive gamma recovers and stabilizes sooner than fixed.\n");

    // The paper's figure shows iterations 100-200; print that window.
    std::printf("\n# utility, iterations 100-200 (removal marked at %d)\n", kRemoveAt);
    std::printf("%10s %16s %16s\n", "iteration", names[0].c_str(), names[1].c_str());
    for (std::size_t i = 99; i < 200; ++i) {
        std::printf("%10zu %16.1f %16.1f%s\n", i + 1, runs[0]->utilityTrace()[i],
                    runs[1]->utilityTrace()[i], (i + 1 == kRemoveAt) ? "   <-- flow 5 removed" : "");
    }
    return 0;
}
