// Sharded control-plane benchmark: ShardedLrgpEngine vs the monolithic
// incremental engine on federated workloads of 10^4 .. 10^6 consumer
// classes (ROADMAP item 1: near-real-time control at 10^5+ classes).
//
// Two measurement families, written to BENCH_shards.json:
//
//   * scaling rows: wall-clock of runUntilConverged at K in {1, 2, 4, 8}
//     shards on federated workloads whose slow-converging (capacity
//     starved) groups concentrate in a few shards.  K=1 must be
//     bitwise-identical to the monolithic incremental engine (the
//     determinism contract); larger K wins wall-clock because converged
//     shards pause — the per-iteration O(total) publication cost shrinks
//     to O(still-iterating shards) — not because of extra cores, so the
//     speedup holds on a single-core box.
//   * gap rows: a coupled federated workload (shared hub node) forces
//     boundary resources; the achieved utility after boundary-price
//     reconciliation is compared with the monolithic solver's at the
//     same iteration budget (acceptance: gap <= 1%).
//
// Iteration budgets scale down via LRGP_BENCH_SHARDS_ITERS; the 10^6
// class workload only runs with LRGP_BENCH_SHARDS_FULL=1.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "io/json.hpp"
#include "lrgp/parallel_engine.hpp"
#include "shard/sharded_engine.hpp"
#include "workload/federated.hpp"

namespace {

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

struct ShardRun {
    int shards = 0;
    double wall_ms = 0.0;
    int iterations = 0;          ///< deepest member-engine iteration count
    bool converged = false;
    int converged_at = 0;
    double utility = 0.0;
    std::size_t boundary_nodes = 0;
    std::size_t boundary_links = 0;
    double boundary_node_fraction = 0.0;
    std::uint64_t reconcile_passes = 0;
    std::uint64_t budget_updates = 0;
    std::uint64_t shard_wakeups = 0;
    double budget_moved = 0.0;
    double build_ms = 0.0;
};

ShardRun run_sharded(const lrgp::model::ProblemSpec& spec, int shards, int max_iters) {
    using namespace lrgp;
    shard::ShardedConfig config;
    config.shards = shards;
    config.threads = 1;  // isolate the algorithmic win from thread parallelism
    const std::uint64_t b0 = now_ns();
    shard::ShardedLrgpEngine engine(spec, {}, config);
    const std::uint64_t b1 = now_ns();
    const auto converged_at = engine.runUntilConverged(max_iters);
    const std::uint64_t t1 = now_ns();

    ShardRun run;
    run.shards = shards;
    run.build_ms = static_cast<double>(b1 - b0) * 1e-6;
    run.wall_ms = static_cast<double>(t1 - b1) * 1e-6;
    run.iterations = engine.iterationsRun();
    run.converged = converged_at.has_value();
    run.converged_at = converged_at.value_or(0);
    run.utility = engine.currentUtility();
    run.boundary_nodes = engine.boundaryNodeCount();
    run.boundary_links = engine.boundaryLinkCount();
    run.boundary_node_fraction = engine.boundaryNodeFraction();
    run.reconcile_passes = engine.reconcileStats().passes;
    run.budget_updates = engine.reconcileStats().budget_updates;
    run.shard_wakeups = engine.reconcileStats().shard_wakeups;
    run.budget_moved = engine.reconcileStats().budget_moved;
    return run;
}

/// Steady-state control loop: the engine is already converged; apply
/// `rounds` capacity perturbations to the given (tight-group) nodes and
/// re-converge after each.  Only the owning shard wakes up in a sharded
/// engine, so this isolates the per-iteration publication asymmetry the
/// gating is designed around.
struct SteadyOutcome {
    double wall_ms = 0.0;
    int iterations = 0;        ///< engine iterations advanced over all rounds
    int rounds_converged = 0;
    double utility = 0.0;      ///< after the final round
};

SteadyOutcome run_steady(lrgp::core::Engine& engine,
                         const std::vector<std::pair<lrgp::model::NodeId, double>>& targets,
                         int rounds, int max_iters) {
    engine.runUntilConverged(max_iters);  // settle outside the timed region
    const int iters0 = engine.iterationsRun();
    SteadyOutcome out;
    const std::uint64_t t0 = now_ns();
    for (int r = 0; r < rounds; ++r) {
        const auto& [node, capacity] = targets[static_cast<std::size_t>(r) % targets.size()];
        // Alternate squeeze / restore so the load pattern is periodic
        // and every round genuinely moves prices.
        engine.setNodeCapacity(node, r % 2 == 0 ? capacity * 0.55 : capacity);
        if (engine.runUntilConverged(max_iters)) ++out.rounds_converged;
    }
    out.wall_ms = static_cast<double>(now_ns() - t0) * 1e-6;
    out.iterations = engine.iterationsRun() - iters0;
    out.utility = engine.currentUtility();
    return out;
}

lrgp::io::JsonObject run_to_json(const ShardRun& run) {
    lrgp::io::JsonObject row;
    row["shards"] = run.shards;
    row["build_ms"] = run.build_ms;
    row["wall_ms"] = run.wall_ms;
    row["iterations"] = run.iterations;
    row["converged"] = run.converged;
    row["converged_at"] = run.converged_at;
    row["utility"] = run.utility;
    row["boundary_nodes"] = static_cast<int>(run.boundary_nodes);
    row["boundary_links"] = static_cast<int>(run.boundary_links);
    row["boundary_node_fraction"] = run.boundary_node_fraction;
    row["reconcile_passes"] = static_cast<double>(run.reconcile_passes);
    row["budget_updates"] = static_cast<double>(run.budget_updates);
    row["shard_wakeups"] = static_cast<double>(run.shard_wakeups);
    row["budget_moved"] = run.budget_moved;
    return row;
}

}  // namespace

int main() {
    using namespace lrgp;

    const int max_iters = static_cast<int>(bench::env_u64("LRGP_BENCH_SHARDS_ITERS", 600));
    const bool full = bench::env_u64("LRGP_BENCH_SHARDS_FULL", 0) != 0;
    const int hw = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    const std::vector<int> shard_counts = {1, 2, 4, 8};

    struct Scale {
        const char* name;
        workload::FederatedWorkloadOptions options;
    };
    std::vector<Scale> scales;
    {
        workload::FederatedWorkloadOptions w10k;
        w10k.groups = 20;
        w10k.flows_per_group = 5;
        w10k.cnodes_per_group = 100;
        w10k.tight_groups = 2;
        scales.push_back({"10k", w10k});

        workload::FederatedWorkloadOptions w100k;
        w100k.groups = 40;
        w100k.flows_per_group = 10;
        w100k.cnodes_per_group = 250;
        w100k.tight_groups = 4;
        scales.push_back({"100k", w100k});

        if (full) {
            workload::FederatedWorkloadOptions w1m;
            w1m.groups = 80;
            w1m.flows_per_group = 25;
            w1m.cnodes_per_group = 500;
            w1m.tight_groups = 8;
            scales.push_back({"1m", w1m});
        }
    }

    io::JsonObject root;
    root["bench"] = "bench_shards";
    root["machine"] = bench::machine_json();
    root["hardware_threads"] = hw;
    root["single_core_environment"] = (hw == 1);
    root["max_iterations"] = max_iters;
    root["full_scale"] = full;

    bool k1_bitwise = true;
    double speedup_4 = 0.0, speedup_8 = 0.0;
    bool monotone_1_2_4 = true;
    double max_gap = 0.0;

    io::JsonArray workloads;
    for (const Scale& scale : scales) {
        const model::ProblemSpec spec = workload::make_federated_workload(scale.options);
        std::printf("== workload %s: %zu classes, %zu flows, %zu nodes (tight groups: %d) ==\n",
                    scale.name, spec.classCount(), spec.flowCount(), spec.nodeCount(),
                    scale.options.tight_groups);

        // Monolithic incremental reference (the K=1 bitwise oracle).
        const std::uint64_t m0 = now_ns();
        core::ParallelLrgpEngine mono(spec, {}, {.threads = 1, .incremental = true});
        const auto mono_conv = mono.runUntilConverged(max_iters);
        const double mono_ms = static_cast<double>(now_ns() - m0) * 1e-6;
        const double mono_utility = mono.currentUtility();
        std::printf("  monolithic incremental: %.0f ms, %d iterations, converged %s, "
                    "utility %.1f\n",
                    mono_ms, mono.iterationsRun(), mono_conv ? "yes" : "no", mono_utility);

        io::JsonArray rows;
        std::vector<ShardRun> runs;
        for (int k : shard_counts) {
            ShardRun run = run_sharded(spec, k, max_iters);
            std::printf("  K=%d: %8.0f ms  %5d iters  converged %-3s  utility %.1f  "
                        "boundary %zu+%zu  reconciles %llu  wakeups %llu\n",
                        k, run.wall_ms, run.iterations, run.converged ? "yes" : "no",
                        run.utility, run.boundary_nodes, run.boundary_links,
                        static_cast<unsigned long long>(run.reconcile_passes),
                        static_cast<unsigned long long>(run.shard_wakeups));
            io::JsonObject row = run_to_json(run);
            const double gap = mono_utility != 0.0
                                   ? (mono_utility - run.utility) / std::fabs(mono_utility)
                                   : 0.0;
            row["gap_vs_monolithic"] = gap;
            if (k == 1) {
                const bool bitwise = run.utility == mono_utility &&
                                     run.iterations == mono.iterationsRun();
                row["bitwise_identical_to_monolithic"] = bitwise;
                if (!bitwise) {
                    k1_bitwise = false;
                    std::fprintf(stderr,
                                 "FATAL: K=1 diverged from monolithic on %s "
                                 "(%.17g vs %.17g, %d vs %d iters)\n",
                                 scale.name, run.utility, mono_utility, run.iterations,
                                 mono.iterationsRun());
                }
            } else {
                max_gap = std::max(max_gap, std::fabs(gap));
            }
            rows.push_back(std::move(row));
            runs.push_back(run);
        }

        const double w1 = runs[0].wall_ms;
        io::JsonObject entry;
        entry["name"] = scale.name;
        entry["classes"] = static_cast<int>(spec.classCount());
        entry["flows"] = static_cast<int>(spec.flowCount());
        entry["nodes"] = static_cast<int>(spec.nodeCount());
        entry["tight_groups"] = scale.options.tight_groups;
        entry["monolithic_wall_ms"] = mono_ms;
        entry["monolithic_iterations"] = mono.iterationsRun();
        entry["monolithic_utility"] = mono_utility;
        entry["rows"] = std::move(rows);
        entry["speedup_2"] = w1 / runs[1].wall_ms;
        entry["speedup_4"] = w1 / runs[2].wall_ms;
        entry["speedup_8"] = w1 / runs[3].wall_ms;
        std::printf("  cold-start speedups vs K=1: x%.2f (K=2)  x%.2f (K=4)  x%.2f (K=8)\n",
                    w1 / runs[1].wall_ms, w1 / runs[2].wall_ms, w1 / runs[3].wall_ms);

        // ---- steady-state control loop -------------------------------
        // Perturb tight-group-0 c-node capacities; only that group's
        // shard re-iterates, every other shard stays paused.
        std::vector<std::pair<model::NodeId, double>> targets;
        for (std::size_t n = 0; n < spec.nodeCount() && targets.size() < 8; ++n) {
            const model::NodeSpec& node = spec.node(model::NodeId{static_cast<std::uint32_t>(n)});
            if (node.name.rfind("g0_S", 0) == 0) targets.emplace_back(node.id, node.capacity);
        }
        const int rounds = static_cast<int>(bench::env_u64("LRGP_BENCH_SHARDS_ROUNDS", 20));

        core::ParallelLrgpEngine steady_mono(spec, {}, {.threads = 1, .incremental = true});
        const SteadyOutcome mono_st = run_steady(steady_mono, targets, rounds, max_iters);
        std::printf("  steady monolithic: %8.0f ms  %5d iters over %d perturbations\n",
                    mono_st.wall_ms, mono_st.iterations, rounds);

        io::JsonArray steady_rows;
        std::vector<SteadyOutcome> steadies;
        for (int k : shard_counts) {
            shard::ShardedConfig config;
            config.shards = k;
            config.threads = 1;
            shard::ShardedLrgpEngine engine(spec, {}, config);
            const SteadyOutcome st = run_steady(engine, targets, rounds, max_iters);
            std::printf("  steady K=%d: %8.0f ms  %5d iters  %d/%d rounds converged\n",
                        k, st.wall_ms, st.iterations, st.rounds_converged, rounds);
            io::JsonObject row;
            row["shards"] = k;
            row["wall_ms"] = st.wall_ms;
            row["iterations"] = st.iterations;
            row["rounds_converged"] = st.rounds_converged;
            row["utility"] = st.utility;
            if (k == 1) {
                const bool bitwise = st.utility == mono_st.utility;
                row["bitwise_identical_to_monolithic"] = bitwise;
                if (!bitwise) {
                    k1_bitwise = false;
                    std::fprintf(stderr,
                                 "FATAL: steady K=1 diverged from monolithic on %s "
                                 "(%.17g vs %.17g)\n",
                                 scale.name, st.utility, mono_st.utility);
                }
            } else if (mono_st.utility != 0.0) {
                max_gap = std::max(max_gap, std::fabs((mono_st.utility - st.utility) /
                                                      mono_st.utility));
            }
            steady_rows.push_back(std::move(row));
            steadies.push_back(st);
        }
        const double s1 = steadies[0].wall_ms;
        io::JsonObject steady;
        steady["rounds"] = rounds;
        steady["monolithic_wall_ms"] = mono_st.wall_ms;
        steady["monolithic_iterations"] = mono_st.iterations;
        steady["rows"] = std::move(steady_rows);
        steady["speedup_2"] = s1 / steadies[1].wall_ms;
        steady["speedup_4"] = s1 / steadies[2].wall_ms;
        steady["speedup_8"] = s1 / steadies[3].wall_ms;
        std::printf("  steady speedups vs K=1: x%.2f (K=2)  x%.2f (K=4)  x%.2f (K=8)\n\n",
                    s1 / steadies[1].wall_ms, s1 / steadies[2].wall_ms,
                    s1 / steadies[3].wall_ms);
        entry["steady"] = std::move(steady);
        workloads.push_back(std::move(entry));

        // The acceptance floor tracks the steady-state control loop on
        // the >= 10^5-class workload: that is the near-real-time path.
        if (std::string(scale.name) == "100k") {
            speedup_4 = s1 / steadies[2].wall_ms;
            speedup_8 = s1 / steadies[3].wall_ms;
            // Monotone non-increasing wall clock across 1 -> 2 -> 4
            // shards, with 10% measurement slack.
            monotone_1_2_4 = steadies[1].wall_ms <= steadies[0].wall_ms * 1.10 &&
                             steadies[2].wall_ms <= steadies[1].wall_ms * 1.10;
        }
    }
    root["workloads"] = std::move(workloads);

    // ---- boundary gap rows: coupled groups force reconciliation --------
    {
        workload::FederatedWorkloadOptions coupled;
        coupled.groups = 8;
        coupled.flows_per_group = 8;
        coupled.cnodes_per_group = 25;
        coupled.tight_groups = 2;
        coupled.coupling_cost = 2.0;
        coupled.coupling_capacity_factor = 0.5;  // hub is genuinely contended
        const model::ProblemSpec spec = workload::make_federated_workload(coupled);

        core::ParallelLrgpEngine mono(spec, {}, {.threads = 1, .incremental = true});
        mono.runUntilConverged(max_iters);
        const double mono_utility = mono.currentUtility();
        std::printf("== coupled workload: %zu classes, shared hub ==\n", spec.classCount());
        std::printf("  monolithic utility %.1f\n", mono_utility);

        io::JsonArray rows;
        for (int k : shard_counts) {
            ShardRun run = run_sharded(spec, k, max_iters);
            const double gap = (mono_utility - run.utility) / std::fabs(mono_utility);
            std::printf("  K=%d: utility %.1f  gap %+.4f%%  boundary %zu+%zu  "
                        "budget moved %.1f over %llu updates\n",
                        k, run.utility, gap * 100.0, run.boundary_nodes, run.boundary_links,
                        run.budget_moved, static_cast<unsigned long long>(run.budget_updates));
            io::JsonObject row = run_to_json(run);
            row["gap_vs_monolithic"] = gap;
            rows.push_back(std::move(row));
            if (k > 1) max_gap = std::max(max_gap, std::fabs(gap));
        }
        // Squeeze the shared hub: its per-shard budgets have to be
        // re-split, so this exercises the boundary-price reconciliation
        // path end to end (budget updates + shard wakeups).
        model::NodeId hub_id;
        double hub_capacity = 0.0;
        for (std::size_t n = 0; n < spec.nodeCount(); ++n) {
            const model::NodeSpec& node = spec.node(model::NodeId{static_cast<std::uint32_t>(n)});
            if (node.name == "hub") {
                hub_id = node.id;
                hub_capacity = node.capacity;
            }
        }
        core::ParallelLrgpEngine mono_squeeze(spec, {}, {.threads = 1, .incremental = true});
        mono_squeeze.runUntilConverged(max_iters);
        mono_squeeze.setNodeCapacity(hub_id, hub_capacity * 0.4);
        mono_squeeze.runUntilConverged(max_iters);
        const double mono_squeezed = mono_squeeze.currentUtility();

        io::JsonArray squeeze_rows;
        for (int k : shard_counts) {
            shard::ShardedConfig config;
            config.shards = k;
            config.threads = 1;
            shard::ShardedLrgpEngine engine(spec, {}, config);
            engine.runUntilConverged(max_iters);
            engine.setNodeCapacity(hub_id, hub_capacity * 0.4);
            const bool reconverged = engine.runUntilConverged(max_iters).has_value();
            const double gap = (mono_squeezed - engine.currentUtility()) / std::fabs(mono_squeezed);
            std::printf("  hub squeeze K=%d: gap %+.4f%%  reconciles %llu  budget updates %llu  "
                        "wakeups %llu  moved %.1f\n",
                        k, gap * 100.0,
                        static_cast<unsigned long long>(engine.reconcileStats().passes),
                        static_cast<unsigned long long>(engine.reconcileStats().budget_updates),
                        static_cast<unsigned long long>(engine.reconcileStats().shard_wakeups),
                        engine.reconcileStats().budget_moved);
            io::JsonObject row;
            row["shards"] = k;
            row["gap_vs_monolithic"] = gap;
            row["reconverged"] = reconverged;
            row["reconcile_passes"] = static_cast<double>(engine.reconcileStats().passes);
            row["budget_updates"] = static_cast<double>(engine.reconcileStats().budget_updates);
            row["shard_wakeups"] = static_cast<double>(engine.reconcileStats().shard_wakeups);
            row["budget_moved"] = engine.reconcileStats().budget_moved;
            squeeze_rows.push_back(std::move(row));
            if (k > 1) max_gap = std::max(max_gap, std::fabs(gap));
        }

        io::JsonObject entry;
        entry["classes"] = static_cast<int>(spec.classCount());
        entry["monolithic_utility"] = mono_utility;
        entry["rows"] = std::move(rows);
        entry["hub_squeeze"] = std::move(squeeze_rows);
        root["coupled"] = std::move(entry);
    }

    root["k1_bitwise_identical"] = k1_bitwise;
    root["speedup_4"] = speedup_4;
    root["speedup_8"] = speedup_8;
    root["monotone_1_2_4"] = monotone_1_2_4;
    root["max_gap"] = max_gap;

    std::printf("\nsummary: K=8 speedup x%.2f (floor 3.0), max gap %.4f%% (limit 1%%), "
                "K=1 bitwise %s\n",
                speedup_8, max_gap * 100.0, k1_bitwise ? "yes" : "NO");

    std::ofstream out("BENCH_shards.json");
    out << io::JsonValue(std::move(root)).dump(true) << "\n";
    std::printf("wrote BENCH_shards.json\n");
    return k1_bitwise ? 0 : 1;
}
