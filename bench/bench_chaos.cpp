// Chaos benchmark: recovery metrics for every shipped fault scenario.
//
// Extends the fig3_recovery story from "a flow leaves" to a full fault
// vocabulary: each standard chaos scenario (loss burst, delay spike,
// reorder storm, partition, node/source crash, price corruption) is run
// against the hardened asynchronous protocol AND the baseline protocol
// (price averaging only), and recovery is quantified as
// time-to-reconverge plus the utility-dip integral.  A flow-departure
// run (the original Figure 3 disturbance) rides along, measured against
// its *final* steady state since the change is permanent.
//
// Writes BENCH_recovery.json.  LRGP_CHAOS_SECONDS overrides the horizon.
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "dist/dist_lrgp.hpp"
#include "faults/scenarios.hpp"
#include "io/json.hpp"
#include "metrics/recovery.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;

constexpr sim::SimTime kFaultStart = 10.0;
constexpr sim::SimTime kFaultDuration = 2.0;
constexpr sim::SimTime kSamplePeriod = 0.05;

struct RunResult {
    metrics::RecoveryReport report;
    faults::FaultStats stats;
    std::size_t suspicion_events = 0;
    std::size_t reannouncements = 0;
    std::size_t messages_lost = 0;
    std::size_t messages_sent = 0;
};

dist::DistOptions chaos_options(bool hardened, const faults::FaultPlan& plan) {
    dist::DistOptions options;
    options.synchronous = false;
    options.sample_period = kSamplePeriod;
    options.fault_plan = plan;
    if (hardened) options.robustness = dist::RobustnessOptions::standard();
    return options;
}

RunResult run_scenario(const model::ProblemSpec& spec, const faults::FaultPlan& plan,
                       bool hardened, sim::SimTime horizon,
                       const metrics::RecoveryOptions& recovery) {
    dist::DistLrgp d(spec, chaos_options(hardened, plan));
    d.runFor(horizon);
    // Samples land at k*kSamplePeriod for k = 1, 2, ...; the last strictly
    // pre-fault-capable index keeps the baseline window clean.
    const std::size_t fault_index =
        static_cast<std::size_t>(kFaultStart / kSamplePeriod) - 1;
    RunResult r;
    r.report = metrics::analyze_recovery(d.utilityTrace(), fault_index, kSamplePeriod, recovery);
    r.stats = d.faultStats();
    r.suspicion_events = d.suspicionEvents();
    r.reannouncements = d.reannouncementsSent();
    r.messages_lost = d.messagesLost();
    r.messages_sent = d.messagesSent();
    return r;
}

io::JsonObject report_json(const RunResult& r) {
    io::JsonObject o;
    o["baseline_utility"] = r.report.baseline_utility;
    o["target_utility"] = r.report.target_utility;
    o["min_utility"] = r.report.min_utility;
    o["max_dip"] = r.report.max_dip;
    o["dip_integral_utility_seconds"] = r.report.dip_integral;
    o["reconverged"] = r.report.reconverged;
    // -1 marks "never" (JSON has no infinity).
    o["time_to_reconverge_seconds"] = r.report.reconverged ? r.report.time_to_reconverge : -1.0;
    o["messages_sent"] = static_cast<double>(r.messages_sent);
    o["messages_lost"] = static_cast<double>(r.messages_lost);
    o["injected_drops"] = static_cast<double>(r.stats.messages_dropped);
    o["injected_delays"] = static_cast<double>(r.stats.messages_delayed);
    o["injected_reorders"] = static_cast<double>(r.stats.messages_reordered);
    o["injected_price_corruptions"] = static_cast<double>(r.stats.prices_corrupted);
    o["crashes"] = static_cast<double>(r.stats.crashes);
    o["restarts"] = static_cast<double>(r.stats.restarts);
    o["suspicion_events"] = static_cast<double>(r.suspicion_events);
    o["reannouncements"] = static_cast<double>(r.reannouncements);
    return o;
}

void print_row(const std::string& name, const RunResult& hardened, const RunResult& plain) {
    auto ttr = [](const RunResult& r) {
        return r.report.reconverged ? r.report.time_to_reconverge : -1.0;
    };
    std::printf("%-18s %10.2f %14.1f %12.2f %14.1f\n", name.c_str(), ttr(hardened),
                hardened.report.dip_integral, ttr(plain), plain.report.dip_integral);
}

}  // namespace

int main() {
    using namespace lrgp;

    const auto horizon =
        static_cast<sim::SimTime>(bench::env_u64("LRGP_CHAOS_SECONDS", 24));
    const model::ProblemSpec spec = workload::make_base_workload();
    const auto scenarios = faults::standard_scenarios(
        spec.flowCount(), spec.nodeCount(), spec.linkCount(), kFaultStart, kFaultDuration);

    std::printf("Chaos recovery benchmark: %zu flows, %zu nodes, %zu classes\n",
                spec.flowCount(), spec.nodeCount(), spec.classCount());
    std::printf("faults open at t=%.1fs for %.1fs, horizon %.0fs, sampled every %.2fs\n\n",
                kFaultStart, kFaultDuration, horizon, kSamplePeriod);
    std::printf("%-18s %10s %14s %12s %14s\n", "scenario", "ttr[s]", "dip[U*s]",
                "ttr-plain[s]", "dip-plain[U*s]");
    std::printf("%-18s %10s %14s %12s %14s\n", "", "(hardened)", "(hardened)", "", "");

    io::JsonArray scenario_rows;
    bool all_reconverged = true;
    for (const faults::ChaosScenario& scenario : scenarios) {
        metrics::RecoveryOptions recovery;  // pre-fault baseline, 1% band
        const RunResult hardened =
            run_scenario(spec, scenario.plan, /*hardened=*/true, horizon, recovery);
        const RunResult plain =
            run_scenario(spec, scenario.plan, /*hardened=*/false, horizon, recovery);
        print_row(scenario.name, hardened, plain);
        all_reconverged = all_reconverged && hardened.report.reconverged;

        io::JsonObject row;
        row["name"] = scenario.name;
        row["description"] = scenario.description;
        row["fault_start"] = scenario.fault_start;
        row["fault_end"] = scenario.fault_end;
        row["hardened"] = report_json(hardened);
        row["baseline_protocol"] = report_json(plain);
        scenario_rows.emplace_back(std::move(row));
    }

    // Flow departure (the Figure 3 disturbance): permanent, so recovery
    // is measured against the final steady state, hardened protocol on.
    metrics::RecoveryOptions departure_recovery;
    departure_recovery.target = metrics::RecoveryTarget::kFinalSteadyState;
    RunResult departure;
    {
        dist::DistLrgp d(spec, chaos_options(/*hardened=*/true, {}));
        d.removeFlowAt(workload::find_flow(spec, "f0_5"), kFaultStart);
        d.runFor(horizon);
        const std::size_t fault_index =
            static_cast<std::size_t>(kFaultStart / kSamplePeriod) - 1;
        departure.report = metrics::analyze_recovery(d.utilityTrace(), fault_index,
                                                     kSamplePeriod, departure_recovery);
        departure.messages_lost = d.messagesLost();
        departure.messages_sent = d.messagesSent();
        std::printf("%-18s %10.2f %14.1f %12s %14s   (vs final steady state)\n",
                    "flow_departure",
                    departure.report.reconverged ? departure.report.time_to_reconverge : -1.0,
                    departure.report.dip_integral, "-", "-");
    }

    std::printf("\n%s\n", all_reconverged
                              ? "All hardened scenarios reconverged to within 1% of the "
                                "pre-fault steady state."
                              : "WARNING: some hardened scenario failed to reconverge!");

    io::JsonObject root;
    root["bench"] = std::string("bench_chaos");
    root["machine"] = bench::machine_json();
    {
        io::JsonObject workload_info;
        workload_info["flows"] = static_cast<double>(spec.flowCount());
        workload_info["nodes"] = static_cast<double>(spec.nodeCount());
        workload_info["classes"] = static_cast<double>(spec.classCount());
        root["workload"] = std::move(workload_info);
    }
    root["sample_period"] = kSamplePeriod;
    root["horizon_seconds"] = horizon;
    root["fault_start"] = kFaultStart;
    root["fault_duration"] = kFaultDuration;
    root["scenarios"] = std::move(scenario_rows);
    root["flow_departure"] = report_json(departure);
    root["all_hardened_scenarios_reconverged"] = all_reconverged;

    std::ofstream out("BENCH_recovery.json");
    out << io::JsonValue(std::move(root)).dump(true) << "\n";
    std::printf("wrote BENCH_recovery.json\n");
    return all_reconverged ? 0 : 1;
}
