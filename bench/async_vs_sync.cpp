// Async vs. sync distributed LRGP (Section 3.5's discussion).
//
// The synchronous protocol takes one round trip per iteration: with
// 5-15 ms message latency, ~27 iterations to converge costs ~0.5 s of
// wall-clock and a predictable message count.  The asynchronous variant
// lets every agent act on a local timer with price averaging; it trades
// extra messages for robustness to stragglers and loss.  This harness
// measures time-to-95%-of-final-utility and message cost for both modes,
// plus async under message loss.
#include <cstdio>
#include <iostream>

#include "dist/dist_lrgp.hpp"
#include "lrgp/optimizer.hpp"
#include "metrics/table_writer.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace lrgp;
    const auto spec = workload::make_base_workload();

    // Reference utility from the centralized optimizer.
    core::LrgpOptimizer central(spec);
    central.run(200);
    const double target = 0.95 * central.currentUtility();

    std::printf("Async vs sync distributed LRGP (base workload, 5-15 ms latency)\n");
    std::printf("target: 95%% of centralized utility = %.0f\n\n", target);

    metrics::TableWriter table(
        {"mode", "sim time to target (s)", "messages to target", "final utility", "lost"});

    {
        dist::DistLrgp sync(spec, dist::DistOptions{});
        double reached = -1.0;
        std::size_t messages = 0;
        while (sync.completedRounds() < 100) {
            sync.runRounds(1);
            if (reached < 0.0 && sync.currentUtility() >= target) {
                reached = sync.now();
                messages = sync.messagesSent();
            }
        }
        table.addRow({std::string("synchronous"), reached, static_cast<long long>(messages),
                      sync.currentUtility(), static_cast<long long>(0)});
    }

    for (double loss : {0.0, 0.10, 0.25}) {
        dist::DistOptions options;
        options.synchronous = false;
        options.message_loss_probability = loss;
        options.price_window = loss > 0.0 ? 5 : 3;
        dist::DistLrgp async_run(spec, options);
        double reached = -1.0;
        std::size_t messages = 0;
        // Require the target to hold for 10 consecutive ticks (0.5 s of
        // sim time) so an early bootstrap transient does not count.
        int above_streak = 0;
        double streak_start = 0.0;
        std::size_t streak_messages = 0;
        for (int tick = 0; tick < 600 && reached < 0.0; ++tick) {
            async_run.runFor(0.05);
            if (async_run.currentUtility() >= target) {
                if (above_streak == 0) {
                    streak_start = async_run.now();
                    streak_messages = async_run.messagesSent();
                }
                if (++above_streak >= 10) {
                    reached = streak_start;
                    messages = streak_messages;
                }
            } else {
                above_streak = 0;
            }
        }
        async_run.runFor(5.0);
        char name[48];
        std::snprintf(name, sizeof name, "asynchronous, %.0f%% loss", 100.0 * loss);
        table.addRow({std::string(name), reached, static_cast<long long>(messages),
                      async_run.currentUtility(),
                      static_cast<long long>(async_run.messagesLost())});
    }

    table.printTable(std::cout);
    std::printf(
        "\nExpected shape: sync needs ~2 messages per (flow,node) pair per round\n"
        "and converges in ~30 round trips; async converges in comparable sim\n"
        "time, costs more messages, and degrades gracefully under loss.\n");
    return 0;
}
