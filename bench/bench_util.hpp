// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "lrgp/optimizer.hpp"
#include "metrics/time_series.hpp"

namespace lrgp::bench {

/// Prints aligned multi-series data (one row per iteration) so figures
/// can be eyeballed in a terminal or re-plotted from the CSV block.
inline void print_series(const std::string& title, const std::vector<std::string>& names,
                         const std::vector<const metrics::TimeSeries*>& series,
                         std::size_t stride = 1) {
    std::printf("\n# %s\n", title.c_str());
    std::printf("%10s", "iteration");
    for (const auto& n : names) std::printf(" %16s", n.c_str());
    std::printf("\n");
    std::size_t len = 0;
    for (const auto* s : series) len = std::max(len, s->size());
    for (std::size_t i = 0; i < len; i += stride) {
        std::printf("%10zu", i + 1);
        for (const auto* s : series) {
            if (i < s->size()) std::printf(" %16.1f", (*s)[i]);
            else std::printf(" %16s", "-");
        }
        std::printf("\n");
    }
}

/// Environment-variable override for step budgets etc., so the default
/// bench run stays fast while full paper-scale runs remain possible.
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    if (const char* v = std::getenv(name)) {
        const unsigned long long parsed = std::strtoull(v, nullptr, 10);
        if (parsed > 0) return parsed;
    }
    return fallback;
}

/// First iteration where a trailing 10-sample window of the trace swings
/// less than `threshold` relative to its mean; 0 if never.
inline std::size_t settle_iteration(const metrics::TimeSeries& trace, double threshold) {
    constexpr std::size_t kWindow = 10;
    for (std::size_t end = kWindow; end <= trace.size(); ++end) {
        double lo = (trace)[end - kWindow], hi = lo, sum = 0.0;
        for (std::size_t k = end - kWindow; k < end; ++k) {
            lo = std::min(lo, trace[k]);
            hi = std::max(hi, trace[k]);
            sum += trace[k];
        }
        const double mean = sum / kWindow;
        if (mean > 0.0 && (hi - lo) / mean < threshold) return end;
    }
    return 0;
}

}  // namespace lrgp::bench
