// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "io/json.hpp"
#include "lrgp/optimizer.hpp"
#include "metrics/time_series.hpp"

namespace lrgp::bench {

/// SIMD ISA this binary was compiled to assume everywhere (predefined
/// macros), as opposed to what the host CPU offers.  Deliberately does
/// not depend on lrgp_simd: the stamp must stay meaningful in benches
/// that never link the vector engine.
inline const char* compiled_simd_isa() {
#if defined(__AVX512F__)
    return "avx512";
#elif defined(__AVX2__)
    return "avx2";
#elif defined(__SSE2__) || defined(__x86_64__)
    return "sse2";
#else
    return "scalar";
#endif
}

/// Best SIMD ISA the host CPU reports at runtime.  The perf guard keys
/// its vector-kernel floors on this value, so keep the vocabulary in
/// sync with scripts/check_perf_regression.py (avx512 | avx2 | sse2 |
/// scalar).
inline const char* detected_simd_isa() {
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx512f")) return "avx512";
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) return "avx2";
    if (__builtin_cpu_supports("sse2")) return "sse2";
#endif
    return "scalar";
}

/// Machine block stamped into every BENCH_*.json: absolute wall-clock
/// columns are only comparable on like hardware, so each result records
/// the host, the compiler, and the SIMD ISA (compiled and detected)
/// that produced it.  LRGP_PERF_ALLOW_UNKNOWN_HW relaxation and the
/// ISA-keyed vector floors in check_perf_regression.py read this block.
inline io::JsonObject machine_json() {
    io::JsonObject machine;
    char host[256] = {};
#if defined(__unix__) || defined(__APPLE__)
    if (gethostname(host, sizeof host - 1) != 0) host[0] = '\0';
#endif
    machine["hostname"] = std::string(host[0] ? host : "unknown");
    machine["compiler"] = std::string(__VERSION__);
    machine["hardware_threads"] = static_cast<int>(std::thread::hardware_concurrency());
    machine["simd_isa_compiled"] = std::string(compiled_simd_isa());
    machine["simd_isa_detected"] = std::string(detected_simd_isa());
    return machine;
}

/// Prints aligned multi-series data (one row per iteration) so figures
/// can be eyeballed in a terminal or re-plotted from the CSV block.
inline void print_series(const std::string& title, const std::vector<std::string>& names,
                         const std::vector<const metrics::TimeSeries*>& series,
                         std::size_t stride = 1) {
    std::printf("\n# %s\n", title.c_str());
    std::printf("%10s", "iteration");
    for (const auto& n : names) std::printf(" %16s", n.c_str());
    std::printf("\n");
    std::size_t len = 0;
    for (const auto* s : series) len = std::max(len, s->size());
    for (std::size_t i = 0; i < len; i += stride) {
        std::printf("%10zu", i + 1);
        for (const auto* s : series) {
            if (i < s->size()) std::printf(" %16.1f", (*s)[i]);
            else std::printf(" %16s", "-");
        }
        std::printf("\n");
    }
}

/// Environment-variable override for step budgets etc., so the default
/// bench run stays fast while full paper-scale runs remain possible.
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    if (const char* v = std::getenv(name)) {
        const unsigned long long parsed = std::strtoull(v, nullptr, 10);
        if (parsed > 0) return parsed;
    }
    return fallback;
}

/// First iteration where a trailing 10-sample window of the trace swings
/// less than `threshold` relative to its mean; 0 if never.
inline std::size_t settle_iteration(const metrics::TimeSeries& trace, double threshold) {
    constexpr std::size_t kWindow = 10;
    for (std::size_t end = kWindow; end <= trace.size(); ++end) {
        double lo = (trace)[end - kWindow], hi = lo, sum = 0.0;
        for (std::size_t k = end - kWindow; k < end; ++k) {
            lo = std::min(lo, trace[k]);
            hi = std::max(hi, trace[k]);
            sum += trace[k];
        }
        const double mean = sum / kWindow;
        if (mean > 0.0 && (hi - lo) / mean < threshold) return end;
    }
    return 0;
}

}  // namespace lrgp::bench
