// Micro-benchmarks (google-benchmark) for the performance-critical
// pieces of the library, including the ablations DESIGN.md calls out:
//   * closed-form vs numeric rate stationarity solve;
//   * batched vs consumer-at-a-time greedy admission;
//   * one full LRGP iteration at several workload scales;
//   * simulated-annealing step throughput;
//   * one synchronous distributed round (simulator overhead).
#include <benchmark/benchmark.h>

#include <memory>

#include "baseline/annealing.hpp"
#include "dist/dist_lrgp.hpp"
#include "io/problem_json.hpp"
#include "multirate/multirate.hpp"
#include "lrgp/greedy_allocator.hpp"
#include "lrgp/optimizer.hpp"
#include "lrgp/rate_allocator.hpp"
#include "utility/rate_objective.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;

std::vector<utility::WeightedUtility> logTerms() {
    return {{400.0, std::make_shared<utility::LogUtility>(20.0)},
            {800.0, std::make_shared<utility::LogUtility>(5.0)},
            {2000.0, std::make_shared<utility::LogUtility>(1.0)}};
}

void BM_RateSolveClosedForm(benchmark::State& state) {
    const auto terms = logTerms();
    utility::RateSolveOptions options;
    options.allow_closed_form = true;
    double price = 50.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            utility::solve_rate_objective(terms, price, 10.0, 1000.0, options));
        price = (price < 1000.0) ? price + 1.0 : 50.0;  // vary input
    }
}
BENCHMARK(BM_RateSolveClosedForm);

void BM_RateSolveNumeric(benchmark::State& state) {
    const auto terms = logTerms();
    utility::RateSolveOptions options;
    options.allow_closed_form = false;  // ablation: force bisection
    double price = 50.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            utility::solve_rate_objective(terms, price, 10.0, 1000.0, options));
        price = (price < 1000.0) ? price + 1.0 : 50.0;
    }
}
BENCHMARK(BM_RateSolveNumeric);

void BM_GreedyAllocateBatched(benchmark::State& state) {
    const auto spec = workload::make_base_workload();
    core::GreedyConsumerAllocator greedy(spec);
    const std::vector<double> rates(spec.flowCount(), 25.0);
    const auto node = workload::find_node(spec, "r0_S0");
    for (auto _ : state) benchmark::DoNotOptimize(greedy.allocate(node, rates, true));
}
BENCHMARK(BM_GreedyAllocateBatched);

void BM_GreedyAllocateStepwise(benchmark::State& state) {
    const auto spec = workload::make_base_workload();
    core::GreedyConsumerAllocator greedy(spec);
    const std::vector<double> rates(spec.flowCount(), 25.0);
    const auto node = workload::find_node(spec, "r0_S0");
    for (auto _ : state) benchmark::DoNotOptimize(greedy.allocate(node, rates, false));
}
BENCHMARK(BM_GreedyAllocateStepwise);

void BM_LrgpIteration(benchmark::State& state) {
    workload::WorkloadOptions options;
    options.flow_replicas = static_cast<int>(state.range(0));
    options.cnode_replicas = static_cast<int>(state.range(1));
    core::LrgpOptimizer opt(workload::make_scaled_workload(options));
    for (auto _ : state) benchmark::DoNotOptimize(opt.step());
    state.SetLabel(std::to_string(6 * state.range(0)) + " flows, " +
                   std::to_string(3 * state.range(0) * state.range(1)) + " c-nodes");
}
BENCHMARK(BM_LrgpIteration)->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({1, 8});

void BM_AnnealingSteps(benchmark::State& state) {
    const auto spec = workload::make_base_workload();
    baseline::AnnealOptions options;
    options.max_steps = 1000;
    for (auto _ : state)
        benchmark::DoNotOptimize(baseline::simulated_annealing(spec, options));
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_AnnealingSteps);

void BM_DistSyncRound(benchmark::State& state) {
    const auto spec = workload::make_base_workload();
    dist::DistLrgp d(spec, dist::DistOptions{});
    for (auto _ : state) {
        d.runRounds(1);
        benchmark::DoNotOptimize(d.completedRounds());
    }
}
BENCHMARK(BM_DistSyncRound);

void BM_MultirateIteration(benchmark::State& state) {
    multirate::MultirateOptimizer opt(workload::make_base_workload());
    for (auto _ : state) {
        opt.step();
        benchmark::DoNotOptimize(opt.currentUtility());
    }
}
BENCHMARK(BM_MultirateIteration);

void BM_ProblemJsonRoundTrip(benchmark::State& state) {
    const auto spec = workload::make_base_workload();
    const std::string json = io::problem_to_json_string(spec);
    for (auto _ : state) benchmark::DoNotOptimize(io::problem_from_json_string(json));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * json.size()));
}
BENCHMARK(BM_ProblemJsonRoundTrip);

}  // namespace

BENCHMARK_MAIN();
