// Fastpath benchmark: the batched run-to-completion dataplane against
// the event-driven oracle.
//
// Phase 1 (fidelity): both engines enact the same optimizer allocation
// on the headroom workload and must agree — planned-vs-achieved utility
// within 2% of each other and matching drop rates.
//
// Phase 2 (throughput): a large headroom workload (48 flows x 800
// msg/s) through the sim for a short horizon and through the fastpath
// at 1/2/4/8 workers for a long one, both normalized to messages per
// *wall-clock* second (deterministic arrivals make the rate
// stationary, so horizons need not match).  The acceptance floors —
// fastpath >= 5x the sim's msgs/sec at 1 worker and >= 20x at 8 — are
// same-machine ratios, enforced by scripts/check_perf_regression.py on
// any hardware.
//
// The per-worker statsJson snapshots must be byte-identical (the
// "deterministic" flag); LRGP_FASTPATH_STATS_OUT additionally writes
// the snapshot to a file so CI can cmp(1) two independent processes.
//
// Writes BENCH_fastpath.json.  Wall-clock numbers vary by machine;
// everything else (message counts, utilities, drop rates, the
// deterministic flag) is a pure function of the seeds.
// LRGP_FASTPATH_SECONDS / LRGP_FASTPATH_SIM_SECONDS override the
// horizons; LRGP_FASTPATH_OUT overrides the output path.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dataplane/dataplane.hpp"
#include "fastpath/fastpath.hpp"
#include "io/json.hpp"
#include "lrgp/optimizer.hpp"
#include "model/allocation.hpp"
#include "workload/workloads.hpp"

namespace {

using namespace lrgp;

double wall_seconds(const std::chrono::steady_clock::time_point& begin) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
}

struct PlantRun {
    double achieved = 0.0;  ///< cumulative: utility of the mean delivered rates
    double planned = 0.0;
    double drop_rate = 0.0;
    std::uint64_t emitted = 0;
    double wall = 0.0;
};

template <class Plant>
PlantRun run_plant(Plant& plant, const model::Allocation& alloc, double horizon) {
    plant.notePlanned(alloc);
    plant.enact(alloc);
    const auto begin = std::chrono::steady_clock::now();
    plant.runUntil(horizon);
    PlantRun r;
    r.wall = wall_seconds(begin);
    const auto stats = plant.collectStats();
    r.achieved = stats.utility.achieved_cumulative;
    r.planned = stats.utility.planned;
    r.drop_rate = stats.drop_rate;
    r.emitted = stats.total_emitted;
    return r;
}

}  // namespace

int main() {
    const auto fast_horizon =
        static_cast<double>(bench::env_u64("LRGP_FASTPATH_SECONDS", 30));
    const auto sim_horizon =
        static_cast<double>(bench::env_u64("LRGP_FASTPATH_SIM_SECONDS", 4));
    const char* out_env = std::getenv("LRGP_FASTPATH_OUT");
    const std::string out_path = out_env != nullptr ? out_env : "BENCH_fastpath.json";

    io::JsonObject root;
    root["bench"] = std::string("bench_fastpath");
    root["machine"] = bench::machine_json();

    // ---------------------------------------------------- fidelity
    // The bench_dataplane headroom workload: the optimum leaves
    // queueing headroom, so both plants must deliver the plan.
    workload::WorkloadOptions fidelity_options;
    fidelity_options.rate_max = 60.0;
    fidelity_options.node_capacity = 3.0e7;
    const model::ProblemSpec fidelity_spec = workload::make_scaled_workload(fidelity_options);
    core::LrgpOptimizer optimizer{model::ProblemSpec(fidelity_spec)};
    const model::Allocation fidelity_alloc = optimizer.run(600).allocation;

    dataplane::Dataplane fidelity_sim(fidelity_spec);
    const PlantRun sim_fidelity = run_plant(fidelity_sim, fidelity_alloc, fast_horizon);
    fastpath::FastpathOptions fidelity_fp_options;
    fastpath::Fastpath fidelity_fast(fidelity_spec, fidelity_fp_options);
    const PlantRun fast_fidelity = run_plant(fidelity_fast, fidelity_alloc, fast_horizon);

    const double utility_gap_vs_sim =
        sim_fidelity.achieved > 0.0
            ? std::abs(fast_fidelity.achieved - sim_fidelity.achieved) / sim_fidelity.achieved
            : 0.0;
    std::printf("Fidelity (headroom, %zu flows, horizon %.0fs):\n", fidelity_spec.flowCount(),
                fast_horizon);
    std::printf("  sim  achieved %.1f (planned %.1f), drop %.5f\n", sim_fidelity.achieved,
                sim_fidelity.planned, sim_fidelity.drop_rate);
    std::printf("  fast achieved %.1f (planned %.1f), drop %.5f\n", fast_fidelity.achieved,
                fast_fidelity.planned, fast_fidelity.drop_rate);
    std::printf("  fast-vs-sim utility gap %.4f\n", utility_gap_vs_sim);

    {
        io::JsonObject fidelity;
        fidelity["planned_utility"] = sim_fidelity.planned;
        fidelity["sim_achieved_utility"] = sim_fidelity.achieved;
        fidelity["fast_achieved_utility"] = fast_fidelity.achieved;
        fidelity["sim_drop_rate"] = sim_fidelity.drop_rate;
        fidelity["fast_drop_rate"] = fast_fidelity.drop_rate;
        fidelity["utility_gap_vs_sim"] = utility_gap_vs_sim;
        root["fidelity"] = io::JsonValue(std::move(fidelity));
    }

    // -------------------------------------------------- throughput
    // Large headroom workload: 16 replicas x 6 flows at 800 msg/s
    // each.  Big enough that the per-quantum barrier cost at 8 workers
    // amortizes even on a single-core box.
    workload::WorkloadOptions throughput_options;
    throughput_options.flow_replicas = 16;
    const model::ProblemSpec throughput_spec =
        workload::make_scaled_workload(throughput_options);
    model::Allocation throughput_alloc = model::Allocation::minimal(throughput_spec);
    for (double& rate : throughput_alloc.rates) rate = 800.0;
    for (std::size_t j = 0; j < throughput_alloc.populations.size(); ++j) {
        throughput_alloc.populations[j] = 1;
    }

    dataplane::Dataplane throughput_sim(throughput_spec);
    const PlantRun sim_run = run_plant(throughput_sim, throughput_alloc, sim_horizon);
    const double sim_rate =
        sim_run.wall > 0.0 ? static_cast<double>(sim_run.emitted) / sim_run.wall : 0.0;
    std::printf("\nThroughput (%zu flows @ 800 msg/s):\n", throughput_spec.flowCount());
    std::printf("  %-10s %10s %12s %14s %10s\n", "engine", "horizon", "wall[ms]", "msgs/sec",
                "speedup");
    std::printf("  %-10s %9.0fs %12.1f %14.0f %10s\n", "sim", sim_horizon,
                1e3 * sim_run.wall, sim_rate, "1.00x");

    io::JsonArray worker_rows;
    std::string reference_stats;
    bool deterministic = true;
    double speedup_1 = 0.0, speedup_8 = 0.0;
    for (const int workers : {1, 2, 4, 8}) {
        fastpath::FastpathOptions options;
        options.workers = workers;
        fastpath::Fastpath fp(throughput_spec, options);
        const PlantRun run = run_plant(fp, throughput_alloc, fast_horizon);
        const double rate = run.wall > 0.0 ? static_cast<double>(run.emitted) / run.wall : 0.0;
        const double speedup = sim_rate > 0.0 ? rate / sim_rate : 0.0;
        if (workers == 1) speedup_1 = speedup;
        if (workers == 8) speedup_8 = speedup;

        // Byte-identical stats for every worker count, or the engine
        // lost its determinism argument.
        const std::string stats = fp.statsJson();
        if (reference_stats.empty()) {
            reference_stats = stats;
        } else if (stats != reference_stats) {
            deterministic = false;
        }

        std::printf("  fast w=%-4d %9.0fs %12.1f %14.0f %9.2fx\n", workers, fast_horizon,
                    1e3 * run.wall, rate, speedup);
        io::JsonObject row;
        row["workers"] = static_cast<double>(workers);
        row["wall_ms"] = 1e3 * run.wall;
        row["emitted"] = static_cast<double>(run.emitted);
        row["msgs_per_sec"] = rate;
        row["speedup_vs_sim"] = speedup;
        row["drop_rate"] = run.drop_rate;
        worker_rows.emplace_back(std::move(row));
    }

    if (const char* stats_out = std::getenv("LRGP_FASTPATH_STATS_OUT")) {
        std::ofstream out(stats_out, std::ios::binary);
        out << reference_stats;
    }

    {
        io::JsonObject throughput;
        io::JsonObject sim_obj;
        sim_obj["horizon_seconds"] = sim_horizon;
        sim_obj["wall_ms"] = 1e3 * sim_run.wall;
        sim_obj["emitted"] = static_cast<double>(sim_run.emitted);
        sim_obj["msgs_per_sec"] = sim_rate;
        throughput["sim"] = io::JsonValue(std::move(sim_obj));
        throughput["fast_horizon_seconds"] = fast_horizon;
        throughput["workers"] = io::JsonValue(std::move(worker_rows));
        root["throughput"] = io::JsonValue(std::move(throughput));
    }
    root["speedup_1"] = speedup_1;
    root["speedup_8"] = speedup_8;
    root["deterministic"] = deterministic;

    std::printf("\nspeedup_1 %.2fx, speedup_8 %.2fx, deterministic: %s\n", speedup_1, speedup_8,
                deterministic ? "yes" : "NO");

    std::ofstream out(out_path, std::ios::binary);
    out << io::JsonValue(std::move(root)).dump(true) << "\n";
    std::printf("wrote %s\n", out_path.c_str());
    return deterministic ? 0 : 1;
}
