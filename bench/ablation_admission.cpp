// Ablation: what do LRGP's two distinctive ingredients buy?
//
//  1. Joint rate + admission optimization vs the related-work baseline
//     (rates-only NUM with populations fixed up front, Section 5): on
//     the base workload, serving everyone (kMaxDemand) is infeasible
//     even at minimum rates, and the best uniform static cut
//     (kProportionalFill) leaves most of the utility on the table.
//  2. Benefit-cost node pricing (Eq. 12, key idea #4) vs a plain
//     gradient price: the greedy allocator never overfills a node, so a
//     gradient-only node price decays to zero, stops constraining rates,
//     and the rate/admission tradeoff degenerates.
#include <cstdio>
#include <iostream>

#include "baseline/rates_only.hpp"
#include "lrgp/optimizer.hpp"
#include "metrics/table_writer.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace lrgp;
    const auto spec = workload::make_base_workload();

    metrics::TableWriter table({"optimizer", "utility", "feasible", "note"});

    core::LrgpOptimizer lrgp_opt(spec);
    lrgp_opt.run(250);
    const double lrgp_utility = lrgp_opt.currentUtility();
    table.addRow({std::string("LRGP (full)"), lrgp_utility, std::string("yes"),
                  std::string("joint rates + admission")});

    {
        core::LrgpOptions options;
        options.node_price_rule = core::NodePriceRule::kGradientOnly;
        core::LrgpOptimizer opt(spec, options);
        opt.run(250);
        char note[64];
        std::snprintf(note, sizeof note, "%.1f%% of full LRGP",
                      100.0 * opt.currentUtility() / lrgp_utility);
        const bool ok = model::check_feasibility(spec, opt.allocation()).feasible();
        table.addRow({std::string("LRGP, gradient-only node price"), opt.currentUtility(),
                      std::string(ok ? "yes" : "NO"), std::string(note)});
    }

    {
        baseline::RatesOnlyOptions options;
        options.policy = baseline::PopulationPolicy::kProportionalFill;
        const auto result = baseline::rates_only_num(spec, options);
        char note[64];
        std::snprintf(note, sizeof note, "fill=%.1f%%, %.1f%% of LRGP",
                      100.0 * result.population_fill, 100.0 * result.utility / lrgp_utility);
        table.addRow({std::string("rates-only NUM, proportional fill"), result.utility,
                      std::string(result.feasible ? "yes" : "NO"), std::string(note)});
    }

    {
        baseline::RatesOnlyOptions options;
        options.policy = baseline::PopulationPolicy::kMaxDemand;
        const auto result = baseline::rates_only_num(spec, options);
        table.addRow({std::string("rates-only NUM, serve everyone"), result.utility,
                      std::string(result.feasible ? "yes" : "NO"),
                      std::string("demand exceeds capacity at r_min")});
    }

    std::printf("Ablation: admission control and benefit-cost pricing (base workload)\n\n");
    table.printTable(std::cout);
    std::printf(
        "\nReading: without admission control a rates-only optimizer either\n"
        "violates the node constraints (serve-everyone) or must pre-cut\n"
        "populations blindly; without benefit-cost node pricing the rate/\n"
        "admission tradeoff loses its price signal.  Both ablations land far\n"
        "below full LRGP, which is the paper's core design argument.\n");
    return 0;
}
