// Compiled-engine benchmark: serial LrgpOptimizer vs ParallelLrgpEngine
// on a paper-scale workload (Table 2's largest shape and beyond).
//
// Reports iterations/second and per-phase time for
//   * the serial reference optimizer (object-graph hot path),
//   * the compiled engine at 1 thread  (flat-array hot path only),
//   * the compiled engine at hardware threads,
// cross-checks that all three produce bitwise-identical final utility
// (the engine's determinism contract), and writes BENCH_lrgp.json for
// tracking.  LRGP_BENCH_ITERS overrides the iteration budget.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "bench_util.hpp"
#include "io/json.hpp"
#include "lrgp/optimizer.hpp"
#include "lrgp/parallel_engine.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "workload/workloads.hpp"

namespace {

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

template <class Driver>
std::uint64_t timed_run(Driver& driver, int iterations) {
    const std::uint64_t t0 = now_ns();
    driver.run(iterations);
    return now_ns() - t0;
}

}  // namespace

int main() {
    using namespace lrgp;

    const int iters = static_cast<int>(bench::env_u64("LRGP_BENCH_ITERS", 300));
    const int hw = std::max(1u, std::thread::hardware_concurrency());

    // 24 flows, 100 nodes (4 producers + 96 consumer nodes), 640 classes:
    // the "new flows" and "more consumers" scaling axes combined.
    workload::WorkloadOptions options;
    options.flow_replicas = 4;
    options.cnode_replicas = 8;
    const model::ProblemSpec spec = workload::make_scaled_workload(options);

    std::printf("Compiled-engine benchmark: %zu flows, %zu nodes, %zu classes, %d iterations\n\n",
                spec.flowCount(), spec.nodeCount(), spec.classCount(), iters);

    // Warm-up passes (page in code and the spec) — results discarded.
    {
        core::LrgpOptimizer warm(spec);
        warm.run(10);
        core::ParallelLrgpEngine warm_engine(spec, {}, {.threads = 1});
        warm_engine.run(10);
    }

    core::LrgpOptimizer serial(spec);
    const std::uint64_t serial_ns = timed_run(serial, iters);

    core::ParallelLrgpEngine compiled1(spec, {}, {.threads = 1, .collect_phase_times = true});
    const std::uint64_t compiled1_ns = timed_run(compiled1, iters);

    core::ParallelLrgpEngine compiledN(spec, {}, {.threads = hw});
    const std::uint64_t compiledN_ns = timed_run(compiledN, iters);

    // Determinism cross-check: all three drivers must land on the exact
    // same trajectory, not merely a close one.
    const double u_serial = serial.currentUtility();
    const double u_c1 = compiled1.currentUtility();
    const double u_cn = compiledN.currentUtility();
    if (u_serial != u_c1 || u_serial != u_cn) {
        std::fprintf(stderr,
                     "FATAL: trajectories diverged (serial %.17g, compiled/1t %.17g, "
                     "compiled/%dt %.17g)\n",
                     u_serial, u_c1, hw, u_cn);
        return 1;
    }

    const auto per_iter = [&](std::uint64_t ns) { return static_cast<double>(ns) / iters; };
    const auto iters_per_sec = [&](std::uint64_t ns) {
        return iters / (static_cast<double>(ns) * 1e-9);
    };
    const double speedup1 = static_cast<double>(serial_ns) / compiled1_ns;
    const double speedupN = static_cast<double>(serial_ns) / compiledN_ns;

    std::printf("%-24s %14s %14s %10s\n", "driver", "ns/iteration", "iters/sec", "speedup");
    std::printf("%-24s %14.0f %14.1f %10s\n", "serial LrgpOptimizer", per_iter(serial_ns),
                iters_per_sec(serial_ns), "1.00x");
    std::printf("%-24s %14.0f %14.1f %9.2fx\n", "compiled, 1 thread", per_iter(compiled1_ns),
                iters_per_sec(compiled1_ns), speedup1);
    char label[32];
    std::snprintf(label, sizeof label, "compiled, %d threads", hw);
    std::printf("%-24s %14.0f %14.1f %9.2fx\n", label, per_iter(compiledN_ns),
                iters_per_sec(compiledN_ns), speedupN);

    const core::PhaseTimes& pt = compiled1.phaseTimes();
    std::printf("\ncompiled 1-thread phase split (ns/iteration):\n");
    std::printf("  rate %.0f   node %.0f   link %.0f   reduce %.0f\n",
                per_iter(pt.rate_ns), per_iter(pt.node_ns), per_iter(pt.link_ns),
                per_iter(pt.reduce_ns));
    std::printf("\nfinal utility (all drivers, bitwise equal): %.1f\n", u_serial);

    io::JsonObject instance;
    instance["flows"] = static_cast<int>(spec.flowCount());
    instance["nodes"] = static_cast<int>(spec.nodeCount());
    instance["links"] = static_cast<int>(spec.linkCount());
    instance["classes"] = static_cast<int>(spec.classCount());

    io::JsonObject phases;
    phases["rate_ns_per_iter"] = per_iter(pt.rate_ns);
    phases["node_ns_per_iter"] = per_iter(pt.node_ns);
    phases["link_ns_per_iter"] = per_iter(pt.link_ns);
    phases["reduce_ns_per_iter"] = per_iter(pt.reduce_ns);

    io::JsonObject root;
    root["bench"] = "bench_compiled";
    root["iterations"] = iters;
    root["hardware_threads"] = hw;
    root["instance"] = std::move(instance);
    root["serial_ns_per_iter"] = per_iter(serial_ns);
    root["compiled_1t_ns_per_iter"] = per_iter(compiled1_ns);
    root["compiled_hw_ns_per_iter"] = per_iter(compiledN_ns);
    root["serial_iters_per_sec"] = iters_per_sec(serial_ns);
    root["compiled_1t_iters_per_sec"] = iters_per_sec(compiled1_ns);
    root["compiled_hw_iters_per_sec"] = iters_per_sec(compiledN_ns);
    root["speedup_1t"] = speedup1;
    root["speedup_hw"] = speedupN;
    root["compiled_1t_phases"] = std::move(phases);
    root["final_utility"] = u_serial;
    root["bitwise_identical"] = true;

    // Observability columns: a separate instrumented pass (the timed runs
    // above stay untouched) reports the engine's work counters and what
    // attaching a registry costs per iteration.
    io::JsonObject obs_cols;
    obs_cols["enabled"] = lrgp::obs::kEnabled;
    if constexpr (lrgp::obs::kEnabled) {
        lrgp::obs::Registry registry;
        core::ParallelLrgpEngine instrumented(spec, {}, {.threads = 1});
        instrumented.attachObservability(&registry, nullptr);
        const std::uint64_t instrumented_ns = timed_run(instrumented, iters);
        if (instrumented.currentUtility() != u_c1) {
            std::fprintf(stderr, "FATAL: observability perturbed the trajectory\n");
            return 1;
        }
        const auto count = [&](const char* name) {
            return static_cast<double>(registry.counterValue(name));
        };
        obs_cols["instrumented_1t_ns_per_iter"] = per_iter(instrumented_ns);
        obs_cols["overhead_pct"] =
            100.0 * (static_cast<double>(instrumented_ns) / compiled1_ns - 1.0);
        obs_cols["rate_solves"] = count("lrgp_rate_solves_total");
        obs_cols["admissions"] = count("lrgp_admissions_total");
        obs_cols["node_price_moves"] = count("lrgp_node_price_moves_total");
        obs_cols["link_price_moves"] = count("lrgp_link_price_moves_total");
        obs_cols["pool_jobs"] = count("lrgp_pool_jobs_total");
        obs_cols["pool_chunks"] = count("lrgp_pool_chunks_total");
        std::printf("\nobs: instrumented 1-thread run %.0f ns/iter (%.2f%% overhead), "
                    "%.0f rate solves, %.0f admissions\n",
                    per_iter(instrumented_ns),
                    100.0 * (static_cast<double>(instrumented_ns) / compiled1_ns - 1.0),
                    count("lrgp_rate_solves_total"), count("lrgp_admissions_total"));
    }
    root["obs"] = std::move(obs_cols);

    std::ofstream out("BENCH_lrgp.json");
    out << io::JsonValue(std::move(root)).dump(true) << "\n";
    std::printf("\nwrote BENCH_lrgp.json\n");
    return 0;
}
