// Compiled-engine benchmark: serial LrgpOptimizer vs ParallelLrgpEngine
// on a paper-scale workload (Table 2's largest shape and beyond).
//
// Reports iterations/second and per-phase time for
//   * the serial reference optimizer (object-graph hot path),
//   * the compiled engine at 1 thread  (flat-array hot path only),
//   * the compiled engine at hardware threads,
//   * the incremental engine (dirty-set tracking) on the contended
//     workload and on a steady-state-heavy headroom workload, where the
//     converged tail is timed separately after a warmup,
// cross-checks that every driver produces bitwise-identical final
// utility (the engine's determinism contract), and writes
// BENCH_lrgp.json for tracking.  Each measurement records the thread
// count it actually used (`threads_used`); `hardware_threads` only
// describes the machine.  LRGP_BENCH_ITERS overrides the iteration
// budget.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "bench_util.hpp"
#include "io/json.hpp"
#include "lrgp/optimizer.hpp"
#include "lrgp/parallel_engine.hpp"
#include "simd/batch_engine.hpp"
#include "simd/simd.hpp"
#include "simd/vector_engine.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "workload/workloads.hpp"

namespace {

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

template <class Driver>
std::uint64_t timed_run(Driver& driver, int iterations) {
    const std::uint64_t t0 = now_ns();
    driver.run(iterations);
    return now_ns() - t0;
}

}  // namespace

int main() {
    using namespace lrgp;

    const int iters = static_cast<int>(bench::env_u64("LRGP_BENCH_ITERS", 300));
    const int hw = std::max(1u, std::thread::hardware_concurrency());

    // 24 flows, 100 nodes (4 producers + 96 consumer nodes), 640 classes:
    // the "new flows" and "more consumers" scaling axes combined.
    workload::WorkloadOptions options;
    options.flow_replicas = 4;
    options.cnode_replicas = 8;
    const model::ProblemSpec spec = workload::make_scaled_workload(options);

    std::printf("Compiled-engine benchmark: %zu flows, %zu nodes, %zu classes, %d iterations\n\n",
                spec.flowCount(), spec.nodeCount(), spec.classCount(), iters);

    // Warm-up passes (page in code and the spec) — results discarded.
    {
        core::LrgpOptimizer warm(spec);
        warm.run(10);
        core::ParallelLrgpEngine warm_engine(spec, {}, {.threads = 1});
        warm_engine.run(10);
    }

    core::LrgpOptimizer serial(spec);
    const std::uint64_t serial_ns = timed_run(serial, iters);

    core::ParallelLrgpEngine compiled1(spec, {}, {.threads = 1, .collect_phase_times = true});
    const std::uint64_t compiled1_ns = timed_run(compiled1, iters);

    core::ParallelLrgpEngine compiledN(spec, {}, {.threads = hw});
    const std::uint64_t compiledN_ns = timed_run(compiledN, iters);

    core::ParallelLrgpEngine incremental(spec, {}, {.threads = 1, .incremental = true});
    const std::uint64_t incremental_ns = timed_run(incremental, iters);

    // Determinism cross-check: all drivers must land on the exact same
    // trajectory, not merely a close one.
    const double u_serial = serial.currentUtility();
    const double u_c1 = compiled1.currentUtility();
    const double u_cn = compiledN.currentUtility();
    const double u_inc = incremental.currentUtility();
    if (u_serial != u_c1 || u_serial != u_cn || u_serial != u_inc) {
        std::fprintf(stderr,
                     "FATAL: trajectories diverged (serial %.17g, compiled/1t %.17g, "
                     "compiled/%dt %.17g, incremental %.17g)\n",
                     u_serial, u_c1, hw, u_cn, u_inc);
        return 1;
    }

    const auto per_iter = [&](std::uint64_t ns) { return static_cast<double>(ns) / iters; };
    const auto iters_per_sec = [&](std::uint64_t ns) {
        return iters / (static_cast<double>(ns) * 1e-9);
    };
    const double speedup1 = static_cast<double>(serial_ns) / compiled1_ns;
    const double speedupN = static_cast<double>(serial_ns) / compiledN_ns;

    std::printf("%-24s %14s %14s %10s\n", "driver", "ns/iteration", "iters/sec", "speedup");
    std::printf("%-24s %14.0f %14.1f %10s\n", "serial LrgpOptimizer", per_iter(serial_ns),
                iters_per_sec(serial_ns), "1.00x");
    std::printf("%-24s %14.0f %14.1f %9.2fx\n", "compiled, 1 thread", per_iter(compiled1_ns),
                iters_per_sec(compiled1_ns), speedup1);
    char label[32];
    std::snprintf(label, sizeof label, "compiled, %d threads", compiledN.threadCount());
    std::printf("%-24s %14.0f %14.1f %9.2fx\n", label, per_iter(compiledN_ns),
                iters_per_sec(compiledN_ns), speedupN);
    std::printf("%-24s %14.0f %14.1f %9.2fx\n", "incremental, 1 thread",
                per_iter(incremental_ns), iters_per_sec(incremental_ns),
                static_cast<double>(serial_ns) / incremental_ns);
    if (hw == 1)
        std::printf("\nnote: single-core environment — the hw-thread row cannot show "
                    "parallel speedup here.\n");

    const core::PhaseTimes& pt = compiled1.phaseTimes();
    std::printf("\ncompiled 1-thread phase split (ns/iteration):\n");
    std::printf("  rate %.0f   node %.0f   link %.0f   reduce %.0f\n",
                per_iter(pt.rate_ns), per_iter(pt.node_ns), per_iter(pt.link_ns),
                per_iter(pt.reduce_ns));
    std::printf("\nfinal utility (all drivers, bitwise equal): %.1f\n", u_serial);

    // ---- converged-tail measurement on a steady-state-heavy workload ----
    // The contended workload above never reaches an exact floating-point
    // fixpoint (the adaptive-gamma controllers keep a few prices in a
    // limit cycle), so it shows the incremental engine's worst case.  A
    // headroom variant (large node capacity, low rate cap) quiesces
    // bitwise within ~50 iterations; warm both engines past that point,
    // reset the phase clocks, and time only the converged tail — the
    // regime a long-running deployment actually sits in.
    workload::WorkloadOptions steady_options;
    steady_options.flow_replicas = 4;
    steady_options.cnode_replicas = 8;
    steady_options.node_capacity = 3.0e7;
    steady_options.rate_max = 60.0;
    const model::ProblemSpec steady = workload::make_scaled_workload(steady_options);
    const int warm_iters = 100;

    core::ParallelLrgpEngine steady_full(steady, {},
                                         {.threads = 1, .collect_phase_times = true});
    steady_full.run(warm_iters);
    steady_full.resetPhaseTimes();
    const std::uint64_t steady_full_ns = timed_run(steady_full, iters);

    core::ParallelLrgpEngine steady_inc(
        steady, {}, {.threads = 1, .collect_phase_times = true, .incremental = true});
    steady_inc.run(warm_iters);
    steady_inc.resetPhaseTimes();
    const std::uint64_t steady_inc_ns = timed_run(steady_inc, iters);

    if (steady_full.currentUtility() != steady_inc.currentUtility()) {
        std::fprintf(stderr, "FATAL: incremental diverged on the steady workload (%.17g vs %.17g)\n",
                     steady_inc.currentUtility(), steady_full.currentUtility());
        return 1;
    }

    const double full_node_tail = per_iter(steady_full.phaseTimes().node_ns);
    const double inc_node_tail = per_iter(steady_inc.phaseTimes().node_ns);
    const double node_tail_speedup = full_node_tail / inc_node_tail;
    const double e2e_tail_speedup =
        static_cast<double>(steady_full_ns) / static_cast<double>(steady_inc_ns);
    const core::IncrementalStats inc_stats = steady_inc.incrementalStats();

    std::printf("\nsteady-workload converged tail (%zu flows, %zu nodes; warmup %d, tail %d):\n",
                steady.flowCount(), steady.nodeCount(), warm_iters, iters);
    std::printf("  node phase: full %.0f ns/iter, incremental %.0f ns/iter  (%.2fx)\n",
                full_node_tail, inc_node_tail, node_tail_speedup);
    std::printf("  end-to-end: full %.0f ns/iter, incremental %.0f ns/iter  (%.2fx)\n",
                per_iter(steady_full_ns), per_iter(steady_inc_ns), e2e_tail_speedup);
    std::printf("  incremental totals: %llu solves run / %llu skipped, %llu nodes re-ran / "
                "%llu cache hits, %llu utility-sum reuses\n",
                static_cast<unsigned long long>(inc_stats.dirty_flows),
                static_cast<unsigned long long>(inc_stats.skipped_solves),
                static_cast<unsigned long long>(inc_stats.dirty_nodes),
                static_cast<unsigned long long>(inc_stats.node_cache_hits),
                static_cast<unsigned long long>(inc_stats.utility_cache_hits));

    io::JsonObject instance;
    instance["flows"] = static_cast<int>(spec.flowCount());
    instance["nodes"] = static_cast<int>(spec.nodeCount());
    instance["links"] = static_cast<int>(spec.linkCount());
    instance["classes"] = static_cast<int>(spec.classCount());

    io::JsonObject phases;
    phases["rate_ns_per_iter"] = per_iter(pt.rate_ns);
    phases["node_ns_per_iter"] = per_iter(pt.node_ns);
    phases["link_ns_per_iter"] = per_iter(pt.link_ns);
    phases["reduce_ns_per_iter"] = per_iter(pt.reduce_ns);

    // Thread counts each measurement actually used.  `hardware_threads`
    // describes the machine; on a single-core box the hw-thread row
    // degenerates to one worker and shows no parallel speedup — record
    // that explicitly instead of letting the two numbers be conflated.
    io::JsonObject threads_used;
    threads_used["serial"] = 1;
    threads_used["compiled_1t"] = compiled1.threadCount();
    threads_used["compiled_hw"] = compiledN.threadCount();
    threads_used["incremental_1t"] = incremental.threadCount();

    io::JsonObject root;
    root["bench"] = "bench_compiled";
    root["machine"] = bench::machine_json();
    root["iterations"] = iters;
    root["hardware_threads"] = hw;
    root["threads_used"] = std::move(threads_used);
    root["single_core_environment"] = (hw == 1);
    root["instance"] = std::move(instance);
    root["serial_ns_per_iter"] = per_iter(serial_ns);
    root["compiled_1t_ns_per_iter"] = per_iter(compiled1_ns);
    root["compiled_hw_ns_per_iter"] = per_iter(compiledN_ns);
    root["serial_iters_per_sec"] = iters_per_sec(serial_ns);
    root["compiled_1t_iters_per_sec"] = iters_per_sec(compiled1_ns);
    root["compiled_hw_iters_per_sec"] = iters_per_sec(compiledN_ns);
    root["speedup_1t"] = speedup1;
    root["speedup_hw"] = speedupN;
    root["compiled_1t_phases"] = std::move(phases);
    root["final_utility"] = u_serial;
    root["bitwise_identical"] = true;

    io::JsonObject inc_cols;
    inc_cols["contended_1t_ns_per_iter"] = per_iter(incremental_ns);
    inc_cols["contended_speedup_vs_compiled_1t"] =
        static_cast<double>(compiled1_ns) / incremental_ns;
    io::JsonObject steady_instance;
    steady_instance["flows"] = static_cast<int>(steady.flowCount());
    steady_instance["nodes"] = static_cast<int>(steady.nodeCount());
    steady_instance["classes"] = static_cast<int>(steady.classCount());
    steady_instance["node_capacity"] = steady_options.node_capacity;
    steady_instance["rate_max"] = steady_options.rate_max;
    inc_cols["steady_instance"] = std::move(steady_instance);
    inc_cols["steady_warmup_iters"] = warm_iters;
    inc_cols["steady_tail_iters"] = iters;
    inc_cols["steady_full_ns_per_iter"] = per_iter(steady_full_ns);
    inc_cols["steady_inc_ns_per_iter"] = per_iter(steady_inc_ns);
    inc_cols["steady_full_node_ns_per_iter"] = full_node_tail;
    inc_cols["steady_inc_node_ns_per_iter"] = inc_node_tail;
    inc_cols["node_phase_tail_speedup"] = node_tail_speedup;
    inc_cols["e2e_tail_speedup"] = e2e_tail_speedup;
    inc_cols["steady_rate_solves_run"] = static_cast<double>(inc_stats.dirty_flows);
    inc_cols["steady_rate_solves_skipped"] = static_cast<double>(inc_stats.skipped_solves);
    inc_cols["steady_nodes_reran"] = static_cast<double>(inc_stats.dirty_nodes);
    inc_cols["steady_node_cache_hits"] = static_cast<double>(inc_stats.node_cache_hits);
    inc_cols["steady_rank_cache_hits"] = static_cast<double>(inc_stats.rank_cache_hits);
    inc_cols["steady_utility_cache_hits"] = static_cast<double>(inc_stats.utility_cache_hits);
    root["incremental"] = std::move(inc_cols);

    // Observability columns: a separate instrumented pass (the timed runs
    // above stay untouched) reports the engine's work counters and what
    // attaching a registry costs per iteration.
    io::JsonObject obs_cols;
    obs_cols["enabled"] = lrgp::obs::kEnabled;
    if constexpr (lrgp::obs::kEnabled) {
        lrgp::obs::Registry registry;
        core::ParallelLrgpEngine instrumented(spec, {}, {.threads = 1});
        instrumented.attachObservability(&registry, nullptr);
        const std::uint64_t instrumented_ns = timed_run(instrumented, iters);
        if (instrumented.currentUtility() != u_c1) {
            std::fprintf(stderr, "FATAL: observability perturbed the trajectory\n");
            return 1;
        }
        const auto count = [&](const char* name) {
            return static_cast<double>(registry.counterValue(name));
        };
        obs_cols["instrumented_1t_ns_per_iter"] = per_iter(instrumented_ns);
        obs_cols["overhead_pct"] =
            100.0 * (static_cast<double>(instrumented_ns) / compiled1_ns - 1.0);
        obs_cols["rate_solves"] = count("lrgp_rate_solves_total");
        obs_cols["admissions"] = count("lrgp_admissions_total");
        obs_cols["node_price_moves"] = count("lrgp_node_price_moves_total");
        obs_cols["link_price_moves"] = count("lrgp_link_price_moves_total");
        obs_cols["pool_jobs"] = count("lrgp_pool_jobs_total");
        obs_cols["pool_chunks"] = count("lrgp_pool_chunks_total");
        std::printf("\nobs: instrumented 1-thread run %.0f ns/iter (%.2f%% overhead), "
                    "%.0f rate solves, %.0f admissions\n",
                    per_iter(instrumented_ns),
                    100.0 * (static_cast<double>(instrumented_ns) / compiled1_ns - 1.0),
                    count("lrgp_rate_solves_total"), count("lrgp_admissions_total"));
    }
    root["obs"] = std::move(obs_cols);

    // ---- vectorized SoA core at 10^5-class scale ----
    // The vector engine's target regime: one big instance where the
    // class-major SIMD kernels amortize.  Phase-kernel speedups are
    // same-machine ratios of two runs of this binary, so the >= 4x rate
    // floor in scripts/check_perf_regression.py stays enforceable; it is
    // keyed on the machine block's detected ISA.  LRGP_BENCH_VEC_ITERS
    // overrides the budget (this workload is ~156x the contended one).
    const int vec_iters = static_cast<int>(bench::env_u64("LRGP_BENCH_VEC_ITERS", 40));
    workload::WorkloadOptions vec_options;
    vec_options.flow_replicas = 50;    // 300 flows
    vec_options.cnode_replicas = 100;  // 15000 consumer nodes, 100000 classes
    const model::ProblemSpec vec_spec = workload::make_scaled_workload(vec_options);
    const auto vec_per_iter = [&](std::uint64_t ns) {
        return static_cast<double>(ns) / vec_iters;
    };

    core::ParallelLrgpEngine vec_scalar(vec_spec, {},
                                        {.threads = 1, .collect_phase_times = true});
    const std::uint64_t vec_scalar_ns = timed_run(vec_scalar, vec_iters);
    const core::PhaseTimes& spt = vec_scalar.phaseTimes();

    simd::VectorLrgpEngine vec_exact(
        vec_spec, {}, {.mode = simd::VectorMode::kExact, .collect_phase_times = true});
    const std::uint64_t vec_exact_ns = timed_run(vec_exact, vec_iters);

    simd::VectorLrgpEngine vec_tol(vec_spec, {},
                                   {.mode = simd::VectorMode::kTolerance,
                                    .collect_phase_times = true});
    const std::uint64_t vec_tol_ns = timed_run(vec_tol, vec_iters);

    if (vec_exact.currentUtility() != vec_scalar.currentUtility()) {
        std::fprintf(stderr,
                     "FATAL: vector_exact diverged from the compiled engine "
                     "(%.17g vs %.17g)\n",
                     vec_exact.currentUtility(), vec_scalar.currentUtility());
        return 1;
    }
    const double vec_rel_err =
        std::abs(vec_tol.currentUtility() - vec_scalar.currentUtility()) /
        std::abs(vec_scalar.currentUtility());

    const auto ratio = [](std::uint64_t num, std::uint64_t den) {
        return den > 0 ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
    };
    const simd::VectorEngineStats& vex = vec_exact.stats();
    const simd::VectorEngineStats& vtl = vec_tol.stats();

    std::printf("\nvector engine, %zu classes (%d iterations, %s kernels):\n",
                vec_spec.classCount(), vec_iters, vec_tol.variant());
    std::printf("  %-14s %12s %12s %12s %10s\n", "", "rate ns/it", "node ns/it",
                "link ns/it", "e2e x");
    std::printf("  %-14s %12.0f %12.0f %12.0f %10s\n", "compiled 1t",
                vec_per_iter(spt.rate_ns), vec_per_iter(spt.node_ns),
                vec_per_iter(spt.link_ns), "1.00");
    std::printf("  %-14s %12.0f %12.0f %12.0f %9.2fx\n", "vector_exact",
                vec_per_iter(vex.rate_ns), vec_per_iter(vex.node_ns),
                vec_per_iter(vex.link_ns), ratio(vec_scalar_ns, vec_exact_ns));
    std::printf("  %-14s %12.0f %12.0f %12.0f %9.2fx\n", "vector",
                vec_per_iter(vtl.rate_ns), vec_per_iter(vtl.node_ns),
                vec_per_iter(vtl.link_ns), ratio(vec_scalar_ns, vec_tol_ns));
    std::printf("  rate-kernel speedup: exact %.2fx, tolerance %.2fx; "
                "tolerance rel err %.2e\n",
                ratio(spt.rate_ns, vex.rate_ns), ratio(spt.rate_ns, vtl.rate_ns),
                vec_rel_err);

    // Batched lockstep: eight capacity-scaled copies of the contended
    // workload, one per vector lane, vs eight solo serial solves.  Every
    // lane must land bitwise on its solo trajectory.
    std::vector<model::ProblemSpec> batch_specs;
    std::vector<double> batch_solo_utilities;
    std::uint64_t batch_solo_ns = 0;
    for (std::size_t k = 0; k < simd::kWidth; ++k) {
        const double scale =
            0.7 + 0.6 * static_cast<double>(k) / static_cast<double>(simd::kWidth - 1);
        model::ProblemSpec copy = spec;
        for (const model::NodeSpec& node : spec.nodes())
            copy.setNodeCapacity(node.id, node.capacity * scale);
        core::LrgpOptimizer solo(copy);
        batch_solo_ns += timed_run(solo, iters);
        batch_solo_utilities.push_back(solo.currentUtility());
        batch_specs.push_back(std::move(copy));
    }
    simd::BatchedVectorEngine batch(std::move(batch_specs));
    const std::uint64_t batch_ns = timed_run(batch, iters);
    bool batch_bitwise = true;
    for (std::size_t k = 0; k < simd::kWidth; ++k)
        batch_bitwise = batch_bitwise && batch.utility(k) == batch_solo_utilities[k];
    if (!batch_bitwise) {
        std::fprintf(stderr, "FATAL: a batched lane diverged from its solo serial run\n");
        return 1;
    }
    const double batch_speedup = ratio(batch_solo_ns, batch_ns);
    std::printf("  batched: %zu instances in lockstep, %.0f ns/instance-iter vs "
                "%.0f solo serial (%.2fx aggregate)\n",
                simd::kWidth,
                static_cast<double>(batch_ns) / (iters * simd::kWidth),
                static_cast<double>(batch_solo_ns) / (iters * simd::kWidth),
                batch_speedup);

    io::JsonObject vec_cols;
    vec_cols["iterations"] = vec_iters;
    io::JsonObject vec_instance;
    vec_instance["flows"] = static_cast<int>(vec_spec.flowCount());
    vec_instance["nodes"] = static_cast<int>(vec_spec.nodeCount());
    vec_instance["links"] = static_cast<int>(vec_spec.linkCount());
    vec_instance["classes"] = static_cast<int>(vec_spec.classCount());
    vec_cols["instance"] = std::move(vec_instance);
    vec_cols["kernel_variant"] = std::string(vec_tol.variant());
    vec_cols["scalar_1t_ns_per_iter"] = vec_per_iter(vec_scalar_ns);
    vec_cols["exact_ns_per_iter"] = vec_per_iter(vec_exact_ns);
    vec_cols["tolerance_ns_per_iter"] = vec_per_iter(vec_tol_ns);
    io::JsonObject vec_scalar_phases;
    vec_scalar_phases["rate_ns_per_iter"] = vec_per_iter(spt.rate_ns);
    vec_scalar_phases["node_ns_per_iter"] = vec_per_iter(spt.node_ns);
    vec_scalar_phases["link_ns_per_iter"] = vec_per_iter(spt.link_ns);
    vec_cols["scalar_1t_phases"] = std::move(vec_scalar_phases);
    io::JsonObject vec_exact_phases;
    vec_exact_phases["rate_ns_per_iter"] = vec_per_iter(vex.rate_ns);
    vec_exact_phases["node_ns_per_iter"] = vec_per_iter(vex.node_ns);
    vec_exact_phases["link_ns_per_iter"] = vec_per_iter(vex.link_ns);
    vec_cols["exact_phases"] = std::move(vec_exact_phases);
    io::JsonObject vec_tol_phases;
    vec_tol_phases["rate_ns_per_iter"] = vec_per_iter(vtl.rate_ns);
    vec_tol_phases["node_ns_per_iter"] = vec_per_iter(vtl.node_ns);
    vec_tol_phases["link_ns_per_iter"] = vec_per_iter(vtl.link_ns);
    vec_cols["tolerance_phases"] = std::move(vec_tol_phases);
    vec_cols["rate_kernel_speedup"] = ratio(spt.rate_ns, vtl.rate_ns);
    vec_cols["rate_kernel_speedup_exact"] = ratio(spt.rate_ns, vex.rate_ns);
    vec_cols["link_kernel_speedup"] = ratio(spt.link_ns, vtl.link_ns);
    vec_cols["e2e_speedup"] = ratio(vec_scalar_ns, vec_tol_ns);
    vec_cols["e2e_speedup_exact"] = ratio(vec_scalar_ns, vec_exact_ns);
    vec_cols["bitwise_exact"] = true;
    vec_cols["tolerance_rel_err"] = vec_rel_err;
    io::JsonObject batch_cols;
    batch_cols["instances"] = static_cast<int>(simd::kWidth);
    batch_cols["iterations"] = iters;
    batch_cols["ns_per_instance_iter"] =
        static_cast<double>(batch_ns) / (iters * simd::kWidth);
    batch_cols["solo_serial_ns_per_instance_iter"] =
        static_cast<double>(batch_solo_ns) / (iters * simd::kWidth);
    batch_cols["aggregate_speedup"] = batch_speedup;
    batch_cols["lockstep_bitwise"] = true;
    vec_cols["batch"] = std::move(batch_cols);
    root["vector"] = std::move(vec_cols);

    std::ofstream out("BENCH_lrgp.json");
    out << io::JsonValue(std::move(root)).dump(true) << "\n";
    std::printf("\nwrote BENCH_lrgp.json\n");
    return 0;
}
