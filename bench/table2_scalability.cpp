// Table 2 — "Quality of results for LRGP and Simulated Annealing as the
// size of the system grows".
//
// Reproduces the six scaled workloads: {6f/3c, 12f/6c, 24f/12c} (new
// information flows) and {6f/6c, 6f/12c, 6f/24c} (same information, more
// consumers).  For each, reports LRGP's iterations-until-convergence and
// converged utility, and the best simulated-annealing outcome over the
// paper's four start temperatures {5, 10, 50, 100}.
//
// The paper ran SA for up to 10^8 steps (23-357 minutes per workload);
// the default budget here is 10^5 steps per temperature so the whole
// table regenerates in seconds on one core.  Set LRGP_SA_STEPS to raise
// it (SA quality only improves with steps).
//
// Expected shape: LRGP utility >= SA utility on every row; LRGP converges
// in a near-constant ~20-30 iterations; LRGP utility grows linearly with
// the number of consumer nodes (paper: 1,328,821 / 2,657,600 / 5,313,612
// / 2,656,706 / 5,313,412 / 10,626,824).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "baseline/annealing.hpp"
#include "bench_util.hpp"
#include "lrgp/optimizer.hpp"
#include "lrgp/parallel_engine.hpp"
#include "metrics/table_writer.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace lrgp;
    const std::uint64_t sa_steps = bench::env_u64("LRGP_SA_STEPS", 100'000);

    struct Row {
        const char* name;
        int flow_replicas;
        int cnode_replicas;
        double paper_lrgp_utility;
        int paper_lrgp_iterations;
    };
    const Row rows[] = {
        {"6 flows, 3 c-nodes", 1, 1, 1328821.0, 21},
        {"12 flows, 6 c-nodes", 2, 1, 2657600.0, 21},
        {"24 flows, 12 c-nodes", 4, 1, 5313612.0, 24},
        {"6 flows, 6 c-nodes", 1, 2, 2656706.0, 22},
        {"6 flows, 12 c-nodes", 1, 4, 5313412.0, 22},
        {"6 flows, 24 c-nodes", 1, 8, 10626824.0, 22},
    };

    std::printf("Table 2: LRGP vs simulated annealing as the system grows\n");
    std::printf("(SA budget: %llu steps per start temperature; LRGP_SA_STEPS overrides)\n\n",
                static_cast<unsigned long long>(sa_steps));

    // Each row records the thread count its compiled-engine measurement
    // actually ran with; `hardware_threads` alone would mask whether the
    // speedup column had any parallelism behind it.
    const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
    metrics::TableWriter table({"workload", "SA utility", "SA minutes", "LRGP iters",
                                "LRGP utility", "utility increase", "paper LRGP utility",
                                "compiled speedup", "threads"});

    for (const Row& row : rows) {
        workload::WorkloadOptions options;
        options.flow_replicas = row.flow_replicas;
        options.cnode_replicas = row.cnode_replicas;
        const auto spec = workload::make_scaled_workload(options);

        using clock = std::chrono::steady_clock;
        const auto t0 = clock::now();
        core::LrgpOptimizer opt(spec);
        opt.run(250);
        const auto t1 = clock::now();
        const std::size_t iters = opt.convergence().convergedAt();
        const double lrgp_utility = opt.currentUtility();

        // Compiled-engine cross-check: same 250 iterations must land on
        // the bitwise-identical utility, and faster.
        const auto t2 = clock::now();
        core::ParallelLrgpEngine engine(spec, {}, {.threads = 1});
        engine.run(250);
        const auto t3 = clock::now();
        if (engine.currentUtility() != lrgp_utility) {
            std::fprintf(stderr, "FATAL: compiled engine diverged on '%s' (%.17g vs %.17g)\n",
                         row.name, engine.currentUtility(), lrgp_utility);
            return 1;
        }
        const double speedup = std::chrono::duration<double>(t1 - t0).count() /
                               std::chrono::duration<double>(t3 - t2).count();

        const auto sa =
            baseline::best_of_annealing(spec, {5.0, 10.0, 50.0, 100.0}, sa_steps, 1);

        const double increase = 100.0 * (lrgp_utility - sa.best_utility) / sa.best_utility;
        char pct[32];
        std::snprintf(pct, sizeof pct, "%.2f%%", increase);
        char spd[32];
        std::snprintf(spd, sizeof spd, "%.2fx", speedup);
        table.addRow({std::string(row.name), sa.best_utility, sa.wall_seconds / 60.0,
                      static_cast<long long>(iters), lrgp_utility, std::string(pct),
                      row.paper_lrgp_utility, std::string(spd),
                      static_cast<long long>(engine.threadCount())});
    }

    table.printTable(std::cout);
    std::printf("\nExpected shape (paper): LRGP >= SA on every row (paper: +6.5%% to +18.8%%\n"
                "with SA capped at 1e8 steps); LRGP converges in ~constant iterations\n"
                "(paper: 21-24); LRGP utility scales linearly with consumer nodes.\n");
    std::printf("\nMachine: %u hardware thread%s.%s\n", hw_threads, hw_threads == 1 ? "" : "s",
                hw_threads == 1
                    ? "  Single-core environment: the compiled speedup column measures the"
                      "\nflat-array hot path only, not parallel fan-out."
                    : "");
    return 0;
}
