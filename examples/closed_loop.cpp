// closed_loop — the optimizer, the enactment policy, and the
// message-level dataplane wired into one feedback loop.
//
// A centralized LRGP optimizer re-plans every 50 ms of simulated time;
// each plan is offered to an EnactmentController, and whatever it
// enacts drives token-bucket traffic sources, queueing servers and
// consumer sinks.  At t=10s the busiest node loses 60% of its capacity
// (and the optimizer is told about it); at t=14s the capacity comes
// back.  The run prints the *planned* utility (what the optimizer
// believes it allocated) next to the *achieved* utility (what the
// simulated traffic actually delivered) so the dip and the recovery are
// visible in measured message rates, not just in the allocation trace.
//
// Build and run:
//   cmake --build build --target closed_loop && build/examples/closed_loop
#include <algorithm>
#include <cstdio>

#include "dataplane/closed_loop.hpp"
#include "dataplane/dataplane.hpp"
#include "lrgp/optimizer.hpp"
#include "model/analysis.hpp"
#include "workload/workloads.hpp"

using namespace lrgp;

int main() {
    // The Table 1 workload with enough node headroom that the enacted
    // optimum runs the servers well below saturation — the dip we want
    // to show comes from the injected fault, not from queueing losses.
    workload::WorkloadOptions wopts;
    wopts.rate_max = 60.0;
    wopts.node_capacity = 3.0e7;
    const model::ProblemSpec spec = workload::make_scaled_workload(wopts);
    std::printf("workload: %zu flows, %zu classes, %zu nodes\n", spec.flowCount(),
                spec.classCount(), spec.nodeCount());

    core::LrgpOptimizer optimizer{model::ProblemSpec(spec)};
    dataplane::Dataplane dataplane(spec, dataplane::DataplaneOptions{});

    constexpr double kFaultStart = 10.0;
    constexpr double kFaultEnd = 14.0;
    // Fail the node carrying the most consumer classes — the producer
    // node hosts none, so degrading it would change nothing.
    model::NodeId victim{0};
    for (std::uint32_t n = 1; n < spec.nodeCount(); ++n) {
        const model::NodeId candidate{n};
        if (spec.classesAtNode(candidate).size() > spec.classesAtNode(victim).size()) {
            victim = candidate;
        }
    }
    const double full_capacity = spec.node(victim).capacity;
    const double degraded_capacity = 0.05 * full_capacity;

    dataplane::ClosedLoopOptions options;
    options.duration = 24.0;
    options.enactment.rate_deadband = 0.02;
    options.enactment.population_deadband = 2;
    options.enactment.min_interval = 1.0;

    bool fault_applied = false;
    bool fault_cleared = false;
    double next_report = 2.0;
    const auto result = dataplane::run_closed_loop(
        optimizer, dataplane, options,
        [&](double now, core::LrgpOptimizer& opt, dataplane::Dataplane& dp) {
            if (!fault_applied && now >= kFaultStart) {
                // The fault hits the dataplane AND the control loop:
                // the node really slows down, and the optimizer re-plans
                // around the reduced capacity.
                dp.setNodeCapacity(victim, degraded_capacity);
                opt.setNodeCapacity(victim, degraded_capacity);
                fault_applied = true;
                std::printf("t=%5.1f  node %s capacity cut to 5%%\n", now,
                            spec.node(victim).name.c_str());
            }
            if (!fault_cleared && now >= kFaultEnd) {
                dp.setNodeCapacity(victim, full_capacity);
                opt.setNodeCapacity(victim, full_capacity);
                fault_cleared = true;
                std::printf("t=%5.1f  node %s capacity restored\n", now,
                            spec.node(victim).name.c_str());
            }
            if (now >= next_report) {
                const auto& achieved = dp.achievedUtilityTrace();
                const auto& planned = dp.plannedUtilityTrace();
                if (!achieved.empty()) {
                    std::printf("t=%5.1f  planned %12.0f  achieved %12.0f\n", now,
                                planned.back(), achieved.back());
                }
                next_report += 2.0;
            }
        });

    const auto stats = dataplane.collectStats();
    std::printf("\n%zu iterations, %zu/%zu offers enacted\n", result.iterations,
                result.enactments, result.offers);
    std::printf("traffic: %llu emitted, %llu delivered, drop rate %.4f, p99 latency %.4fs\n",
                static_cast<unsigned long long>(stats.total_emitted),
                static_cast<unsigned long long>(stats.total_delivered), stats.drop_rate,
                stats.latency.p99);
    const std::size_t window =
        std::min<std::size_t>(10, dataplane.achievedUtilityTrace().size());
    std::printf("settled: planned %.0f, achieved %.0f\n",
                dataplane.plannedUtilityTrace().trailingMean(window),
                dataplane.achievedUtilityTrace().trailingMean(window));
    return 0;
}
