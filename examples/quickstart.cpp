// Quickstart: build the paper's base workload (Table 1), run LRGP to
// convergence, and print the resulting rates, admissions and utility.
//
// This is the smallest end-to-end use of the library:
//   workload -> LrgpOptimizer -> converged Allocation.
#include <cstdio>

#include "lrgp/optimizer.hpp"
#include "model/allocation.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace lrgp;

    // The Table 1 workload: 6 flows, 3 consumer nodes, 20 classes,
    // utility rank_j * log(1+r), F=3, G=19, c_b=9e5, r in [10, 1000].
    model::ProblemSpec spec = workload::make_base_workload(workload::UtilityShape::kLog);

    core::LrgpOptions options;  // adaptive gamma by default
    core::LrgpOptimizer optimizer(spec, options);

    const auto converged_at = optimizer.runUntilConverged(/*max_iterations=*/250);
    if (converged_at) {
        std::printf("converged after %d iterations\n", *converged_at);
    } else {
        std::printf("did not converge within 250 iterations\n");
    }

    const model::Allocation& alloc = optimizer.allocation();
    std::printf("total utility: %.0f\n", optimizer.currentUtility());
    std::printf("\n%-8s %10s\n", "flow", "rate");
    for (const model::FlowSpec& f : optimizer.problem().flows())
        std::printf("%-8s %10.2f\n", f.name.c_str(), alloc.rates[f.id.index()]);

    std::printf("\n%-10s %-8s %-8s %8s %8s\n", "class", "flow", "node", "admitted", "max");
    for (const model::ClassSpec& c : optimizer.problem().classes()) {
        std::printf("%-10s %-8s %-8s %8d %8d\n", c.name.c_str(),
                    optimizer.problem().flow(c.flow).name.c_str(),
                    optimizer.problem().node(c.node).name.c_str(),
                    alloc.populations[c.id.index()], c.max_consumers);
    }

    const model::FeasibilityReport report =
        model::check_feasibility(optimizer.problem(), alloc);
    std::printf("\nfeasible: %s\n", report.feasible() ? "yes" : "no");
    return report.feasible() ? 0 : 1;
}
