#include <sstream>
// lrgp_cli — command-line front end for the library.
//
// Builds a workload (the paper's base workload, a scaled variant, or a
// seeded random instance), optimizes it with LRGP (optionally two-stage,
// optionally against a simulated-annealing baseline), and reports the
// allocation with utilization and fairness summaries.  The full
// iteration trace can be exported as CSV for plotting.
//
// Examples:
//   lrgp_cli                                     # base workload, adaptive gamma
//   lrgp_cli --shape p075 --iterations 300
//   lrgp_cli --flow-replicas 2 --cnode-replicas 4 --sa --sa-steps 200000
//   lrgp_cli --workload random --seed 7 --two-stage
//   lrgp_cli --gamma 0.01 --csv trace.csv
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "baseline/annealing.hpp"
#include "dataplane/dataplane.hpp"
#include "fastpath/fastpath.hpp"
#include "io/problem_json.hpp"
#include "lrgp/enactment.hpp"
#include "lrgp/optimizer.hpp"
#include "lrgp/parallel_engine.hpp"
#include "lrgp/trace_export.hpp"
#include "lrgp/two_stage.hpp"
#include "model/analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "runtime/runtime.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "shard/sharded_engine.hpp"
#include "simd/batch_engine.hpp"
#include "simd/vector_engine.hpp"
#include "workload/random_workload.hpp"
#include "workload/workloads.hpp"

using namespace lrgp;

namespace {

struct CliOptions {
    std::string workload = "base";  // base | random
    std::string engine = "serial";  // serial | compiled | incremental | sharded |
                                    // vector | vector_exact | async
    int batch_instances = 0;        // --batch-instances N: lockstep multi-instance run
    int threads = 1;                // compiled/incremental worker threads
    int shards = 4;                 // --engine sharded shard count
    int agents = 4;                 // --engine async agent-thread count
    double seconds = 12.0;          // --engine async virtual run horizon
    workload::UtilityShape shape = workload::UtilityShape::kLog;
    int flow_replicas = 1;
    int cnode_replicas = 1;
    std::uint32_t seed = 1;
    std::optional<double> fixed_gamma;  // nullopt = adaptive
    int iterations = 250;
    bool two_stage = false;
    bool run_sa = false;
    std::uint64_t sa_steps = 100'000;
    std::string scenario;          // --scenario NAME: replay a catalog cell
    bool list_scenarios = false;   // --list-scenarios: print the catalog and exit
    std::string csv_path;
    std::string save_path;   // write the problem as JSON and continue
    std::string load_path;   // read the problem from JSON instead of generating
    std::string obs_prefix;  // write PREFIX.trace.json + PREFIX.prom
    std::uint64_t obs_sample = 1;
    bool verbose_classes = false;
    bool enact = false;            // replay the trace through the dataplane
    double enact_deadband = 0.05;  // EnactmentOptions::rate_deadband
    double enact_interval = 5.0;   // EnactmentOptions::min_interval (seconds)
    std::string dataplane = "sim";  // --enact plant: sim (event) or fast (batched)
    int dataplane_workers = 1;      // fastpath worker threads (0 = hw concurrency)
};

void printUsage() {
    std::puts(
        "usage: lrgp_cli [options]\n"
        "  --workload base|random     workload family (default base)\n"
        "  --scenario NAME            replay a pinned scenario-catalog cell through\n"
        "                             the chosen --engine (dynamic-op schedule,\n"
        "                             best-known comparison; --enact adds the\n"
        "                             packet-level dataplane closed loop)\n"
        "  --list-scenarios           print the scenario catalog and exit\n"
        "  --engine serial|compiled|incremental|sharded|vector|vector_exact|async\n"
        "                             iteration driver (default serial); the first\n"
        "                             three produce bitwise-identical trajectories,\n"
        "                             sharded matches them exactly at --shards 1, and\n"
        "                             async runs the live shard-agent runtime in\n"
        "                             deterministic virtual time (--agents/--seconds)\n"
        "  --threads N                engine worker threads\n"
        "  --batch-instances N        run N (2..8) capacity-scaled copies of the\n"
        "                             workload in SIMD lockstep (one instance per\n"
        "                             vector lane) and print a per-instance table\n"
        "                             (default 1; 0 = hardware concurrency)\n"
        "  --shards K                 sharded engine shard count (default 4)\n"
        "  --agents K                 async runtime agent threads (default 4)\n"
        "  --seconds X                async runtime horizon in virtual seconds\n"
        "                             (default 12)\n"
        "  --shape log|p025|p05|p075  class utility shape (default log)\n"
        "  --flow-replicas N          scale: replicate the 6-flow set (default 1)\n"
        "  --cnode-replicas N         scale: replicate consumer nodes (default 1)\n"
        "  --seed N                   seed for --workload random (default 1)\n"
        "  --gamma X                  fixed node-price stepsize (default: adaptive)\n"
        "  --iterations N             LRGP iterations (default 250)\n"
        "  --two-stage                run the Section 2.4 prune-and-resolve pass\n"
        "  --sa                       also run the simulated-annealing baseline\n"
        "  --sa-steps N               SA steps per start temperature (default 1e5)\n"
        "  --csv FILE                 export the iteration trace as CSV\n"
        "  --obs-out PREFIX           write PREFIX.trace.json (chrome://tracing)\n"
        "                             and PREFIX.prom (Prometheus text)\n"
        "  --obs-sample N             trace every Nth iteration (default 1)\n"
        "  --enact                    replay the iteration trace through the\n"
        "                             message-level dataplane and report the\n"
        "                             planned vs achieved utility\n"
        "  --enact-deadband X         relative rate change that forces an\n"
        "                             enactment (default 0.05; implies --enact)\n"
        "  --enact-interval X         periodic enactment refresh in seconds of\n"
        "                             system time (default 5; implies --enact)\n"
        "  --dataplane sim|fast       plant for --enact: the event-driven\n"
        "                             simulator (default) or the batched\n"
        "                             run-to-completion fastpath (implies --enact)\n"
        "  --dataplane-workers N      fastpath worker threads (default 1;\n"
        "                             0 = hardware concurrency); the result is\n"
        "                             byte-identical for any N\n"
        "  --save FILE                write the workload as JSON, then optimize it\n"
        "  --load FILE                optimize a JSON workload (overrides --workload)\n"
        "  --classes                  print the per-class service table\n"
        "  --help                     this message");
}

std::optional<CliOptions> parseArgs(int argc, char** argv) {
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            printUsage();
            return std::nullopt;
        } else if (arg == "--workload") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.workload = v;
            if (options.workload != "base" && options.workload != "random") {
                std::fprintf(stderr, "error: unknown workload '%s'\n", v);
                return std::nullopt;
            }
        } else if (arg == "--scenario") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.scenario = v;
        } else if (arg == "--list-scenarios") {
            options.list_scenarios = true;
        } else if (arg == "--engine") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.engine = v;
            if (options.engine != "serial" && options.engine != "compiled" &&
                options.engine != "incremental" && options.engine != "sharded" &&
                options.engine != "vector" && options.engine != "vector_exact" &&
                options.engine != "async") {
                std::fprintf(stderr, "error: unknown engine '%s'\n", v);
                return std::nullopt;
            }
        } else if (arg == "--batch-instances") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.batch_instances = std::atoi(v);
            if (options.batch_instances < 2 ||
                options.batch_instances > static_cast<int>(simd::kWidth)) {
                std::fprintf(stderr, "error: --batch-instances wants 2..%zu\n", simd::kWidth);
                return std::nullopt;
            }
        } else if (arg == "--shards") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.shards = std::atoi(v);
            if (options.shards < 1) {
                std::fprintf(stderr, "error: --shards must be >= 1\n");
                return std::nullopt;
            }
        } else if (arg == "--agents") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.agents = std::atoi(v);
            if (options.agents < 1) {
                std::fprintf(stderr, "error: --agents must be >= 1\n");
                return std::nullopt;
            }
        } else if (arg == "--seconds") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.seconds = std::atof(v);
            if (!(options.seconds > 0.0)) {
                std::fprintf(stderr, "error: --seconds must be > 0\n");
                return std::nullopt;
            }
        } else if (arg == "--threads") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.threads = std::atoi(v);
            if (options.threads < 0) {
                std::fprintf(stderr, "error: --threads must be >= 0\n");
                return std::nullopt;
            }
        } else if (arg == "--shape") {
            const char* v = next();
            if (!v) return std::nullopt;
            if (std::strcmp(v, "log") == 0) options.shape = workload::UtilityShape::kLog;
            else if (std::strcmp(v, "p025") == 0) options.shape = workload::UtilityShape::kPow025;
            else if (std::strcmp(v, "p05") == 0) options.shape = workload::UtilityShape::kPow05;
            else if (std::strcmp(v, "p075") == 0) options.shape = workload::UtilityShape::kPow075;
            else {
                std::fprintf(stderr, "error: unknown shape '%s'\n", v);
                return std::nullopt;
            }
        } else if (arg == "--flow-replicas") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.flow_replicas = std::atoi(v);
        } else if (arg == "--cnode-replicas") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.cnode_replicas = std::atoi(v);
        } else if (arg == "--seed") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.seed = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--gamma") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.fixed_gamma = std::atof(v);
        } else if (arg == "--iterations") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.iterations = std::atoi(v);
        } else if (arg == "--two-stage") {
            options.two_stage = true;
        } else if (arg == "--sa") {
            options.run_sa = true;
        } else if (arg == "--sa-steps") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.sa_steps = std::strtoull(v, nullptr, 10);
        } else if (arg == "--csv") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.csv_path = v;
        } else if (arg == "--obs-out") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.obs_prefix = v;
        } else if (arg == "--obs-sample") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.obs_sample = std::strtoull(v, nullptr, 10);
        } else if (arg == "--save") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.save_path = v;
        } else if (arg == "--load") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.load_path = v;
        } else if (arg == "--enact") {
            options.enact = true;
        } else if (arg == "--enact-deadband") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.enact_deadband = std::atof(v);
            options.enact = true;
        } else if (arg == "--dataplane") {
            const char* v = next();
            if (v == nullptr) return std::nullopt;
            options.dataplane = v;
            options.enact = true;
        } else if (arg == "--dataplane-workers") {
            const char* v = next();
            if (v == nullptr) return std::nullopt;
            options.dataplane_workers = std::atoi(v);
            options.enact = true;
        } else if (arg == "--enact-interval") {
            const char* v = next();
            if (!v) return std::nullopt;
            options.enact_interval = std::atof(v);
            options.enact = true;
        } else if (arg == "--classes") {
            options.verbose_classes = true;
        } else {
            std::fprintf(stderr, "error: unknown option '%s' (try --help)\n", arg.c_str());
            return std::nullopt;
        }
    }
    if (options.iterations <= 0 || options.flow_replicas < 1 || options.cnode_replicas < 1) {
        std::fprintf(stderr, "error: non-positive numeric option\n");
        return std::nullopt;
    }
    if (options.dataplane != "sim" && options.dataplane != "fast") {
        std::fprintf(stderr, "error: --dataplane must be sim or fast\n");
        return std::nullopt;
    }
    if (options.dataplane_workers < 0) {
        std::fprintf(stderr, "error: --dataplane-workers must be >= 0\n");
        return std::nullopt;
    }
    if (options.enact && (options.enact_deadband < 0.0 || options.enact_interval <= 0.0)) {
        std::fprintf(stderr, "error: --enact-deadband must be >= 0, --enact-interval > 0\n");
        return std::nullopt;
    }
    return options;
}

model::ProblemSpec buildWorkload(const CliOptions& options) {
    if (options.workload == "random") {
        workload::RandomWorkloadOptions random_options;
        random_options.seed = options.seed;
        random_options.shape = options.shape;
        return workload::make_random_workload(random_options);
    }
    workload::WorkloadOptions scaled;
    scaled.shape = options.shape;
    scaled.flow_replicas = options.flow_replicas;
    scaled.cnode_replicas = options.cnode_replicas;
    return workload::make_scaled_workload(scaled);
}

}  // namespace

int main(int argc, char** argv) {
    const auto parsed = parseArgs(argc, argv);
    if (!parsed) return argc > 1 && std::string(argv[1]) == "--help" ? 0 : 2;
    const CliOptions& cli = *parsed;

    if (cli.list_scenarios) {
        std::printf("%-44s %-12s %-12s %-12s %5s\n", "cell", "topology", "traffic",
                    "utility", "seed");
        for (const scenario::ScenarioOptions& cell : scenario::scenario_catalog())
            std::printf("%-44s %-12s %-12s %-12s %5llu\n", cell.name.c_str(),
                        cell.topology.c_str(), cell.traffic.c_str(), cell.utility.c_str(),
                        static_cast<unsigned long long>(cell.seed));
        return 0;
    }

    if (!cli.scenario.empty()) {
        const scenario::ScenarioSpec sc = [&] {
            try {
                return scenario::build_scenario(scenario::find_scenario(cli.scenario));
            } catch (const std::invalid_argument& e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                std::exit(2);
            }
        }();
        std::printf("scenario %s: %s x %s x %s%s, seed %llu\n", sc.options.name.c_str(),
                    sc.options.topology.c_str(), sc.options.traffic.c_str(),
                    sc.options.utility.c_str(), sc.options.overdrive ? " (overdrive)" : "",
                    static_cast<unsigned long long>(sc.options.seed));
        std::printf("problem: %zu flows, %zu classes, %zu nodes, %zu links; "
                    "%zu scheduled ops over %.1fs\n",
                    sc.problem.flowCount(), sc.problem.classCount(), sc.problem.nodeCount(),
                    sc.problem.linkCount(), sc.schedule.size(), sc.options.duration);

        if (!cli.save_path.empty()) {
            std::ofstream out(cli.save_path);
            if (!out) {
                std::fprintf(stderr, "error: cannot write %s\n", cli.save_path.c_str());
                return 1;
            }
            out << io::problem_to_json_string(sc.problem);
            std::printf("scenario problem written to %s\n", cli.save_path.c_str());
        }

        scenario::RunnerOptions ropts;
        ropts.engine = cli.engine;
        ropts.shards = cli.engine == "async" ? cli.agents : cli.shards;
        ropts.threads = cli.threads;
        ropts.with_dataplane = cli.enact;
        core::LrgpOptions lrgp_options;
        if (cli.fixed_gamma)
            lrgp_options.gamma = core::FixedGamma{*cli.fixed_gamma, *cli.fixed_gamma};
        ropts.lrgp = lrgp_options;

        const scenario::ScenarioRunReport report = [&] {
            try {
                return scenario::run_scenario(sc, ropts);
            } catch (const std::invalid_argument& e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                std::exit(2);
            }
        }();
        std::printf("replay (%s): %zu ops applied, %zu utility samples\n",
                    report.engine.c_str(), report.ops_applied, report.utility_trace.size());
        std::printf("utility: final %.1f vs best-known %.1f (%.2f%%)%s\n",
                    report.final_utility, report.best_known_utility,
                    100.0 * report.utility_vs_best, report.converged ? ", converged" : "");
        if (report.has_recovery)
            std::printf("recovery: dip %.1f U*s, reconverged %s (ttr %.2fs)\n",
                        report.recovery.dip_integral,
                        report.recovery.reconverged ? "yes" : "NO",
                        report.recovery.reconverged ? report.recovery.time_to_reconverge : -1.0);
        if (report.has_dataplane)
            std::printf("dataplane: achieved/planned %.3f (%.1f / %.1f), drop rate %.4f\n",
                        report.achieved_vs_planned, report.achieved_mean, report.planned_mean,
                        report.drop_rate);

        if (!cli.obs_prefix.empty()) {
            obs::Registry registry;
            scenario::export_observability(sc, report, registry);
            const std::string prom_path = cli.obs_prefix + ".prom";
            std::ofstream prom_out(prom_path);
            if (!prom_out) {
                std::fprintf(stderr, "error: cannot write %s\n", prom_path.c_str());
                return 1;
            }
            registry.writePrometheus(prom_out);
            std::printf("obs: %s (%zu series)\n", prom_path.c_str(), registry.size());
        }
        return 0;
    }

    model::ProblemSpec spec = [&] {
        if (cli.load_path.empty()) return buildWorkload(cli);
        std::ifstream in(cli.load_path);
        if (!in) throw std::runtime_error("cannot read " + cli.load_path);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        return io::problem_from_json_string(buffer.str());
    }();
    std::printf("workload: %zu flows, %zu classes, %zu nodes, %zu links, shape %s\n",
                spec.flowCount(), spec.classCount(), spec.nodeCount(), spec.linkCount(),
                workload::shape_name(cli.shape).c_str());

    if (!cli.save_path.empty()) {
        std::ofstream out(cli.save_path);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n", cli.save_path.c_str());
            return 1;
        }
        out << io::problem_to_json_string(spec);
        std::printf("workload written to %s\n", cli.save_path.c_str());
    }

    core::LrgpOptions lrgp_options;
    if (cli.fixed_gamma) lrgp_options.gamma = core::FixedGamma{*cli.fixed_gamma, *cli.fixed_gamma};

    // The async runtime is time-based, not iteration-based, so it gets
    // its own driver loop instead of the core::Engine path below.
    if (cli.engine == "async") {
        runtime::RuntimeOptions rt_options;
        rt_options.agents = cli.agents;
        rt_options.seed = cli.seed;
        runtime::AsyncShardRuntime rt(spec, lrgp_options, rt_options);

        std::unique_ptr<obs::Registry> registry;
        if (!cli.obs_prefix.empty()) {
            if (!obs::kEnabled) {
                std::fprintf(stderr,
                             "error: --obs-out requires a build with -DLRGP_OBS=ON\n");
                return 2;
            }
            registry = std::make_unique<obs::Registry>();
            rt.attachObservability(registry.get());
        }

        std::printf("engine: async, %d agent thread%s, %.1f virtual seconds "
                    "(deterministic lockstep)\n",
                    rt.agentCount(), rt.agentCount() == 1 ? "" : "s", cli.seconds);
        rt.runFor(cli.seconds);

        std::printf("async: utility %.0f after %.1f virtual seconds\n", rt.currentUtility(),
                    cli.seconds);
        for (const runtime::AgentSummary& s : rt.summaries()) {
            std::printf("agent %d: %zu flows, %zu classes, %zu nodes, utility %.0f; "
                        "%llu digests out / %llu in (%llu stale), %llu suspicions, "
                        "%llu recoveries, %llu budget updates%s\n",
                        s.agent, s.flows, s.classes, s.nodes, s.utility,
                        static_cast<unsigned long long>(s.counters.digests_sent),
                        static_cast<unsigned long long>(s.counters.digests_received),
                        static_cast<unsigned long long>(s.counters.digests_rejected_stale),
                        static_cast<unsigned long long>(s.counters.suspicions),
                        static_cast<unsigned long long>(s.counters.recoveries),
                        static_cast<unsigned long long>(s.counters.budget_updates),
                        s.down ? " [down]" : "");
        }
        const runtime::RuntimeStats stats = rt.stats();
        std::printf("transport: %llu messages sent, %llu dropped by faults, "
                    "%llu by backpressure, %llu retries\n",
                    static_cast<unsigned long long>(stats.messages_sent),
                    static_cast<unsigned long long>(stats.dropped_fault),
                    static_cast<unsigned long long>(stats.dropped_backpressure),
                    static_cast<unsigned long long>(stats.totals.retries));
        std::printf("resilience: %llu crashes, %llu restarts, %llu snapshot restores, "
                    "%llu degradations\n",
                    static_cast<unsigned long long>(stats.totals.crashes),
                    static_cast<unsigned long long>(stats.totals.restarts),
                    static_cast<unsigned long long>(stats.totals.snapshot_restores),
                    static_cast<unsigned long long>(stats.totals.degradations));

        if (registry) {
            // No iteration trace here — the runtime reports through its
            // lrgp_runtime_* metric series only.
            const std::string prom_path = cli.obs_prefix + ".prom";
            std::ofstream prom_out(prom_path);
            if (!prom_out) {
                std::fprintf(stderr, "error: cannot write %s\n", prom_path.c_str());
                return 1;
            }
            registry->writePrometheus(prom_out);
            std::printf("obs: %s (%zu series)\n", prom_path.c_str(), registry->size());
        }
        return 0;
    }

    // The serial/compiled/incremental drivers follow the same bitwise
    // trajectory; --engine only chooses the hot path (object graph, flat
    // arrays, or flat arrays with dirty-set skipping).  "sharded" layers
    // the hierarchical control plane on K incremental subengines and
    // matches the others exactly at --shards 1.
    // --batch-instances: N capacity-scaled copies of the workload advance
    // in SIMD lockstep, one instance per vector lane; each lane's
    // trajectory is bitwise the serial optimizer's on that instance.
    if (cli.batch_instances >= 2) {
        const std::size_t n = static_cast<std::size_t>(cli.batch_instances);
        std::vector<model::ProblemSpec> specs;
        std::vector<double> scales;
        specs.reserve(n);
        for (std::size_t k = 0; k < n; ++k) {
            const double scale = 0.7 + 0.6 * static_cast<double>(k) /
                                           static_cast<double>(n > 1 ? n - 1 : 1);
            scales.push_back(scale);
            model::ProblemSpec copy = spec;
            for (const model::NodeSpec& node : spec.nodes())
                copy.setNodeCapacity(node.id, node.capacity * scale);
            specs.push_back(std::move(copy));
        }
        try {
            simd::BatchedVectorEngine batch(std::move(specs), lrgp_options);
            batch.run(cli.iterations);
            std::printf("engine: batched vector (%s), %d instances in lockstep\n",
                        batch.variant(), cli.batch_instances);
            std::printf("%-9s %-10s %-18s %s\n", "instance", "cap-scale", "utility",
                        "converged");
            for (std::size_t k = 0; k < n; ++k)
                std::printf("%-9zu %-10.2f %-18.6f %s\n", k, scales[k], batch.utility(k),
                            batch.converged(k) ? "yes" : "no");
        } catch (const std::invalid_argument& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
        return 0;
    }

    std::unique_ptr<core::Engine> owner;
    shard::ShardedLrgpEngine* sharded = nullptr;
    core::ParallelLrgpEngine* parallel = nullptr;
    if (cli.engine == "serial") {
        owner = std::make_unique<core::LrgpOptimizer>(spec, lrgp_options);
    } else if (cli.engine == "vector" || cli.engine == "vector_exact") {
        simd::VectorEngineConfig config;
        config.mode = cli.engine == "vector" ? simd::VectorMode::kTolerance
                                             : simd::VectorMode::kExact;
        auto built = std::make_unique<simd::VectorLrgpEngine>(spec, lrgp_options, config);
        std::printf("engine: %s (%s kernels, detected %s)\n", built->name(), built->variant(),
                    simd::detected_isa());
        owner = std::move(built);
    } else if (cli.engine == "sharded") {
        auto built = std::make_unique<shard::ShardedLrgpEngine>(
            spec, lrgp_options,
            shard::ShardedConfig{.shards = cli.shards, .threads = cli.threads});
        sharded = built.get();
        owner = std::move(built);
        std::printf("engine: sharded, %d shard%s; boundary %zu nodes / %zu links "
                    "(%.1f%% of nodes)\n",
                    sharded->shardCount(), sharded->shardCount() == 1 ? "" : "s",
                    sharded->boundaryNodeCount(), sharded->boundaryLinkCount(),
                    100.0 * sharded->boundaryNodeFraction());
    } else {
        auto built = std::make_unique<core::ParallelLrgpEngine>(
            spec, lrgp_options,
            core::EngineConfig{.threads = cli.threads,
                               .incremental = cli.engine == "incremental"});
        parallel = built.get();
        owner = std::move(built);
        std::printf("engine: %s, %d thread%s\n", cli.engine.c_str(), parallel->threadCount(),
                    parallel->threadCount() == 1 ? "" : "s");
    }
    core::Engine& active = *owner;
    const auto current_utility = [&] { return active.currentUtility(); };

    std::unique_ptr<obs::Registry> obs_registry;
    std::unique_ptr<obs::IterationTracer> obs_tracer;
    if (!cli.obs_prefix.empty()) {
        if (!obs::kEnabled) {
            std::fprintf(stderr,
                         "error: --obs-out requires a build with -DLRGP_OBS=ON\n");
            return 2;
        }
        obs_registry = std::make_unique<obs::Registry>();
        obs_tracer = std::make_unique<obs::IterationTracer>(
            obs::TracerOptions{.sample_every = std::max<std::uint64_t>(1, cli.obs_sample)});
        active.attachObservability(obs_registry.get(), obs_tracer.get());
    }

    std::vector<core::IterationRecord> records;
    records.reserve(static_cast<std::size_t>(cli.iterations));
    for (int i = 0; i < cli.iterations; ++i) records.push_back(active.step());

    const std::size_t converged = active.convergence().convergedAt();
    std::printf("LRGP: utility %.0f after %d iterations (converged at %zu)\n",
                current_utility(), cli.iterations, converged);

    if (parallel && parallel->incremental()) {
        const core::IncrementalStats inc = parallel->incrementalStats();
        std::printf("incremental: %llu rate solves run / %llu skipped, "
                    "%llu node admissions run / %llu cached (%llu rank reuses), "
                    "%llu link sums, %llu utility-sum reuses\n",
                    static_cast<unsigned long long>(inc.dirty_flows),
                    static_cast<unsigned long long>(inc.skipped_solves),
                    static_cast<unsigned long long>(inc.dirty_nodes),
                    static_cast<unsigned long long>(inc.node_cache_hits),
                    static_cast<unsigned long long>(inc.rank_cache_hits),
                    static_cast<unsigned long long>(inc.dirty_links),
                    static_cast<unsigned long long>(inc.utility_cache_hits));
    }

    if (sharded) {
        for (const auto& s : sharded->summaries()) {
            std::printf("shard %d: %zu flows, %zu classes, %zu nodes (%zu boundary), "
                        "%zu links (%zu boundary), %d iterations%s\n",
                        s.shard, s.flows, s.classes, s.nodes, s.boundary_nodes, s.links,
                        s.boundary_links, s.iterations, s.converged ? ", converged" : "");
        }
        const shard::ReconcileStats& rs = sharded->reconcileStats();
        std::printf("reconcile: %llu passes, %llu price exchanges, %llu budget updates, "
                    "%llu shard wakeups, %.1f capacity units moved\n",
                    static_cast<unsigned long long>(rs.passes),
                    static_cast<unsigned long long>(rs.price_exchanges),
                    static_cast<unsigned long long>(rs.budget_updates),
                    static_cast<unsigned long long>(rs.shard_wakeups), rs.budget_moved);
    }

    if (cli.two_stage) {
        core::TwoStageOptions ts;
        ts.lrgp = lrgp_options;
        ts.max_iterations = cli.iterations;
        const auto result = core::two_stage_optimize(spec, ts);
        std::printf(
            "two-stage: stage1 %.0f -> stage2 %.0f (%d routes pruned, %d classes off)\n",
            result.stage_one_utility, result.stage_two_utility, result.prune.routes_removed,
            result.prune.classes_deactivated);
    }

    if (cli.run_sa) {
        const auto sa =
            baseline::best_of_annealing(spec, {5.0, 10.0, 50.0, 100.0}, cli.sa_steps, cli.seed);
        std::printf("SA (best of 4 temps, %llu steps each): utility %.0f in %.1fs\n",
                    static_cast<unsigned long long>(cli.sa_steps), sa.best_utility,
                    sa.wall_seconds);
        std::printf("LRGP vs SA: %+.2f%%\n",
                    100.0 * (current_utility() - sa.best_utility) / sa.best_utility);
    }

    const auto summary = model::summarize(spec, active.allocation());
    std::printf("classes: %d fully admitted, %d partial, %d denied; Jain fairness %.3f\n",
                summary.classes_fully_admitted, summary.classes_partially_admitted,
                summary.classes_denied, summary.jain_fairness);
    double hottest = 0.0;
    for (double u : summary.node_utilization) hottest = std::max(hottest, u);
    std::printf("hottest node at %.1f%% utilization\n", 100.0 * hottest);

    if (cli.enact) {
        // Replay the iteration trace as a control loop: each iteration is
        // one 50 ms control tick offered to the hysteresis policy; enacted
        // allocations drive simulated traffic, and the final 5 seconds of
        // settled traffic measure how much of the planned utility the
        // dataplane actually delivers.  --dataplane picks the plant: the
        // event-driven simulator or the batched fastpath (identical cost
        // model, so the report means the same thing either way).
        constexpr double kTick = 0.05;
        const auto replay = [&](auto& plant, const char* label) {
            core::EnactmentOptions eopts;
            eopts.rate_deadband = cli.enact_deadband;
            // A converged LRGP trace still jitters admissions by a
            // consumer or two; don't reconfigure the dataplane for that.
            eopts.population_deadband = 2;
            eopts.min_interval = cli.enact_interval;
            core::EnactmentController enactor(
                eopts, [&](const model::Allocation& allocation) { plant.enact(allocation); });
            const auto begin = std::chrono::steady_clock::now();
            for (const auto& record : records) {
                const double t = kTick * record.iteration;
                plant.notePlanned(record.allocation);
                enactor.offer(t, record.allocation);
                plant.runUntil(t);
            }
            const double settle = 10.0;
            plant.runUntil(kTick * static_cast<double>(records.size()) + settle);
            const double wall =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
                    .count();
            const auto stats = plant.collectStats();
            const std::size_t window =
                std::min<std::size_t>(10, plant.achievedUtilityTrace().size());
            const double achieved = plant.achievedUtilityTrace().trailingMean(window);
            const double planned = plant.plannedUtilityTrace().trailingMean(window);
            std::printf("enactment: %zu of %zu offers enacted (%zu suppressed by deadband"
                        " %.2f / interval %.1fs)\n",
                        enactor.enactments(), enactor.offers(), enactor.suppressions(),
                        cli.enact_deadband, cli.enact_interval);
            std::printf("%s: planned %.0f, achieved %.0f (gap %+.2f%%), drop rate %.4f, "
                        "%llu messages delivered\n",
                        label, planned, achieved,
                        planned > 0.0 ? 100.0 * (planned - achieved) / planned : 0.0,
                        stats.drop_rate,
                        static_cast<unsigned long long>(stats.total_delivered));
            return wall;
        };
        if (cli.dataplane == "fast") {
            fastpath::FastpathOptions fpopts;
            fpopts.workers = cli.dataplane_workers;
            fastpath::Fastpath fp(spec, fpopts);
            const double wall = replay(fp, "fastpath");
            // Per-worker throughput: how the message work (emission +
            // gate servings) split across the pool.  The split depends
            // on the partition; the traffic does not.
            const auto& per_worker = fp.workerMessages();
            std::uint64_t total = 0;
            for (const std::uint64_t n : per_worker) total += n;
            std::printf("fastpath: %d worker(s), %.0f msgs/sec wall (%llu messages, "
                        "%llu quanta, %llu batches)\n",
                        fp.workerCount(), wall > 0.0 ? static_cast<double>(total) / wall : 0.0,
                        static_cast<unsigned long long>(total),
                        static_cast<unsigned long long>(fp.quantaProcessed()),
                        static_cast<unsigned long long>(fp.batchesProcessed()));
            for (std::size_t w = 0; w < per_worker.size(); ++w) {
                std::printf("  worker %zu: %llu messages (%.1f%%)\n", w,
                            static_cast<unsigned long long>(per_worker[w]),
                            total > 0 ? 100.0 * static_cast<double>(per_worker[w]) /
                                            static_cast<double>(total)
                                      : 0.0);
            }
        } else {
            dataplane::Dataplane dp(spec, dataplane::DataplaneOptions{});
            replay(dp, "dataplane");
        }
    }

    if (cli.verbose_classes) {
        std::printf("\n%-12s %10s %10s %12s %14s\n", "class", "admitted", "max", "ratio",
                    "agg. utility");
        for (const auto& s : summary.classes) {
            std::printf("%-12s %10d %10d %11.1f%% %14.1f\n",
                        spec.consumerClass(s.cls).name.c_str(), s.admitted, s.max_consumers,
                        100.0 * s.admission_ratio, s.aggregate_utility);
        }
    }

    if (!cli.csv_path.empty()) {
        std::ofstream out(cli.csv_path);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n", cli.csv_path.c_str());
            return 1;
        }
        core::export_trace_csv(out, spec, records);
        std::printf("trace written to %s (%zu rows)\n", cli.csv_path.c_str(), records.size());
    }

    if (obs_registry) {
        const std::string trace_path = cli.obs_prefix + ".trace.json";
        const std::string prom_path = cli.obs_prefix + ".prom";
        std::ofstream trace_out(trace_path);
        std::ofstream prom_out(prom_path);
        if (!trace_out || !prom_out) {
            std::fprintf(stderr, "error: cannot write %s / %s\n", trace_path.c_str(),
                         prom_path.c_str());
            return 1;
        }
        obs_tracer->writeChromeTrace(trace_out);
        obs_registry->writePrometheus(prom_out);
        std::printf("obs: %s (%zu events%s), %s (%zu series)\n", trace_path.c_str(),
                    obs_tracer->events().size(),
                    obs_tracer->droppedEvents() ? ", some dropped" : "", prom_path.c_str(),
                    obs_registry->size());
    }
    return 0;
}
