// Chaos-hardening walkthrough: crash a consumer node mid-run and watch
// the hardened asynchronous protocol detect the failure, degrade
// gracefully, and reconverge once the node comes back.
//
//   ./chaos_recovery
//
// Prints a coarse utility timeline around the crash window plus the
// recovery report (time-to-reconverge, utility-dip integral).
#include <cstdio>

#include "dist/dist_lrgp.hpp"
#include "metrics/recovery.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace lrgp;

    constexpr sim::SimTime kCrashAt = 10.0;
    constexpr sim::SimTime kRestartAt = 12.0;
    constexpr sim::SimTime kHorizon = 24.0;
    constexpr sim::SimTime kSamplePeriod = 0.05;

    const model::ProblemSpec spec = workload::make_base_workload();
    const model::NodeId victim = spec.nodes().back().id;

    dist::DistOptions options;
    options.synchronous = false;
    options.sample_period = kSamplePeriod;
    options.robustness = dist::RobustnessOptions::standard();
    options.fault_plan.crashes.push_back(faults::CrashEvent{
        {faults::AgentKind::kNode, static_cast<std::uint32_t>(victim.index())},
        kCrashAt, kRestartAt});

    dist::DistLrgp protocol(spec, options);
    protocol.runFor(kHorizon);

    const auto& trace = protocol.utilityTrace();
    std::printf("utility timeline (every 1s; crash at %.0fs, restart at %.0fs):\n",
                kCrashAt, kRestartAt);
    for (int second = 1; second <= static_cast<int>(kHorizon); ++second) {
        const auto i = static_cast<std::size_t>(second / kSamplePeriod) - 1;
        if (i >= trace.size()) break;  // the last sample may fall just past the horizon
        const char* marker = "";
        if (second == static_cast<int>(kCrashAt)) marker = "   <-- node crashes (state lost)";
        if (second == static_cast<int>(kRestartAt)) marker = "   <-- node restarts";
        std::printf("  t=%5ds  U=%10.1f%s\n", second, trace[i], marker);
    }

    const std::size_t fault_index =
        static_cast<std::size_t>(kCrashAt / kSamplePeriod) - 1;
    const metrics::RecoveryReport report =
        metrics::analyze_recovery(trace, fault_index, kSamplePeriod);

    const faults::FaultStats stats = protocol.faultStats();
    std::printf("\ncrashes=%zu restarts=%zu suspicions=%zu reannouncements=%zu\n",
                stats.crashes, stats.restarts, protocol.suspicionEvents(),
                protocol.reannouncementsSent());
    std::printf("pre-fault utility  %.1f\n", report.baseline_utility);
    std::printf("deepest dip        %.1f (max dip %.1f)\n", report.min_utility, report.max_dip);
    std::printf("dip integral       %.1f utility-seconds\n", report.dip_integral);
    if (report.reconverged)
        std::printf("reconverged within 1%% after %.2fs\n", report.time_to_reconverge);
    else
        std::printf("did NOT reconverge within the horizon\n");
    return report.reconverged ? 0 : 1;
}
