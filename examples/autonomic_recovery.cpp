// Autonomic self-optimization on a simulated overlay (Sections 1, 3.5).
//
// Runs LRGP as a *distributed message-passing protocol* — one agent per
// flow source and per consumer node, exchanging rate and price/allocation
// messages over links with 5-15 ms latency — in the asynchronous mode the
// paper sketches in Section 3.5 (agents act on local timers and average
// the last few prices from each resource).
//
// Mid-run, the highest-value flow's source leaves the system.  No
// coordinator is informed; the remaining agents observe the freed
// capacity through prices and re-admit consumers of the other flows.
#include <cstdio>

#include "dist/dist_lrgp.hpp"
#include "workload/workloads.hpp"

using namespace lrgp;

int main() {
    const auto spec = workload::make_base_workload(workload::UtilityShape::kLog);

    dist::DistOptions options;
    options.synchronous = false;   // Section 3.5 asynchronous formulation
    options.latency_min = 0.005;   // 5-15 ms message latency
    options.latency_max = 0.015;
    options.agent_period = 0.05;   // agents act every 50 ms
    options.price_window = 3;      // average the last 3 prices per resource
    options.sample_period = 0.25;  // utility sampled 4x per second

    dist::DistLrgp overlay(spec, options);

    std::printf("Asynchronous distributed LRGP on the base workload\n");
    std::printf("%8s %16s %12s\n", "time(s)", "utility", "messages");

    auto report = [&] {
        std::printf("%8.2f %16.1f %12llu\n", overlay.now(), overlay.currentUtility(),
                    static_cast<unsigned long long>(overlay.messagesSent()));
    };

    for (int step = 0; step < 8; ++step) {
        overlay.runFor(1.0);
        report();
    }

    const auto f5 = workload::find_flow(spec, "f0_5");
    std::printf("\n>>> flow f0_5 (rank-100 classes) leaves the system at t=%.2fs <<<\n\n",
                overlay.now());
    overlay.removeFlowAt(f5, overlay.now() + 0.01);

    for (int step = 0; step < 8; ++step) {
        overlay.runFor(1.0);
        report();
    }

    const auto snapshot = overlay.snapshot();
    const auto feasibility = model::check_feasibility(overlay.problem(), snapshot);
    std::printf("\nfinal allocation feasible: %s\n", feasibility.feasible() ? "yes" : "no");
    std::printf("the system re-converged without any central coordination.\n");
    return feasibility.feasible() ? 0 : 1;
}
