// run_experiment — execute a JSON experiment description (see
// src/exp/experiment.hpp for the schema) and print the result as JSON.
//
//   run_experiment study.json          # full result with trace
//   run_experiment --no-trace study.json
//   run_experiment --demo              # runs a built-in recovery study
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "exp/experiment.hpp"

namespace {

constexpr const char* kDemo = R"({
    "name": "demo: Figure 3 recovery as a scripted experiment",
    "workload": {"kind": "base", "shape": "log"},
    "optimizer": {"kind": "lrgp", "gamma": "adaptive", "iterations": 250},
    "events": [{"at": 150, "action": "remove_flow", "flow": "f0_5"}]
})";

}  // namespace

int main(int argc, char** argv) {
    bool include_trace = true;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-trace") == 0) include_trace = false;
        else if (std::strcmp(argv[i], "--demo") == 0) path = "-";
        else path = argv[i];
    }
    if (path.empty()) {
        std::fprintf(stderr, "usage: run_experiment [--no-trace] <config.json> | --demo\n");
        return 2;
    }

    std::string config_text;
    if (path == "-") {
        config_text = kDemo;
    } else {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        config_text = buffer.str();
    }

    try {
        const auto result = lrgp::exp::run_experiment_string(config_text);
        std::cout << lrgp::exp::result_to_json(result, include_trace).dump(true) << '\n';
    } catch (const std::exception& error) {
        std::fprintf(stderr, "experiment failed: %s\n", error.what());
        return 1;
    }
    return 0;
}
