// Capacity planning: how much hardware does the Table 1 workload need?
//
// The paper motivates utility optimization with the cost of
// over-provisioning (Section 1).  This example inverts the question the
// optimizer usually answers: instead of "what is the best allocation for
// this capacity," it asks "what is the least capacity that serves X% of
// consumers," using LRGP as the inner allocation engine and bisection on
// a provisioning factor.
#include <cstdio>

#include "planner/capacity_planner.hpp"
#include "workload/workloads.hpp"

using namespace lrgp;

int main() {
    const auto spec = workload::make_base_workload();

    std::printf("Provisioning curve for the base workload (capacity scale vs service):\n\n");
    std::printf("%8s %16s %14s %18s\n", "scale", "admission", "utility", "hottest node");
    const auto curve =
        planner::provisioning_curve(spec, {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0});
    for (const auto& point : curve) {
        std::printf("%8.2f %15.1f%% %14.0f %17.1f%%\n", point.capacity_scale,
                    100.0 * point.admission_ratio, point.utility,
                    100.0 * point.hottest_node_utilization);
    }

    std::printf("\nMinimum provisioning factor per service-level objective:\n\n");
    std::printf("%12s %12s %16s\n", "SLO", "min scale", "achieved");
    for (double target : {0.5, 0.8, 0.9, 0.99}) {
        planner::PlannerOptions options;
        options.target_admission_ratio = target;
        options.lrgp_iterations = 120;
        // Full admission at near-max rates needs two orders of magnitude
        // more capacity than the paper's operating point.
        options.max_scale = 1024.0;
        const auto point = planner::min_capacity_for_admission(spec, options);
        std::printf("%11.0f%% %12.2f %15.1f%%\n", 100.0 * target, point.capacity_scale,
                    100.0 * point.admission_ratio);
    }

    std::printf(
        "\nReading: the paper's c_b = 9e5 (scale 1.0) deliberately runs the\n"
        "workload under-provisioned so admission control has work to do;\n"
        "full service needs several times that capacity — the cost the\n"
        "utility-optimizing allocator avoids paying.\n");
    return 0;
}
