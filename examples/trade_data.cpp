// The paper's first motivating scenario (Section 1.1): a trade-data flow
// with two consumer categories.
//
//   * "gold" consumers at brokerage firms pay for the data.  They receive
//     every field and reliable delivery, which makes them expensive for
//     the system (high per-consumer cost G) — but they are worth far more
//     (high rank).
//   * "public" consumers on the Internet receive a reduced message (the
//     system strips gold-only fields in-flight) and are cheap, numerous,
//     and low-value.
//
// The example builds the scenario on the broker substrate, optimizes with
// LRGP under a normal and a degraded node capacity, enacts both
// allocations, and runs traffic.  Under pressure the system sheds public
// consumers first — the paper's "deny service to public consumers" —
// while gold service is preserved.
#include <cstdio>
#include <memory>

#include "broker/filter.hpp"
#include "broker/overlay.hpp"
#include "broker/transform.hpp"
#include "lrgp/optimizer.hpp"
#include "model/allocation.hpp"

using namespace lrgp;

namespace {

struct Scenario {
    model::ProblemSpec spec;
    model::FlowId trades;
    model::NodeId hub;
    model::ClassId gold;
    model::ClassId pub;
};

Scenario buildScenario(double hub_capacity) {
    model::ProblemBuilder b;
    const model::NodeId exchange = b.addNode("exchange", 1e9);
    const model::NodeId hub = b.addNode("hub", hub_capacity);
    // Trades are published at 50..500 messages/sec.
    const model::FlowId trades = b.addFlow("trades", exchange, 50.0, 500.0);
    b.routeThroughNode(trades, hub, 2.0);  // routing/transformation work per message
    // Gold: 40 reliable consumers, G=25 (acks + per-consumer state), rank 50.
    const model::ClassId gold = b.addClass(
        "gold", trades, hub, 40, 25.0, std::make_shared<utility::LogUtility>(50.0));
    // Public: 5000 best-effort consumers, G=4 (filter eval only), rank 1.
    const model::ClassId pub = b.addClass(
        "public", trades, hub, 5000, 4.0, std::make_shared<utility::LogUtility>(1.0));
    return Scenario{b.build(), trades, hub, gold, pub};
}

void runRegime(const char* label, double hub_capacity) {
    Scenario s = buildScenario(hub_capacity);

    core::LrgpOptimizer optimizer(s.spec);
    optimizer.run(150);
    const model::Allocation& alloc = optimizer.allocation();

    broker::BrokerOverlay overlay(s.spec);
    for (int k = 0; k < 40; ++k) overlay.addConsumer(s.gold);
    for (int k = 0; k < 5000; ++k) overlay.addConsumer(s.pub);
    // Strip the gold-only fields before public delivery.
    overlay.setMessageFactory(s.trades, [](model::FlowId, std::uint64_t seq) {
        broker::Message m;
        m.fields["symbol"] = std::string("IBM");
        m.fields["price"] = 80.0 + static_cast<double>(seq % 7);
        m.fields["counterparty"] = std::string("gold-only");  // removed for public
        return m;
    });
    overlay.enact(alloc);
    const auto report = overlay.runEpoch(10.0);

    const auto& hub_stats = report.node_stats[s.hub.index()];
    std::printf("\n--- %s (hub capacity %.0f units/s) ---\n", label, hub_capacity);
    std::printf("trade rate:        %7.1f msg/s  (bounds [50, 500])\n",
                alloc.rates[s.trades.index()]);
    std::printf("gold admitted:     %7d / 40\n", alloc.populations[s.gold.index()]);
    std::printf("public admitted:   %7d / 5000\n", alloc.populations[s.pub.index()]);
    std::printf("hub utilization:   %6.1f%%  (dropped %llu of %llu messages)\n",
                100.0 * hub_stats.utilization(),
                static_cast<unsigned long long>(hub_stats.dropped),
                static_cast<unsigned long long>(report.published[s.trades.index()]));
    std::printf("total utility:     %10.1f\n", optimizer.currentUtility());
}

}  // namespace

int main() {
    std::printf("Trade-data scenario: gold vs public consumers under admission control\n");
    runRegime("normal operation", 2.0e5);
    runRegime("degraded node (half capacity)", 1.0e5);
    runRegime("severely degraded (tenth capacity)", 2.0e4);
    std::printf(
        "\nThe optimizer sheds cheap low-rank public consumers as capacity\n"
        "shrinks, while gold consumers keep full service as long as possible\n"
        "— the tradeoff the paper's admission control is designed to make.\n");
    return 0;
}
