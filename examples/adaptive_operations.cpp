// A day in the life of an autonomic event infrastructure: continuous
// optimization + hysteretic enactment + live traffic + workload change.
//
// Components exercised together:
//   * LrgpOptimizer keeps iterating in the background (Section 3: "LRGP
//     iterates indefinitely");
//   * EnactmentController decides when its output becomes live broker
//     configuration (Section 2.1: decisions are enacted only when
//     sufficiently different or periodically);
//   * BrokerOverlay carries the traffic and reports utilization and
//     reliability (delivery gaps) per epoch;
//   * mid-day, a capacity degradation at one node and a doubling of one
//     class's consumer population change the problem under the
//     optimizer's feet.
#include <cstdio>
#include <memory>

#include "broker/overlay.hpp"
#include "lrgp/enactment.hpp"
#include "lrgp/optimizer.hpp"
#include "model/analysis.hpp"

using namespace lrgp;

namespace {

struct Deployment {
    model::ProblemSpec spec;
    model::FlowId news;
    model::FlowId metrics;
    model::NodeId east;
    model::NodeId west;
    model::ClassId news_east;
    model::ClassId news_west;
    model::ClassId metrics_west;
};

Deployment buildDeployment() {
    model::ProblemBuilder b;
    const auto hq = b.addNode("hq", 1e9);
    const auto east = b.addNode("edge-east", 3e5);
    const auto west = b.addNode("edge-west", 3e5);
    const auto news = b.addFlow("news", hq, 20.0, 800.0);
    b.routeThroughNode(news, east, 3.0);
    b.routeThroughNode(news, west, 3.0);
    const auto metrics = b.addFlow("metrics", hq, 50.0, 600.0);
    b.routeThroughNode(metrics, west, 5.0);
    const auto news_east = b.addClass("news-east", news, east, 900, 12.0,
                                      std::make_shared<utility::LogUtility>(25.0));
    const auto news_west = b.addClass("news-west", news, west, 600, 12.0,
                                      std::make_shared<utility::LogUtility>(25.0));
    const auto metrics_west = b.addClass("metrics-west", metrics, west, 300, 20.0,
                                         std::make_shared<utility::LogUtility>(60.0));
    return Deployment{b.build(), news,      metrics,     east,
                      west,      news_east, news_west,   metrics_west};
}

}  // namespace

int main() {
    Deployment d = buildDeployment();

    core::LrgpOptimizer optimizer(d.spec);
    broker::BrokerOverlay overlay(d.spec);
    for (int k = 0; k < 900; ++k) overlay.addConsumer(d.news_east);
    for (int k = 0; k < 600; ++k) overlay.addConsumer(d.news_west);
    for (int k = 0; k < 300; ++k) overlay.addConsumer(d.metrics_west);

    core::EnactmentOptions enact_options;
    enact_options.rate_deadband = 0.10;
    enact_options.population_deadband = 20;
    enact_options.min_interval = 120.0;  // at least every two "minutes"
    core::EnactmentController enactor(
        enact_options, [&](const model::Allocation& alloc) { overlay.enact(alloc); });

    std::printf("%6s %10s %9s %9s %9s %8s %7s %6s\n", "t(s)", "utility", "news-E", "news-W",
                "metr-W", "west%", "enacts", "gaps");

    double clock = 0.0;
    for (int epoch = 0; epoch < 12; ++epoch) {
        // The optimizer runs continuously between epochs...
        for (int i = 0; i < 25; ++i) {
            const auto& rec = optimizer.step();
            clock += 1.0;
            enactor.offer(clock, rec.allocation);  // ...but enacts rarely
        }
        // ...and the broker carries one 10-second epoch of traffic.
        const auto report = overlay.runEpoch(10.0);
        clock += 10.0;

        std::uint64_t gaps = 0;
        for (const auto& consumer : overlay.consumers()) gaps += consumer.gaps;
        const auto& alloc = optimizer.allocation();
        std::printf("%6.0f %10.0f %5d/%d %5d/%d %5d/%d %7.1f%% %7zu %6llu\n", clock,
                    optimizer.currentUtility(), alloc.populations[d.news_east.index()],
                    optimizer.problem().consumerClass(d.news_east).max_consumers,
                    alloc.populations[d.news_west.index()],
                    optimizer.problem().consumerClass(d.news_west).max_consumers,
                    alloc.populations[d.metrics_west.index()],
                    optimizer.problem().consumerClass(d.metrics_west).max_consumers,
                    100.0 * report.node_stats[d.west.index()].utilization(),
                    enactor.enactments(), static_cast<unsigned long long>(gaps));

        if (epoch == 4) {
            std::printf("   >>> edge-west degrades to half capacity <<<\n");
            optimizer.setNodeCapacity(d.west, 1.5e5);
            overlay.setNodeCapacity(d.west, 1.5e5);  // the broker suffers the same fault
        }
        if (epoch == 8) {
            std::printf("   >>> 300 extra metrics consumers connect <<<\n");
            optimizer.setClassMaxConsumers(d.metrics_west, 600);
            overlay.setClassMaxConsumers(d.metrics_west, 600);
            for (int k = 0; k < 300; ++k) overlay.addConsumer(d.metrics_west);
        }
    }

    const auto summary = model::summarize(optimizer.problem(), optimizer.allocation());
    std::printf("\nend of day: %d classes fully admitted, %d partial, %d denied; "
                "fairness %.3f\n",
                summary.classes_fully_admitted, summary.classes_partially_admitted,
                summary.classes_denied, summary.jain_fairness);
    std::printf("the enactment policy pushed %zu configurations for %d optimizer "
                "iterations.\n",
                enactor.enactments(), optimizer.iterationsRun());
    return 0;
}
