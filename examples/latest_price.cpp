// The paper's second motivating scenario (Section 1.1): a "latest price"
// flow whose messages carry the current IBM stock price.  Consumers
// register content filters (e.g. price > 80) evaluated per message, per
// consumer — exactly the per-consumer cost G in the resource model.  The
// flow is very elastic: its rate can be reduced (update frequency
// lowered) when resources are scarce.
//
// Two flows share one consumer-hosting node: the elastic price flow and a
// fat, inelastic-ish telemetry flow.  As the telemetry flow's rate floor
// rises, LRGP responds by lowering the price flow's update rate and/or
// denying service to some price watchers — "reduce the producer rate or
// deny service to consumers or both".
#include <cstdio>
#include <memory>

#include "broker/filter.hpp"
#include "broker/overlay.hpp"
#include "lrgp/optimizer.hpp"

using namespace lrgp;

namespace {

void runContention(double telemetry_min_rate) {
    model::ProblemBuilder b;
    const model::NodeId source = b.addNode("source", 1e9);
    const model::NodeId edge = b.addNode("edge", 1.2e5);

    const model::FlowId prices = b.addFlow("ibm-price", source, 1.0, 200.0);
    b.routeThroughNode(prices, edge, 1.0);
    const model::ClassId watchers = b.addClass(
        "watchers", prices, edge, 800, 6.0, std::make_shared<utility::LogUtility>(8.0));

    // Telemetry cannot drop below its floor (quasi-inelastic): r_min is high.
    const model::FlowId telemetry = b.addFlow("telemetry", source, telemetry_min_rate, 400.0);
    b.routeThroughNode(telemetry, edge, 40.0);  // heavyweight per-message processing
    const model::ClassId collectors = b.addClass(
        "collectors", telemetry, edge, 5, 10.0, std::make_shared<utility::LogUtility>(100.0));

    const auto spec = b.build();
    core::LrgpOptimizer optimizer(spec);
    optimizer.run(200);
    const auto& alloc = optimizer.allocation();

    // Enact and measure what filtered consumers actually receive.
    broker::BrokerOverlay overlay(spec);
    std::vector<broker::ConsumerId> watcher_ids;
    for (int k = 0; k < 800; ++k) {
        // Half the watchers only care about price > 80.
        broker::FilterPtr filter =
            (k % 2 == 0) ? std::make_shared<broker::NumericCompare>(
                               "price", broker::NumericCompare::Op::kGreater, 80.0)
                         : broker::FilterPtr(std::make_shared<broker::AcceptAll>());
        watcher_ids.push_back(overlay.addConsumer(watchers, std::move(filter)));
    }
    for (int k = 0; k < 5; ++k) overlay.addConsumer(collectors);
    overlay.setMessageFactory(prices, [](model::FlowId, std::uint64_t seq) {
        broker::Message m;
        m.fields["symbol"] = std::string("IBM");
        m.fields["price"] = 78.0 + static_cast<double>(seq % 6);  // 78..83, half > 80
        return m;
    });
    overlay.enact(alloc);
    const auto report = overlay.runEpoch(10.0);

    std::printf("\n--- telemetry floor %.0f msg/s ---\n", telemetry_min_rate);
    std::printf("price update rate:   %7.1f msg/s (bounds [1, 200])\n",
                alloc.rates[prices.index()]);
    std::printf("telemetry rate:      %7.1f msg/s (bounds [%.0f, 400])\n",
                alloc.rates[telemetry.index()], telemetry_min_rate);
    std::printf("watchers admitted:   %7d / 800\n", alloc.populations[watchers.index()]);
    std::printf("collectors admitted: %7d / 5\n", alloc.populations[collectors.index()]);
    const auto& filtered = overlay.consumer(watcher_ids[0]);   // price > 80
    const auto& unfiltered = overlay.consumer(watcher_ids[1]); // accept all
    if (filtered.admitted && unfiltered.admitted) {
        std::printf("delivered to 'price>80' watcher: %5.1f msg/s; unfiltered: %5.1f msg/s\n",
                    filtered.delivered / report.seconds, unfiltered.delivered / report.seconds);
    }
    std::printf("edge utilization:    %6.1f%%\n",
                100.0 * report.node_stats[edge.index()].utilization());
    std::printf("total utility:       %10.1f\n", optimizer.currentUtility());
}

}  // namespace

int main() {
    std::printf("Latest-price scenario: elastic rate control under contention\n");
    runContention(10.0);   // telemetry mostly elastic: watchers get fast updates
    runContention(200.0);  // telemetry floor consumes half the edge budget
    runContention(380.0);  // telemetry floor dominates: price flow throttled hard
    return 0;
}
