#!/usr/bin/env python3
"""CI perf-regression guard for the LRGP engine benchmarks.

Compares freshly generated bench JSON files against their committed
baselines and fails on a >25% regression in any tracked column.  Each
file carries a "bench" tag that selects its metric set:

  bench_compiled (BENCH_lrgp.json)   ns/iteration columns, engine
                                     speedups, bitwise-identity flag;
                                     vector rows: SoA rate-kernel >= 4x
                                     at 10^5 classes (enforced only when
                                     machine.simd_isa_detected reports a
                                     vector ISA), vector_exact bitwise
                                     flag, tolerance-mode relative error
                                     <= 1e-12, batched lockstep parity
  bench_shards   (BENCH_shards.json) sharded-engine steady-state control
                                     loop speedups, optimality gap,
                                     K=1 bitwise parity, shard-count
                                     wall-clock monotonicity
  bench_async    (BENCH_async.json)  live async runtime: every fault
                                     scenario reconverged, byte-identical
                                     deterministic reruns, zero
                                     deadlocks, virtual-time TTR bands
  bench_scenarios (BENCH_scenarios.json)
                                     production scenario matrix: every
                                     catalog cell within 5% of best-known,
                                     byte-identical reruns, cross-engine
                                     bitwise parity, sharded K=4 gap <= 1%,
                                     the overdrive-vs-headroom dataplane
                                     contract, per-cell utility-vs-best and
                                     recovery TTR bands
  bench_dataplane (BENCH_dataplane.json)
                                     event dataplane closed loop: recovery
                                     consistency flag, per-(scenario, seed)
                                     planned-vs-achieved utility gap,
                                     drop-rate and virtual-time latency
                                     bands vs the baseline
  bench_fastpath (BENCH_fastpath.json)
                                     batched fastpath vs the event oracle:
                                     byte-identical stats across worker
                                     counts, fidelity utility gap <= 2%,
                                     same-machine speedup floors (>= 5x at
                                     1 worker, >= 20x at 8) plus 25%
                                     no-regression bands on both

Absolute wall times are machine-dependent: a committed baseline measured
on one box says little about a shared CI runner.  Setting
LRGP_PERF_ALLOW_UNKNOWN_HW=1 downgrades *absolute* regressions to
warnings.  Every bench stamps a `machine` block (hostname, compiler,
compiled + detected SIMD ISA); the vector-kernel floor keys on
machine.simd_isa_detected, so a scalar/sse2-only host warns instead of
failing while avx2/avx512 hosts stay enforced.  Relative speedups are ratios of two measurements taken in the
same process on the same machine, so they stay enforced either way — as
do the hard floors (incremental converged-tail node phase >= 3x,
end-to-end >= 1.5x; sharded steady-state 8-shard speedup >= 3x with
optimality gap <= 1%; fastpath >= 5x the sim's msgs/sec at 1 worker and
>= 20x at 8) and the bitwise-identity flags.

usage: check_perf_regression.py <committed_baseline.json> <fresh.json> [more pairs...]
exit status: 0 ok, 1 regression/violation, 2 usage or unreadable input
"""

import json
import os
import sys

REGRESSION_LIMIT = 0.25  # fail when fresh is >25% worse than the baseline

# Absolute ns/iteration columns (bench_compiled): lower is better.
# Dotted paths index into nested objects.
ABSOLUTE_NS_METRICS = [
    "serial_ns_per_iter",
    "compiled_1t_ns_per_iter",
    "incremental.contended_1t_ns_per_iter",
    "incremental.steady_full_ns_per_iter",
    "incremental.steady_inc_ns_per_iter",
    "incremental.steady_inc_node_ns_per_iter",
]

# Same-machine ratios: higher is better, hardware-independent enough to
# enforce even on unknown runners.
RELATIVE_SPEEDUP_METRICS = [
    "speedup_1t",
    "incremental.node_phase_tail_speedup",
    "incremental.e2e_tail_speedup",
]

# Hard floors from the incremental-engine acceptance targets; these hold
# on any machine because they compare two runs of the same binary.
SPEEDUP_FLOORS = {
    "incremental.node_phase_tail_speedup": 3.0,
    "incremental.e2e_tail_speedup": 1.5,
}

# Sharded control plane (bench_shards): steady-state re-convergence
# speedups are same-machine ratios, so they carry both a hard floor (the
# acceptance target) and the 25% no-regression band vs the baseline.
SHARD_RELATIVE_METRICS = ["speedup_4", "speedup_8"]
SHARD_SPEEDUP_FLOORS = {"speedup_8": 3.0}
SHARD_MAX_GAP = 0.01  # worst tolerated optimality gap vs the monolithic solver

# Vectorized SoA core (the `vector` block of bench_compiled): the rate
# kernel must beat the compiled scalar rate phase >= 4x at 10^5 classes.
# A same-machine ratio, but only meaningful when the host actually has
# vector units — the floor keys on machine.simd_isa_detected and merely
# warns on scalar/sse2 hosts (the scalar-fallback CI job runs there).
VECTOR_RATE_KERNEL_FLOOR = 4.0
VECTOR_FLOOR_ISAS = ("avx2", "avx512")
VECTOR_MAX_REL_ERR = 1e-12  # documented tolerance-mode bound (docs/algorithm.md)
# rate_kernel_speedup carries only the hard floor: the tolerance-mode
# rate kernel is a few microseconds, so the ratio's run-to-run noise is
# far wider than the 25% band — and any real regression (say, back to
# per-class walks) lands well under the 4x floor anyway.
VECTOR_RELATIVE_METRICS = [
    "vector.e2e_speedup",
    "vector.batch.aggregate_speedup",
]


def lookup(doc, dotted):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


class Guard:
    """Accumulates ok/warn/fail lines for one baseline-vs-fresh pair."""

    def __init__(self, allow_unknown_hw):
        self.allow_unknown_hw = allow_unknown_hw
        self.failures = []
        self.warnings = []

    def check(self, kind, metric, ok, message):
        if ok:
            print(f"  ok    {metric}: {message}")
        elif kind == "absolute" and self.allow_unknown_hw:
            self.warnings.append(f"{metric}: {message}")
            print(f"  WARN  {metric}: {message} (absolute check relaxed: unknown hardware)")
        else:
            self.failures.append(f"{metric}: {message}")
            print(f"  FAIL  {metric}: {message}")

    def fail(self, metric, message):
        self.failures.append(f"{metric}: {message}")
        print(f"  FAIL  {metric}: {message}")

    def skip(self, metric, where):
        self.warnings.append(f"{metric}: missing in {where} — skipped")
        print(f"  skip  {metric}: not present in both files")

    def compare_absolute(self, baseline, fresh, metric):
        base, now = lookup(baseline, metric), lookup(fresh, metric)
        if base is None or now is None:
            self.skip(metric, "baseline" if base is None else "fresh")
            return
        limit = base * (1.0 + REGRESSION_LIMIT)
        self.check("absolute", metric, now <= limit,
                   f"{now:.2f} vs baseline {base:.2f} (limit {limit:.2f})")

    def compare_relative(self, baseline, fresh, metric):
        base, now = lookup(baseline, metric), lookup(fresh, metric)
        if base is None or now is None:
            self.skip(metric, "baseline" if base is None else "fresh")
            return
        floor = base / (1.0 + REGRESSION_LIMIT)
        self.check("relative", metric, now >= floor,
                   f"{now:.2f}x vs baseline {base:.2f}x (floor {floor:.2f}x)")


def check_compiled(guard, baseline, fresh):
    if fresh.get("bitwise_identical") is not True:
        guard.fail("bitwise_identical", "fresh run did not certify bitwise identity")

    for metric in ABSOLUTE_NS_METRICS:
        guard.compare_absolute(baseline, fresh, metric)
    for metric in RELATIVE_SPEEDUP_METRICS:
        guard.compare_relative(baseline, fresh, metric)
    for metric, floor in SPEEDUP_FLOORS.items():
        now = lookup(fresh, metric)
        if now is None:
            guard.fail(metric, f"missing from fresh results (floor {floor}x unverified)")
            continue
        guard.check("relative", metric, now >= floor, f"{now:.2f}x vs hard floor {floor:.2f}x")

    vector = fresh.get("vector")
    if vector is None:
        return  # pre-vector result file (older binary) — nothing to enforce
    if vector.get("bitwise_exact") is not True:
        guard.fail("vector.bitwise_exact",
                   "vector_exact did not certify bitwise identity with the "
                   "compiled engine")
    if lookup(vector, "batch.lockstep_bitwise") is not True:
        guard.fail("vector.batch.lockstep_bitwise",
                   "a batched lane diverged from its solo serial trajectory")
    rel_err = vector.get("tolerance_rel_err")
    if rel_err is None:
        guard.fail("vector.tolerance_rel_err", "missing from fresh results")
    else:
        guard.check("relative", "vector.tolerance_rel_err",
                    abs(rel_err) <= VECTOR_MAX_REL_ERR,
                    f"{rel_err:.2e} vs documented bound {VECTOR_MAX_REL_ERR:.0e}")

    isa = lookup(fresh, "machine.simd_isa_detected")
    speedup = vector.get("rate_kernel_speedup")
    if speedup is None:
        guard.fail("vector.rate_kernel_speedup",
                   f"missing from fresh results (floor {VECTOR_RATE_KERNEL_FLOOR}x "
                   "unverified)")
    elif isa in VECTOR_FLOOR_ISAS:
        guard.check("relative", "vector.rate_kernel_speedup",
                    speedup >= VECTOR_RATE_KERNEL_FLOOR,
                    f"{speedup:.2f}x vs hard floor {VECTOR_RATE_KERNEL_FLOOR:.2f}x "
                    f"(isa {isa})")
    else:
        guard.warnings.append(
            f"vector.rate_kernel_speedup: {speedup:.2f}x on non-vector host "
            f"(isa {isa}) — floor {VECTOR_RATE_KERNEL_FLOOR:.2f}x not enforced")
        print(f"  WARN  vector.rate_kernel_speedup: {speedup:.2f}x "
              f"(isa {isa!r} — floor not enforced on this host)")

    for metric in VECTOR_RELATIVE_METRICS:
        guard.compare_relative(baseline, fresh, metric)


def check_shards(guard, baseline, fresh):
    # Acceptance flags certified by the fresh run itself.
    if fresh.get("k1_bitwise_identical") is not True:
        guard.fail("k1_bitwise_identical",
                   "one shard did not reproduce the monolithic trajectory bitwise")
    if fresh.get("monotone_1_2_4") is not True:
        guard.fail("monotone_1_2_4",
                   "steady-state wall clock not monotone non-increasing over 1 -> 2 -> 4 shards")

    gap = fresh.get("max_gap")
    if gap is None:
        guard.fail("max_gap", "missing from fresh results")
    else:
        guard.check("relative", "max_gap", abs(gap) <= SHARD_MAX_GAP,
                    f"{gap:.4%} optimality gap vs limit {SHARD_MAX_GAP:.0%}")

    for metric, floor in SHARD_SPEEDUP_FLOORS.items():
        now = lookup(fresh, metric)
        if now is None:
            guard.fail(metric, f"missing from fresh results (floor {floor}x unverified)")
            continue
        guard.check("relative", metric, now >= floor, f"{now:.2f}x vs hard floor {floor:.2f}x")

    for metric in SHARD_RELATIVE_METRICS:
        guard.compare_relative(baseline, fresh, metric)

    # Per-workload steady-state wall clocks, matched by (workload, shard
    # count) so full-scale runs and row reordering don't misalign pairs.
    base_workloads = {w.get("name"): w for w in baseline.get("workloads", [])}
    for workload in fresh.get("workloads", []):
        name = workload.get("name")
        base_workload = base_workloads.get(name)
        if base_workload is None:
            guard.skip(f"workloads[{name}]", "baseline")
            continue
        base_rows = {row.get("shards"): row
                     for row in base_workload.get("steady", {}).get("rows", [])}
        for row in workload.get("steady", {}).get("rows", []):
            shards = row.get("shards")
            metric = f"workloads[{name}].steady[shards={shards}].wall_ms"
            base_row = base_rows.get(shards)
            if base_row is None or "wall_ms" not in base_row or "wall_ms" not in row:
                guard.skip(metric, "baseline")
                continue
            base, now = base_row["wall_ms"], row["wall_ms"]
            limit = base * (1.0 + REGRESSION_LIMIT)
            guard.check("absolute", metric, now <= limit,
                        f"{now:.2f} ms vs baseline {base:.2f} (limit {limit:.2f})")


def check_async(guard, baseline, fresh):
    # Acceptance flags certified by the fresh run itself.  These are
    # virtual-time results, so they are hardware-independent and always
    # enforced.
    if fresh.get("all_reconverged") is not True:
        guard.fail("all_reconverged",
                   "some fault scenario failed to reconverge to within 1% of its "
                   "pre-fault steady state")
    if fresh.get("deterministic") is not True:
        guard.fail("deterministic",
                   "deterministic-mode reruns were not byte-identical (digest logs "
                   "or utility traces diverged)")
    if fresh.get("deadlocks") != 0:
        guard.fail("deadlocks", f"{fresh.get('deadlocks')} deadlock(s) reported")

    # Per-scenario time-to-reconverge, in virtual seconds: a ratio of
    # virtual clocks, not wall clocks, so the 25% band holds on any
    # machine.  A scenario whose baseline TTR is 0 (never left the 1%
    # band) must stay at 0.
    base_rows = {row.get("name"): row for row in baseline.get("scenarios", [])}
    for row in fresh.get("scenarios", []):
        name = row.get("name")
        metric = f"scenarios[{name}].time_to_reconverge_seconds"
        base_row = base_rows.get(name)
        if base_row is None:
            guard.skip(metric, "baseline")
            continue
        base = base_row.get("result", {}).get("time_to_reconverge_seconds")
        now = row.get("result", {}).get("time_to_reconverge_seconds")
        if base is None or now is None:
            guard.skip(metric, "baseline" if base is None else "fresh")
            continue
        if now < 0:
            guard.fail(metric, "scenario never reconverged")
            continue
        # Half a sample period of slack absorbs quantization when the
        # baseline sits at or near zero.
        limit = base * (1.0 + REGRESSION_LIMIT) + 0.5 * fresh.get("sample_period", 0.05)
        guard.check("relative", metric, now <= limit,
                    f"{now:.2f}s vs baseline {base:.2f}s (limit {limit:.2f}s)")


SCENARIO_MAX_SHARDED_GAP = 0.01  # sharded K=4 vs best-known utility
SCENARIO_MIN_ASYNC_VS_BEST = 0.90  # async churn replay vs best-known


def check_scenarios(guard, baseline, fresh):
    # Acceptance flags certified by the fresh run itself.  Everything in
    # this bench is a deterministic replay (virtual ticks, seeded traffic,
    # seeded dataplane), so all checks are hardware-independent and always
    # enforced.
    if fresh.get("deterministic") is not True:
        guard.fail("deterministic",
                   "pinned-cell reruns were not byte-identical (problem JSON, "
                   "manifest or utility trace diverged)")
    if fresh.get("all_cells_within_5pct_of_best") is not True:
        guard.fail("all_cells_within_5pct_of_best",
                   "some catalog cell finished below 95% of its best-known utility")

    differential = fresh.get("differential", {})
    if differential.get("bitwise_serial_compiled_incremental_sharded1") is not True:
        guard.fail("differential.bitwise",
                   "serial/compiled/incremental/sharded-K1 final allocations diverged")
    gap = differential.get("sharded4_gap_fraction")
    if gap is None:
        guard.fail("differential.sharded4_gap_fraction", "missing from fresh results")
    else:
        guard.check("relative", "differential.sharded4_gap_fraction",
                    abs(gap) <= SCENARIO_MAX_SHARDED_GAP,
                    f"{gap:.4%} gap vs limit {SCENARIO_MAX_SHARDED_GAP:.0%}")
    async_vs_best = differential.get("async_utility_vs_best")
    if async_vs_best is None:
        guard.fail("differential.async_utility_vs_best", "missing from fresh results")
    else:
        guard.check("relative", "differential.async_utility_vs_best",
                    async_vs_best >= SCENARIO_MIN_ASYNC_VS_BEST,
                    f"{async_vs_best:.4f} vs floor {SCENARIO_MIN_ASYNC_VS_BEST:.2f}")

    # The PR 4 overdrive regression: only meaningful when the dataplane
    # ran (LRGP_SCENARIO_DATAPLANE=0 smoke runs skip it).
    if fresh.get("with_dataplane"):
        if fresh.get("overdrive_contract", {}).get("holds") is not True:
            guard.fail("overdrive_contract.holds",
                       "overdriven plant no longer sheds >= 20% while the headroom "
                       "twin delivers within 2%")

    # Per-cell utility-vs-best and recovery TTR bands against the
    # committed baseline (both are ratios/virtual clocks — machine-free).
    base_cells = {row.get("name"): row for row in baseline.get("scenarios", [])}
    for row in fresh.get("scenarios", []):
        name = row.get("name")
        base_row = base_cells.get(name)
        if base_row is None:
            guard.skip(f"scenarios[{name}]", "baseline")
            continue
        metric = f"scenarios[{name}].utility_vs_best"
        base, now = base_row.get("utility_vs_best"), row.get("utility_vs_best")
        if base is None or now is None:
            guard.skip(metric, "baseline" if base is None else "fresh")
        else:
            floor = base / (1.0 + REGRESSION_LIMIT)
            guard.check("relative", metric, now >= floor,
                        f"{now:.4f} vs baseline {base:.4f} (floor {floor:.4f})")
        base_ttr = base_row.get("recovery", {}).get("time_to_reconverge_seconds")
        now_ttr = row.get("recovery", {}).get("time_to_reconverge_seconds")
        if base_ttr is None or now_ttr is None:
            continue  # static cell: no recovery analysis on either side
        metric = f"scenarios[{name}].time_to_reconverge_seconds"
        if now_ttr < 0:
            guard.fail(metric, "cell never reconverged")
            continue
        if base_ttr < 0:
            guard.skip(metric, "baseline (never reconverged)")
            continue
        # Half a replay tick of slack absorbs sample quantization.
        limit = base_ttr * (1.0 + REGRESSION_LIMIT) + 0.025
        guard.check("relative", metric, now_ttr <= limit,
                    f"{now_ttr:.2f}s vs baseline {base_ttr:.2f}s (limit {limit:.2f}s)")


DATAPLANE_GAP_SLACK = 0.01   # tolerated widening of |utility_gap_fraction|
DATAPLANE_DROP_SLACK = 0.01  # tolerated drop-rate increase vs baseline


def check_dataplane(guard, baseline, fresh):
    # The closed loop is a deterministic replay (seeded traffic, virtual
    # clocks), so every check here is hardware-independent.
    if fresh.get("all_consistent") is not True:
        guard.fail("all_consistent",
                   "measured and allocation-level recovery disagree in some run")

    base_cells = {}
    for scenario in baseline.get("scenarios", []):
        for seed_row in scenario.get("seeds", []):
            base_cells[(scenario.get("name"), seed_row.get("seed"))] = seed_row
    for scenario in fresh.get("scenarios", []):
        name = scenario.get("name")
        for row in scenario.get("seeds", []):
            seed = row.get("seed")
            cell = f"scenarios[{name}][seed={seed}]"
            base_row = base_cells.get((name, seed))
            if base_row is None:
                guard.skip(cell, "baseline")
                continue
            base_gap = base_row.get("utility_gap_fraction")
            now_gap = row.get("utility_gap_fraction")
            if base_gap is not None and now_gap is not None:
                limit = abs(base_gap) + DATAPLANE_GAP_SLACK
                guard.check("relative", f"{cell}.utility_gap_fraction",
                            abs(now_gap) <= limit,
                            f"|{now_gap:.4f}| vs baseline |{base_gap:.4f}| "
                            f"(limit {limit:.4f})")
            base_drop = base_row.get("drop_rate")
            now_drop = row.get("drop_rate")
            if base_drop is not None and now_drop is not None:
                limit = base_drop + DATAPLANE_DROP_SLACK
                guard.check("relative", f"{cell}.drop_rate", now_drop <= limit,
                            f"{now_drop:.4f} vs baseline {base_drop:.4f} "
                            f"(limit {limit:.4f})")
            base_p99 = base_row.get("latency_p99_seconds")
            now_p99 = row.get("latency_p99_seconds")
            if base_p99 is not None and now_p99 is not None:
                # Virtual-time latency: deterministic, but quantized by
                # the histogram buckets — allow the standard band.
                limit = base_p99 * (1.0 + REGRESSION_LIMIT)
                guard.check("relative", f"{cell}.latency_p99_seconds",
                            now_p99 <= limit,
                            f"{now_p99:.4f}s vs baseline {base_p99:.4f}s "
                            f"(limit {limit:.4f}s)")


FASTPATH_MAX_UTILITY_GAP = 0.02  # fidelity: fastpath vs event-sim oracle
FASTPATH_SPEEDUP_FLOORS = {"speedup_1": 5.0, "speedup_8": 20.0}


def check_fastpath(guard, baseline, fresh):
    # Acceptance flags certified by the fresh run itself.
    if fresh.get("deterministic") is not True:
        guard.fail("deterministic",
                   "fastpath statsJson diverged across worker counts")

    gap = lookup(fresh, "fidelity.utility_gap_vs_sim")
    if gap is None:
        guard.fail("fidelity.utility_gap_vs_sim", "missing from fresh results")
    else:
        guard.check("relative", "fidelity.utility_gap_vs_sim",
                    abs(gap) <= FASTPATH_MAX_UTILITY_GAP,
                    f"{gap:.4%} vs limit {FASTPATH_MAX_UTILITY_GAP:.0%}")
    sim_drop = lookup(fresh, "fidelity.sim_drop_rate")
    fast_drop = lookup(fresh, "fidelity.fast_drop_rate")
    if sim_drop is not None and fast_drop is not None:
        guard.check("relative", "fidelity.fast_drop_rate",
                    fast_drop <= sim_drop + DATAPLANE_DROP_SLACK,
                    f"{fast_drop:.4f} vs sim {sim_drop:.4f} "
                    f"(slack {DATAPLANE_DROP_SLACK})")

    # Same-machine msgs/sec ratios: hard floors plus the 25% band.
    for metric, floor in FASTPATH_SPEEDUP_FLOORS.items():
        now = lookup(fresh, metric)
        if now is None:
            guard.fail(metric, f"missing from fresh results (floor {floor}x unverified)")
            continue
        guard.check("relative", metric, now >= floor,
                    f"{now:.2f}x vs hard floor {floor:.2f}x")
        guard.compare_relative(baseline, fresh, metric)

    # Raw per-worker throughput vs the committed baseline is absolute
    # (machine-dependent): relaxed under LRGP_PERF_ALLOW_UNKNOWN_HW.
    base_rows = {row.get("workers"): row
                 for row in lookup(baseline, "throughput.workers") or []}
    for row in lookup(fresh, "throughput.workers") or []:
        workers = row.get("workers")
        metric = f"throughput.workers[{workers}].msgs_per_sec"
        base_row = base_rows.get(workers)
        if base_row is None or "msgs_per_sec" not in base_row or "msgs_per_sec" not in row:
            guard.skip(metric, "baseline")
            continue
        base, now = base_row["msgs_per_sec"], row["msgs_per_sec"]
        floor = base / (1.0 + REGRESSION_LIMIT)
        guard.check("absolute", metric, now >= floor,
                    f"{now:.0f} msgs/s vs baseline {base:.0f} (floor {floor:.0f})")


def check_pair(guard, baseline_path, fresh_path):
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)

    kind = fresh.get("bench", "bench_compiled")
    print(f"perf guard [{kind}]: baseline {baseline_path} vs fresh {fresh_path}")
    if baseline.get("bench", "bench_compiled") != kind:
        guard.fail("bench", f"baseline is {baseline.get('bench')!r}, fresh is {kind!r}")
        return
    if kind == "bench_shards":
        check_shards(guard, baseline, fresh)
    elif kind == "bench_async":
        check_async(guard, baseline, fresh)
    elif kind == "bench_scenarios":
        check_scenarios(guard, baseline, fresh)
    elif kind == "bench_dataplane":
        check_dataplane(guard, baseline, fresh)
    elif kind == "bench_fastpath":
        check_fastpath(guard, baseline, fresh)
    else:
        check_compiled(guard, baseline, fresh)


def main(argv):
    if len(argv) < 3 or len(argv) % 2 != 1:
        sys.stderr.write(__doc__)
        return 2

    allow_unknown_hw = os.environ.get("LRGP_PERF_ALLOW_UNKNOWN_HW", "") not in ("", "0")
    guard = Guard(allow_unknown_hw)
    if allow_unknown_hw:
        print("note: LRGP_PERF_ALLOW_UNKNOWN_HW set — absolute regressions warn only")

    for i in range(1, len(argv), 2):
        try:
            check_pair(guard, argv[i], argv[i + 1])
        except (OSError, ValueError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 2

    if guard.warnings:
        print(f"{len(guard.warnings)} warning(s).")
    if guard.failures:
        print(f"{len(guard.failures)} perf regression(s) detected:", file=sys.stderr)
        for failure in guard.failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf guard passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
