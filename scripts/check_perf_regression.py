#!/usr/bin/env python3
"""CI perf-regression guard for the compiled/incremental LRGP engines.

Compares a freshly generated BENCH_lrgp.json (from bench/bench_compiled)
against the committed baseline and fails on a >25% regression in any
tracked ns/iteration column.

Absolute wall times are machine-dependent: a committed baseline measured
on one box says little about a shared CI runner.  Setting
LRGP_PERF_ALLOW_UNKNOWN_HW=1 downgrades *absolute* regressions to
warnings.  Relative speedups are ratios of two measurements taken in the
same process on the same machine, so they stay enforced either way — as
do the incremental engine's floor targets (converged-tail node phase
>= 3x, end-to-end >= 1.5x) and the bitwise-identity flag.

usage: check_perf_regression.py <committed_baseline.json> <fresh.json>
exit status: 0 ok, 1 regression/violation, 2 usage or unreadable input
"""

import json
import os
import sys

REGRESSION_LIMIT = 0.25  # fail when fresh is >25% worse than the baseline

# Absolute ns/iteration columns: lower is better.  Dotted paths index
# into nested objects.
ABSOLUTE_NS_METRICS = [
    "serial_ns_per_iter",
    "compiled_1t_ns_per_iter",
    "incremental.contended_1t_ns_per_iter",
    "incremental.steady_full_ns_per_iter",
    "incremental.steady_inc_ns_per_iter",
    "incremental.steady_inc_node_ns_per_iter",
]

# Same-machine ratios: higher is better, hardware-independent enough to
# enforce even on unknown runners.
RELATIVE_SPEEDUP_METRICS = [
    "speedup_1t",
    "incremental.node_phase_tail_speedup",
    "incremental.e2e_tail_speedup",
]

# Hard floors from the incremental-engine acceptance targets; these hold
# on any machine because they compare two runs of the same binary.
SPEEDUP_FLOORS = {
    "incremental.node_phase_tail_speedup": 3.0,
    "incremental.e2e_tail_speedup": 1.5,
}


def lookup(doc, dotted):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def main(argv):
    if len(argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    try:
        with open(argv[1]) as f:
            baseline = json.load(f)
        with open(argv[2]) as f:
            fresh = json.load(f)
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    allow_unknown_hw = os.environ.get("LRGP_PERF_ALLOW_UNKNOWN_HW", "") not in ("", "0")
    failures = []
    warnings = []

    def check(kind, metric, ok, message):
        if ok:
            print(f"  ok    {metric}: {message}")
        elif kind == "absolute" and allow_unknown_hw:
            warnings.append(f"{metric}: {message}")
            print(f"  WARN  {metric}: {message} (absolute check relaxed: unknown hardware)")
        else:
            failures.append(f"{metric}: {message}")
            print(f"  FAIL  {metric}: {message}")

    if fresh.get("bitwise_identical") is not True:
        failures.append("bitwise_identical: fresh run did not certify bitwise identity")

    print(f"perf guard: baseline {argv[1]} vs fresh {argv[2]}")
    if allow_unknown_hw:
        print("  note: LRGP_PERF_ALLOW_UNKNOWN_HW set — absolute ns/iter regressions warn only")

    for metric in ABSOLUTE_NS_METRICS:
        base, now = lookup(baseline, metric), lookup(fresh, metric)
        if base is None or now is None:
            warnings.append(f"{metric}: missing in {'baseline' if base is None else 'fresh'} — skipped")
            print(f"  skip  {metric}: not present in both files")
            continue
        limit = base * (1.0 + REGRESSION_LIMIT)
        check("absolute", metric, now <= limit,
              f"{now:.0f} ns/iter vs baseline {base:.0f} (limit {limit:.0f})")

    for metric in RELATIVE_SPEEDUP_METRICS:
        base, now = lookup(baseline, metric), lookup(fresh, metric)
        if base is None or now is None:
            warnings.append(f"{metric}: missing in {'baseline' if base is None else 'fresh'} — skipped")
            print(f"  skip  {metric}: not present in both files")
            continue
        floor = base / (1.0 + REGRESSION_LIMIT)
        check("relative", metric, now >= floor,
              f"{now:.2f}x vs baseline {base:.2f}x (floor {floor:.2f}x)")

    for metric, floor in SPEEDUP_FLOORS.items():
        now = lookup(fresh, metric)
        if now is None:
            failures.append(f"{metric}: missing from fresh results (floor {floor}x unverified)")
            print(f"  FAIL  {metric}: missing from fresh results")
            continue
        check("relative", metric, now >= floor, f"{now:.2f}x vs hard floor {floor:.2f}x")

    if warnings:
        print(f"{len(warnings)} warning(s).")
    if failures:
        print(f"{len(failures)} perf regression(s) detected:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf guard passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
